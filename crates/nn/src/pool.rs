//! Spatial pooling layers.

use adr_tensor::Tensor4;

use crate::layer::{Layer, Mode, Shape3};

/// Pooling operator choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window; backward routes gradient to the argmax.
    Max,
    /// Mean over the window; backward spreads gradient uniformly.
    Avg,
}

/// A 2-D pooling layer with square window and stride.
pub struct Pool2d {
    name: String,
    kind: PoolKind,
    window: usize,
    stride: usize,
    /// For max pooling: flat input index chosen per output element.
    argmax: Vec<usize>,
    in_shape: Shape3,
    batch: usize,
}

impl Pool2d {
    /// Creates a pooling layer.
    ///
    /// # Shape
    /// Pools `window × window` patches at stride `stride`, mapping
    /// `n × h × w × c` to `n × ⌊(h−window)/stride+1⌋ ×
    /// ⌊(w−window)/stride+1⌋ × c`.
    ///
    /// # Panics
    /// Panics if `window == 0 || stride == 0`.
    pub fn new(name: impl Into<String>, kind: PoolKind, window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "pool window/stride must be positive");
        Self {
            name: name.into(),
            kind,
            window,
            stride,
            argmax: Vec::new(),
            in_shape: (0, 0, 0),
            batch: 0,
        }
    }

    /// Max pooling constructor shorthand.
    ///
    /// # Shape
    /// As in [`Pool2d::new`]: `window × window` patches at stride `stride`.
    pub fn max(name: impl Into<String>, window: usize, stride: usize) -> Self {
        Self::new(name, PoolKind::Max, window, stride)
    }

    /// Average pooling constructor shorthand.
    ///
    /// # Shape
    /// As in [`Pool2d::new`]: `window × window` patches at stride `stride`.
    pub fn avg(name: impl Into<String>, window: usize, stride: usize) -> Self {
        Self::new(name, PoolKind::Avg, window, stride)
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "pool {}: window {} does not fit input {}x{}",
            self.name,
            self.window,
            h,
            w
        );
        ((h - self.window) / self.stride + 1, (w - self.window) / self.stride + 1)
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        let (oh, ow) = self.out_hw(input.0, input.1);
        (oh, ow, input.2)
    }

    fn forward(&mut self, input: &Tensor4, _mode: Mode) -> Tensor4 {
        let (n, h, w, c) = input.shape();
        let (oh, ow) = self.out_hw(h, w);
        self.in_shape = (h, w, c);
        self.batch = n;
        let mut out = Tensor4::zeros(n, oh, ow, c);
        if self.kind == PoolKind::Max {
            self.argmax.clear();
            self.argmax.resize(n * oh * ow * c, 0);
        }
        let inv_area = 1.0 / (self.window * self.window) as f32;
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for ch in 0..c {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        let mut sum = 0.0f32;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                let y = oy * self.stride + ky;
                                let x = ox * self.stride + kx;
                                let idx = input.offset(b, y, x, ch);
                                let v = input.as_slice()[idx];
                                sum += v;
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = out.offset(b, oy, ox, ch);
                        match self.kind {
                            PoolKind::Max => {
                                out.as_mut_slice()[out_idx] = best;
                                self.argmax[out_idx] = best_idx;
                            }
                            PoolKind::Avg => out.as_mut_slice()[out_idx] = sum * inv_area,
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let (h, w, c) = self.in_shape;
        let mut grad_in = Tensor4::zeros(self.batch, h, w, c);
        match self.kind {
            PoolKind::Max => {
                assert_eq!(
                    grad_out.len(),
                    self.argmax.len(),
                    "pool {}: backward shape mismatch",
                    self.name
                );
                for (out_idx, &g) in grad_out.as_slice().iter().enumerate() {
                    grad_in.as_mut_slice()[self.argmax[out_idx]] += g;
                }
            }
            PoolKind::Avg => {
                let (n, oh, ow, _) = grad_out.shape();
                let inv_area = 1.0 / (self.window * self.window) as f32;
                for b in 0..n {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            for ch in 0..c {
                                let g = grad_out.get(b, oy, ox, ch) * inv_area;
                                for ky in 0..self.window {
                                    for kx in 0..self.window {
                                        *grad_in.get_mut(
                                            b,
                                            oy * self.stride + ky,
                                            ox * self.stride + kx,
                                            ch,
                                        ) += g;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maxima() {
        let mut pool = Pool2d::max("p", 2, 2);
        let x = Tensor4::from_vec(1, 2, 2, 1, vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (1, 1, 1, 1));
        assert_eq!(y.as_slice(), &[5.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut pool = Pool2d::max("p", 2, 2);
        let x = Tensor4::from_vec(1, 2, 2, 1, vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        pool.forward(&x, Mode::Train);
        let g = Tensor4::from_vec(1, 1, 1, 1, vec![7.0]).unwrap();
        let gx = pool.backward(&g);
        assert_eq!(gx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_averages_and_spreads() {
        let mut pool = Pool2d::avg("p", 2, 2);
        let x = Tensor4::from_vec(1, 2, 2, 1, vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[3.0]);
        let gx = pool.backward(&Tensor4::from_vec(1, 1, 1, 1, vec![4.0]).unwrap());
        assert_eq!(gx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn overlapping_windows_accumulate_gradient() {
        // 3x3 input, 2x2 window, stride 1: centre pixel is in all 4 windows.
        let mut pool = Pool2d::max("p", 2, 1);
        // Make centre the max of every window.
        let x =
            Tensor4::from_fn(1, 3, 3, 1, |_, y, xx, _| if (y, xx) == (1, 1) { 9.0 } else { 0.0 });
        pool.forward(&x, Mode::Train);
        let g = Tensor4::from_vec(1, 2, 2, 1, vec![1.0; 4]).unwrap();
        let gx = pool.backward(&g);
        assert_eq!(gx.get(0, 1, 1, 0), 4.0);
    }

    #[test]
    fn channels_pool_independently() {
        let mut pool = Pool2d::max("p", 2, 2);
        let x = Tensor4::from_fn(1, 2, 2, 2, |_, y, xx, c| {
            if c == 0 {
                (y * 2 + xx) as f32
            } else {
                -(y as f32 * 2.0 + xx as f32)
            }
        });
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.get(0, 0, 0, 0), 3.0);
        assert_eq!(y.get(0, 0, 0, 1), 0.0);
    }

    #[test]
    fn output_shape_matches_formula() {
        let pool = Pool2d::max("p", 3, 2);
        assert_eq!(pool.output_shape((7, 9, 4)), (3, 4, 4));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn window_larger_than_input_panics() {
        let pool = Pool2d::max("p", 5, 1);
        pool.output_shape((4, 4, 1));
    }
}
