//! Batch normalisation (per-channel, NHWC).
//!
//! The paper lists batch normalisation among the orthogonal
//! convergence-acceleration techniques deep reuse can be combined with
//! (§VII); this layer makes that combination available in the stack.
//! Normalises each channel over the batch and spatial dimensions, with
//! learnable scale/shift and running statistics for inference.

use adr_tensor::Tensor4;

use crate::layer::{Layer, Mode, ParamRefMut, Shape3};

/// Per-channel batch normalisation.
pub struct BatchNorm {
    name: String,
    channels: usize,
    epsilon: f32,
    /// Running-statistics momentum: `running = m·running + (1−m)·batch`.
    momentum: f32,
    gamma: Vec<f32>,
    gamma_grad: Vec<f32>,
    gamma_vel: Vec<f32>,
    beta: Vec<f32>,
    beta_grad: Vec<f32>,
    beta_vel: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Forward cache: normalised activations and batch statistics.
    cached_norm: Option<Tensor4>,
    cached_inv_std: Vec<f32>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` channels with standard
    /// constants (`ε = 1e-5`, running momentum `0.9`).
    ///
    /// # Panics
    /// Panics when `channels == 0`.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        Self {
            name: name.into(),
            channels,
            epsilon: 1e-5,
            momentum: 0.9,
            gamma: vec![1.0; channels],
            gamma_grad: vec![0.0; channels],
            gamma_vel: vec![0.0; channels],
            beta: vec![0.0; channels],
            beta_grad: vec![0.0; channels],
            beta_vel: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_norm: None,
            cached_inv_std: Vec::new(),
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Running mean per channel (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance per channel (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    fn per_channel_count(&self, input: &Tensor4) -> usize {
        input.batch() * input.height() * input.width()
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        assert_eq!(
            input.2, self.channels,
            "batchnorm {}: channel mismatch ({} vs {})",
            self.name, input.2, self.channels
        );
        input
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let c = self.channels;
        assert_eq!(input.channels(), c, "batchnorm {}: channel mismatch", self.name);
        let count = self.per_channel_count(input).max(1) as f32;
        let data = input.as_slice();

        // Pick statistics: batch stats in training, running stats in eval.
        let (mean, var): (Vec<f32>, Vec<f32>) = if mode == Mode::Train {
            let mut mean = vec![0.0f32; c];
            for (i, &v) in data.iter().enumerate() {
                mean[i % c] += v;
            }
            for m in &mut mean {
                *m /= count;
            }
            let mut var = vec![0.0f32; c];
            for (i, &v) in data.iter().enumerate() {
                let d = v - mean[i % c];
                var[i % c] += d * d;
            }
            for v in &mut var {
                *v /= count;
            }
            // Update running statistics.
            for ch in 0..c {
                self.running_mean[ch] =
                    self.momentum * self.running_mean[ch] + (1.0 - self.momentum) * mean[ch];
                self.running_var[ch] =
                    self.momentum * self.running_var[ch] + (1.0 - self.momentum) * var[ch];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.epsilon).sqrt()).collect();
        let mut norm = input.clone();
        for (i, v) in norm.as_mut_slice().iter_mut().enumerate() {
            let ch = i % c;
            *v = (*v - mean[ch]) * inv_std[ch];
        }
        let mut out = norm.clone();
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            let ch = i % c;
            *v = self.gamma[ch] * *v + self.beta[ch];
        }
        if mode == Mode::Train {
            self.cached_norm = Some(norm);
            self.cached_inv_std = inv_std;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let norm =
            self.cached_norm.take().expect("backward called without a preceding training forward");
        let c = self.channels;
        assert_eq!(grad_out.len(), norm.len(), "batchnorm {}: backward shape mismatch", self.name);
        let count = (norm.len() / c).max(1) as f32;
        let g = grad_out.as_slice();
        let xhat = norm.as_slice();

        // Parameter gradients.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for (i, &gi) in g.iter().enumerate() {
            let ch = i % c;
            dgamma[ch] += gi * xhat[i];
            dbeta[ch] += gi;
        }
        self.gamma_grad.copy_from_slice(&dgamma);
        self.beta_grad.copy_from_slice(&dbeta);

        // Input gradient (standard batch-norm backward):
        // dx̂ = g·γ;  dx = (1/σ)·(dx̂ − mean(dx̂) − x̂·mean(dx̂·x̂))
        let mut grad_in = grad_out.clone();
        let mut mean_dxhat = vec![0.0f32; c];
        let mut mean_dxhat_xhat = vec![0.0f32; c];
        for (i, &gi) in g.iter().enumerate() {
            let ch = i % c;
            let dxhat = gi * self.gamma[ch];
            mean_dxhat[ch] += dxhat;
            mean_dxhat_xhat[ch] += dxhat * xhat[i];
        }
        for ch in 0..c {
            mean_dxhat[ch] /= count;
            mean_dxhat_xhat[ch] /= count;
        }
        for (i, v) in grad_in.as_mut_slice().iter_mut().enumerate() {
            let ch = i % c;
            let dxhat = g[i] * self.gamma[ch];
            *v = self.cached_inv_std[ch] * (dxhat - mean_dxhat[ch] - xhat[i] * mean_dxhat_xhat[ch]);
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                data: &mut self.gamma,
                grad: &mut self.gamma_grad,
                velocity: &mut self.gamma_vel,
            },
            ParamRefMut {
                data: &mut self.beta,
                grad: &mut self.beta_grad,
                velocity: &mut self.beta_vel,
            },
        ]
    }

    fn state_buffers(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.running_mean, &mut self.running_var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_tensor::rng::AdrRng;

    fn random_input(n: usize, h: usize, w: usize, c: usize, seed: u64) -> Tensor4 {
        let mut rng = AdrRng::seeded(seed);
        Tensor4::from_fn(n, h, w, c, |_, _, _, ch| rng.gauss() * (ch + 1) as f32 + ch as f32)
    }

    #[test]
    fn training_forward_normalises_each_channel() {
        let mut bn = BatchNorm::new("bn", 3);
        let x = random_input(4, 5, 5, 3, 1);
        let y = bn.forward(&x, Mode::Train);
        // Each channel of the output should be ~N(0,1) (γ=1, β=0 initially).
        for ch in 0..3 {
            let vals: Vec<f32> = y
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == ch)
                .map(|(_, &v)| v)
                .collect();
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "ch {ch} var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNorm::new("bn", 2);
        bn.gamma = vec![2.0, 0.5];
        bn.beta = vec![1.0, -1.0];
        let x = random_input(2, 3, 3, 2, 2);
        let y = bn.forward(&x, Mode::Train);
        for ch in 0..2 {
            let vals: Vec<f32> = y
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == ch)
                .map(|(_, &v)| v)
                .collect();
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!((mean - bn.beta[ch]).abs() < 1e-3, "ch {ch} mean {mean}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm::new("bn", 2);
        // Train on several batches to populate running stats.
        for seed in 0..20 {
            bn.forward(&random_input(4, 4, 4, 2, seed), Mode::Train);
        }
        // Eval on fresh data: output distribution should be near-normalised
        // because train and eval data share the generator.
        let running_before = bn.running_mean().to_vec();
        let y = bn.forward(&random_input(4, 4, 4, 2, 99), Mode::Eval);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!(mean.abs() < 0.6, "eval mean {mean}");
        // Eval must not update the running statistics.
        assert_eq!(bn.running_mean(), running_before.as_slice());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut bn = BatchNorm::new("bn", 2);
        bn.gamma = vec![1.5, 0.8];
        bn.beta = vec![0.2, -0.3];
        let x = random_input(2, 2, 2, 2, 5);
        // Loss = weighted sum of outputs (weights break symmetry).
        let weights: Vec<f32> = (0..x.len()).map(|i| ((i * 7) % 5) as f32 * 0.25 - 0.5).collect();
        let loss = |bn: &mut BatchNorm, x: &Tensor4| -> f32 {
            let y = bn.forward(x, Mode::Train);
            y.as_slice().iter().zip(&weights).map(|(a, b)| a * b).sum()
        };
        let base = loss(&mut bn, &x);
        let mut grad = Tensor4::zeros(2, 2, 2, 2);
        grad.as_mut_slice().copy_from_slice(&weights);
        // Need a fresh forward for the cache (loss() consumed it? no, set it).
        let dx = bn.backward(&grad);
        let eps = 1e-2;
        for idx in [0usize, 3, 7, 12] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut bn, &xp);
            let numeric = (lp - base) / eps;
            assert!(
                (numeric - dx.as_slice()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut bn = BatchNorm::new("bn", 2);
        let x = random_input(2, 2, 2, 2, 6);
        let y = bn.forward(&x, Mode::Train);
        let ones = Tensor4::from_vec(2, 2, 2, 2, vec![1.0; 16]).unwrap();
        bn.backward(&ones);
        let base: f32 = y.as_slice().iter().sum();
        let eps = 1e-2;
        for ch in 0..2 {
            let analytic = bn.gamma_grad[ch];
            bn.gamma[ch] += eps;
            let yp: f32 = bn.forward(&x, Mode::Train).as_slice().iter().sum();
            bn.gamma[ch] -= eps;
            let numeric = (yp - base) / eps;
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "gamma {ch}: numeric {numeric} vs {analytic}"
            );
            // Beta gradient is the per-channel count of contributing cells.
            assert!((bn.beta_grad[ch] - 8.0).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channel_count_panics() {
        let bn = BatchNorm::new("bn", 4);
        bn.output_shape((2, 2, 3));
    }
}
