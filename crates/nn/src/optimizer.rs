//! The optimiser abstraction and Adam.
//!
//! [`crate::sgd::Sgd`] is the paper's optimiser; [`Adam`] (cited in the
//! paper's related work on convergence acceleration) is provided so the
//! stack can combine deep reuse with adaptive learning rates.

use crate::layer::ParamRefMut;
use crate::sgd::Sgd;

/// A first-order optimiser: consumes gradients, updates parameters in
/// place, and clears the gradients.
pub trait Optimizer {
    /// Applies one update step over all parameters.
    ///
    /// `params` must be presented in a stable order across calls (the
    /// network's layer order guarantees this); optimisers may keep
    /// per-parameter state keyed by position.
    fn step(&mut self, params: &mut [ParamRefMut<'_>]);

    /// Steps taken so far.
    fn step_count(&self) -> usize;
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamRefMut<'_>]) {
        self.apply(params);
    }

    fn step_count(&self) -> usize {
        Sgd::step_count(self)
    }
}

/// Adam (Kingma & Ba, 2014) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step: usize,
    /// First-moment estimates, one buffer per parameter slot.
    m: Vec<Vec<f32>>,
    /// Second-moment estimates.
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with custom hyper-parameters.
    ///
    /// # Panics
    /// Panics unless `lr > 0`, `0 ≤ β₁, β₂ < 1` and `ε > 0`.
    pub fn new(lr: f32, beta1: f32, beta2: f32, epsilon: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self { lr, beta1, beta2, epsilon, step: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with the published defaults (`β₁=0.9, β₂=0.999, ε=1e-8`).
    pub fn with_defaults(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8)
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamRefMut<'_>]) {
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (slot, p) in params.iter_mut().enumerate() {
            p.check();
            if self.m.len() <= slot {
                self.m.push(vec![0.0; p.data.len()]);
                self.v.push(vec![0.0; p.data.len()]);
            }
            assert_eq!(
                self.m[slot].len(),
                p.data.len(),
                "parameter slot {slot} changed size between steps"
            );
            let (ms, vs) = (&mut self.m[slot], &mut self.v[slot]);
            for i in 0..p.data.len() {
                let g = p.grad[i];
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g;
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g * g;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                p.data[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
                p.grad[i] = 0.0;
            }
        }
    }

    fn step_count(&self) -> usize {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_once(opt: &mut dyn Optimizer, data: &mut [f32], grad: &mut [f32], vel: &mut [f32]) {
        let mut params = vec![ParamRefMut { data, grad, velocity: vel }];
        opt.step(&mut params);
    }

    #[test]
    fn adam_first_step_moves_by_lr() {
        // With bias correction, the first Adam step ≈ lr·sign(g).
        let mut adam = Adam::with_defaults(0.1);
        let mut data = [0.0f32];
        let mut grad = [3.7f32];
        let mut vel = [0.0f32];
        step_once(&mut adam, &mut data, &mut grad, &mut vel);
        assert!((data[0] + 0.1).abs() < 1e-3, "step {}", data[0]);
        assert_eq!(grad[0], 0.0);
    }

    #[test]
    fn adam_converges_on_quadratic_bowl() {
        let mut adam = Adam::with_defaults(0.1);
        let mut w = [5.0f32];
        let mut vel = [0.0f32];
        for _ in 0..300 {
            let mut grad = [2.0 * (w[0] - 1.5)];
            step_once(&mut adam, &mut w, &mut grad, &mut vel);
        }
        assert!((w[0] - 1.5).abs() < 1e-2, "w = {}", w[0]);
    }

    #[test]
    fn adam_adapts_per_coordinate_scale() {
        // Coordinates with wildly different gradient scales should both make
        // progress — the defining property over plain SGD.
        let mut adam = Adam::with_defaults(0.05);
        let mut w = [1.0f32, 1.0];
        let mut vel = [0.0f32, 0.0];
        for _ in 0..200 {
            let mut grad = [200.0 * w[0], 0.02 * w[1]];
            step_once(&mut adam, &mut w, &mut grad, &mut vel);
        }
        assert!(w[0].abs() < 0.1, "steep coord {}", w[0]);
        assert!(w[1] < 0.9, "shallow coord made progress: {}", w[1]);
    }

    #[test]
    fn sgd_satisfies_optimizer_trait() {
        let mut sgd = Sgd::constant(0.5);
        let mut data = [1.0f32];
        let mut grad = [1.0f32];
        let mut vel = [0.0f32];
        step_once(&mut sgd, &mut data, &mut grad, &mut vel);
        assert!((data[0] - 0.5).abs() < 1e-6);
        assert_eq!(Optimizer::step_count(&sgd), 1);
    }

    #[test]
    #[should_panic(expected = "changed size")]
    fn changing_parameter_shape_panics() {
        let mut adam = Adam::with_defaults(0.1);
        let mut a = [0.0f32; 3];
        let mut g = [1.0f32; 3];
        let mut v = [0.0f32; 3];
        step_once(&mut adam, &mut a, &mut g, &mut v);
        let mut a2 = [0.0f32; 4];
        let mut g2 = [1.0f32; 4];
        let mut v2 = [0.0f32; 4];
        step_once(&mut adam, &mut a2, &mut g2, &mut v2);
    }
}
