//! Crash-safe file persistence for checkpoint data.
//!
//! A checkpoint that can be torn by a crash is worse than none: a resumed
//! run would read half-written state and either fail or silently diverge.
//! Every checkpoint write in the workspace therefore goes through
//! [`write_atomic`]: the bytes land in a sibling temp file, are fsynced,
//! and are moved over the destination with an atomic rename, so the
//! destination path always holds either the complete old snapshot or the
//! complete new one. The `adr::durable_io` lint in `adr-check` flags bare
//! `File::create`/`fs::write` in checkpoint-adjacent code to keep this the
//! only write path.
//!
//! Payload integrity is covered separately by CRC32 section checksums
//! ([`crc32`]) verified on load, catching bit rot and partial copies that
//! the rename protocol cannot see.

use std::ffi::OsString;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// computed at compile time so the workspace stays dependency-free.
const CRC_TABLE: [u32; 256] = build_crc_table();

// `i` ranges over 0..256, which always fits in the u32 seed.
#[allow(clippy::cast_possible_truncation)]
const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 checksum (IEEE) of `bytes`, as used by zip/png/ethernet.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Writes `bytes` to `path` crash-safely: temp file + fsync + atomic
/// rename, then a best-effort fsync of the parent directory so the rename
/// itself is durable. After a crash at any point, `path` holds either the
/// previous complete contents or the new complete contents — never a
/// mixture.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = OsString::from(path.as_os_str());
    tmp_name.push(".tmp");
    let tmp = Path::new(&tmp_name);
    {
        let mut file = File::create(tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(tmp, path) {
        // Don't leave the orphaned temp file behind on failure.
        let _ = std::fs::remove_file(tmp);
        return Err(e);
    }
    // Durability of the rename requires the directory entry to reach disk.
    // Not all platforms allow opening a directory for sync; best effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Injection point for deterministic checkpoint-I/O faults. The trainer's
/// fault harness implements this; production code uses [`NoFaults`].
pub trait IoFault {
    /// Returns an error to inject in place of the next write attempt, or
    /// `None` to let the real write proceed.
    fn inject_io_error(&mut self) -> Option<io::Error>;
}

/// The no-op fault source used outside fault-injection tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl IoFault for NoFaults {
    fn inject_io_error(&mut self) -> Option<io::Error> {
        None
    }
}

/// Bounded retry with exponential backoff for checkpoint writes.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up (≥ 1).
    pub max_attempts: usize,
    /// Sleep before the second attempt; doubles each further attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, backoff: Duration::from_millis(10) }
    }
}

/// [`write_atomic`] with bounded retry + exponential backoff, and a fault
/// hook consulted before each attempt. Returns the last error when every
/// attempt fails; the destination file is untouched in that case.
pub fn write_atomic_retry(
    path: &Path,
    bytes: &[u8],
    policy: RetryPolicy,
    faults: &mut dyn IoFault,
) -> io::Result<()> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            let shift = u32::try_from(attempt - 1).unwrap_or(16).min(16);
            std::thread::sleep(policy.backoff * (1u32 << shift));
        }
        let result = match faults.inject_io_error() {
            Some(err) => Err(err),
            None => write_atomic(path, bytes),
        };
        match result {
            Ok(()) => return Ok(()),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("write failed with no recorded error")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Published IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"adaptive deep reuse".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn write_atomic_round_trips_and_cleans_temp() {
        let path = std::env::temp_dir().join("adr_durable_roundtrip.bin");
        write_atomic(&path, b"hello checkpoint").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello checkpoint");
        let mut tmp = OsString::from(path.as_os_str());
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists(), "temp file left behind");
        write_atomic(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        std::fs::remove_file(&path).ok();
    }

    struct FailN(usize);
    impl IoFault for FailN {
        fn inject_io_error(&mut self) -> Option<io::Error> {
            if self.0 > 0 {
                self.0 -= 1;
                Some(io::Error::other("injected fault"))
            } else {
                None
            }
        }
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let path = std::env::temp_dir().join("adr_durable_retry.bin");
        let policy = RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) };
        write_atomic_retry(&path, b"survived", policy, &mut FailN(2)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"survived");
        std::fs::remove_file(&path).ok();
    }

    /// Records every injection consultation, failing each one — the probe
    /// for attempt counts and event ordering under a persistent fault.
    struct RecordingFault {
        consultations: usize,
    }
    impl IoFault for RecordingFault {
        fn inject_io_error(&mut self) -> Option<io::Error> {
            self.consultations += 1;
            Some(io::Error::other(format!("persistent fault, attempt {}", self.consultations)))
        }
    }

    #[test]
    fn persistent_fault_exhausts_exactly_max_attempts_with_backoff() {
        let path = std::env::temp_dir().join("adr_durable_backoff.bin");
        write_atomic(&path, b"pre-fault snapshot").unwrap();
        let mut fault = RecordingFault { consultations: 0 };
        let policy = RetryPolicy { max_attempts: 4, backoff: Duration::from_millis(2) };
        let started = std::time::Instant::now();
        let err = write_atomic_retry(&path, b"never lands", policy, &mut fault).unwrap_err();
        let elapsed = started.elapsed();
        // Every attempt consulted the fault hook exactly once, in order,
        // and the returned error is the *last* attempt's.
        assert_eq!(fault.consultations, 4);
        assert!(err.to_string().contains("attempt 4"), "got: {err}");
        // Backoff doubles before attempts 2..=4: 2 + 4 + 8 ms minimum.
        assert!(elapsed >= Duration::from_millis(14), "slept only {elapsed:?}");
        // The previous snapshot survives a fully failed write.
        assert_eq!(std::fs::read(&path).unwrap(), b"pre-fault snapshot");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_max_attempts_clamps_to_one_attempt() {
        let path = std::env::temp_dir().join("adr_durable_clamp.bin");
        let mut fault = RecordingFault { consultations: 0 };
        let policy = RetryPolicy { max_attempts: 0, backoff: Duration::from_millis(1) };
        let err = write_atomic_retry(&path, b"x", policy, &mut fault);
        assert!(err.is_err());
        assert_eq!(fault.consultations, 1, "clamped to exactly one attempt");
        // And with no fault, the single attempt succeeds.
        let policy = RetryPolicy { max_attempts: 0, backoff: Duration::from_millis(1) };
        write_atomic_retry(&path, b"landed", policy, &mut NoFaults).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"landed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_gives_up_and_preserves_old_file() {
        let path = std::env::temp_dir().join("adr_durable_giveup.bin");
        write_atomic(&path, b"old good state").unwrap();
        let policy = RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) };
        let err = write_atomic_retry(&path, b"never lands", policy, &mut FailN(99));
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old good state");
        std::fs::remove_file(&path).ok();
    }
}
