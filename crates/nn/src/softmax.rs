//! Softmax + cross-entropy loss head.
//!
//! Computed jointly for numerical stability: the gradient of the combined
//! loss with respect to logits is simply `softmax(z) - onehot(label)`.

use adr_tensor::Tensor4;

/// Loss value and logits gradient for one batch.
#[derive(Clone, Debug)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits, same shape as the input.
    pub grad: Tensor4,
    /// Per-example predicted class (argmax of logits).
    pub predictions: Vec<usize>,
}

/// Computes row-wise softmax of `(n, 1, 1, classes)` logits.
///
/// # Panics
/// Panics unless the logits are flattened to `(n, 1, 1, classes)`.
pub fn softmax(logits: &Tensor4) -> Tensor4 {
    let (n, h, w, c) = logits.shape();
    assert_eq!((h, w), (1, 1), "softmax expects flattened (n,1,1,classes) logits");
    let mut out = logits.clone();
    for b in 0..n {
        let row = &mut out.as_mut_slice()[b * c..(b + 1) * c];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Joint softmax cross-entropy: loss, gradient and argmax predictions.
///
/// # Panics
/// Panics when `labels.len() != batch` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor4, labels: &[usize]) -> LossOutput {
    let (n, h, w, c) = logits.shape();
    assert_eq!((h, w), (1, 1), "loss head expects flattened (n,1,1,classes) logits");
    assert_eq!(labels.len(), n, "labels/batch size mismatch");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let mut predictions = Vec::with_capacity(n);
    let inv_n = 1.0 / n as f32;
    for (b, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let row = &probs.as_slice()[b * c..(b + 1) * c];
        let pred =
            row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0);
        predictions.push(pred);
        loss -= row[label].max(1e-12).ln();
        let grow = &mut grad.as_mut_slice()[b * c..(b + 1) * c];
        grow[label] -= 1.0;
        for g in grow.iter_mut() {
            *g *= inv_n;
        }
    }
    LossOutput { loss: loss * inv_n, grad, predictions }
}

/// Fraction of predictions matching labels.
///
/// # Panics
/// Panics when the two slices differ in length.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f32 / predictions.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(rows: &[&[f32]]) -> Tensor4 {
        let n = rows.len();
        let c = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor4::from_vec(n, 1, 1, c, data).unwrap()
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let z = logits(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax(&z);
        for b in 0..2 {
            let s: f32 = p.as_slice()[b * 3..(b + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&logits(&[&[1.0, 2.0, 3.0]]));
        let b = softmax(&logits(&[&[101.0, 102.0, 103.0]]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_ln_c_loss() {
        let z = logits(&[&[0.0, 0.0, 0.0, 0.0]]);
        let out = softmax_cross_entropy(&z, &[2]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let z = logits(&[&[10.0, -10.0]]);
        let out = softmax_cross_entropy(&z, &[0]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.predictions, vec![0]);
    }

    #[test]
    fn gradient_is_probs_minus_onehot_over_n() {
        let z = logits(&[&[0.0, 0.0]]);
        let out = softmax_cross_entropy(&z, &[1]);
        // probs = [0.5, 0.5]; grad = ([0.5, -0.5]) / 1
        assert!((out.grad.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((out.grad.as_slice()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let z = logits(&[&[0.3, -0.7, 1.2], &[-0.1, 0.8, 0.05]]);
        let labels = [2usize, 0];
        let base = softmax_cross_entropy(&z, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let mut zp = z.clone();
            zp.as_mut_slice()[idx] += eps;
            let lp = softmax_cross_entropy(&zp, &labels).loss;
            let numeric = (lp - base.loss) / eps;
            assert!(
                (numeric - base.grad.as_slice()[idx]).abs() < 1e-3,
                "idx {idx}: numeric {numeric} vs {}",
                base.grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        softmax_cross_entropy(&logits(&[&[0.0, 0.0]]), &[5]);
    }
}
