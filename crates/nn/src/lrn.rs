//! Local response normalisation (AlexNet-style, across channels).
//!
//! `b_i = a_i / (k + (α/n)·Σ_{j∈N(i)} a_j²)^β`, where `N(i)` is a window of
//! `n = 2r+1` channels centred on `i` (clamped at the borders).

use adr_tensor::Tensor4;

use crate::layer::{Layer, Mode, Shape3};

/// Cross-channel local response normalisation.
pub struct Lrn {
    name: String,
    radius: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cached_input: Option<Tensor4>,
    /// Cached denominators `s_i` from the latest training forward.
    cached_scale: Vec<f32>,
}

impl Lrn {
    /// Creates an LRN layer with the given depth radius and constants.
    ///
    /// AlexNet's published values are `radius=2, alpha=1e-4, beta=0.75, k=2`.
    pub fn new(name: impl Into<String>, radius: usize, alpha: f32, beta: f32, k: f32) -> Self {
        Self {
            name: name.into(),
            radius,
            alpha,
            beta,
            k,
            cached_input: None,
            cached_scale: Vec::new(),
        }
    }

    /// AlexNet defaults.
    pub fn alexnet(name: impl Into<String>) -> Self {
        Self::new(name, 2, 1e-4, 0.75, 2.0)
    }

    fn window_size(&self) -> f32 {
        (2 * self.radius + 1) as f32
    }
}

impl Layer for Lrn {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        input
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, h, w, c) = input.shape();
        let mut out = input.clone();
        let mut scale = vec![0.0f32; input.len()];
        let coeff = self.alpha / self.window_size();
        let a = input.as_slice();
        for b in 0..n {
            for y in 0..h {
                for x in 0..w {
                    let base = input.offset(b, y, x, 0);
                    for ch in 0..c {
                        let lo = ch.saturating_sub(self.radius);
                        let hi = (ch + self.radius).min(c - 1);
                        let mut sq = 0.0f32;
                        for j in lo..=hi {
                            let v = a[base + j];
                            sq += v * v;
                        }
                        let s = self.k + coeff * sq;
                        scale[base + ch] = s;
                        out.as_mut_slice()[base + ch] = a[base + ch] * s.powf(-self.beta);
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
            self.cached_scale = scale;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let input =
            self.cached_input.take().expect("backward called without a preceding training forward");
        let (n, h, w, c) = input.shape();
        assert_eq!(grad_out.shape(), input.shape(), "lrn {}: backward shape mismatch", self.name);
        let a = input.as_slice();
        let g = grad_out.as_slice();
        let s = &self.cached_scale;
        let mut grad_in = Tensor4::zeros(n, h, w, c);
        let coeff = 2.0 * self.alpha * self.beta / self.window_size();
        for b in 0..n {
            for y in 0..h {
                for x in 0..w {
                    let base = input.offset(b, y, x, 0);
                    // Precompute t_i = g_i · a_i · s_i^{-β-1} per channel.
                    let t: Vec<f32> = (0..c)
                        .map(|i| g[base + i] * a[base + i] * s[base + i].powf(-self.beta - 1.0))
                        .collect();
                    for m in 0..c {
                        let lo = m.saturating_sub(self.radius);
                        let hi = (m + self.radius).min(c - 1);
                        // i ranges over outputs whose window contains m.
                        let cross: f32 = t[lo..=hi].iter().sum();
                        grad_in.as_mut_slice()[base + m] = g[base + m]
                            * s[base + m].powf(-self.beta)
                            - coeff * a[base + m] * cross;
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_preserves_shape_and_shrinks_large_activations() {
        let mut lrn = Lrn::new("lrn", 1, 1.0, 0.5, 1.0);
        let x = Tensor4::from_vec(1, 1, 1, 4, vec![1.0, 10.0, 1.0, 0.0]).unwrap();
        let y = lrn.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), x.shape());
        // Channel 1 sits in a high-energy window and is damped below raw value.
        assert!(y.as_slice()[1] < 10.0);
        // A zero activation stays zero.
        assert_eq!(y.as_slice()[3], 0.0);
    }

    #[test]
    fn unit_constants_identity_when_alpha_zero() {
        let mut lrn = Lrn::new("lrn", 2, 0.0, 0.75, 1.0);
        let x = Tensor4::from_vec(1, 1, 1, 5, vec![1.0, -2.0, 3.0, -4.0, 5.0]).unwrap();
        let y = lrn.forward(&x, Mode::Eval);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut lrn = Lrn::new("lrn", 1, 0.3, 0.75, 2.0);
        let x = Tensor4::from_vec(1, 1, 2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]).unwrap();
        let y = lrn.forward(&x, Mode::Train);
        let ones = Tensor4::from_vec(1, 1, 2, 3, vec![1.0; 6]).unwrap();
        let dx = lrn.backward(&ones);
        let base: f32 = y.as_slice().iter().sum();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp: f32 = lrn.forward(&xp, Mode::Eval).as_slice().iter().sum();
            let numeric = (yp - base) / eps;
            assert!(
                (numeric - dx.as_slice()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn window_clamps_at_channel_borders() {
        let mut lrn = Lrn::new("lrn", 3, 1.0, 1.0, 0.0);
        // radius wider than channel count: every window is the whole row.
        let x = Tensor4::from_vec(1, 1, 1, 2, vec![3.0, 4.0]).unwrap();
        let y = lrn.forward(&x, Mode::Eval);
        // s = (1/7)·(9+16) for both channels.
        let s = 25.0f32 / 7.0;
        assert!((y.as_slice()[0] - 3.0 / s).abs() < 1e-5);
        assert!((y.as_slice()[1] - 4.0 / s).abs() < 1e-5);
    }
}
