//! Baseline im2col convolution — the layer adaptive deep reuse replaces.
//!
//! Forward: `y = unfold(x) · W + b` (paper Eq. 1), one GEMM of shape
//! `N×K · K×M`. Backward (Eqs. 2/3): `∇W = xᵀ·δy`, `δx = fold(δy·Wᵀ)`.
//! The layer meters exactly `N·K·M` forward and `2·N·K·M` backward
//! multiply–adds, matching the paper's complexity accounting (§II).

use adr_tensor::im2col::{col2im, im2col, ConvGeom};
use adr_tensor::matrix::Matrix;
use adr_tensor::par::matmul_par;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

use crate::flops::{FlopMeter, FlopReport};
use crate::init::Init;
use crate::layer::{Layer, Mode, ParamRefMut, Shape3};

/// A standard 2-D convolution computed as im2col + GEMM.
pub struct Conv2d {
    name: String,
    geom: ConvGeom,
    out_channels: usize,
    /// `K × M` weight matrix.
    weight: Matrix,
    weight_grad: Matrix,
    weight_vel: Matrix,
    /// Length-`M` bias.
    bias: Vec<f32>,
    bias_grad: Vec<f32>,
    bias_vel: Vec<f32>,
    /// Cached unfolded input of the latest training forward pass.
    cached_unfolded: Option<Matrix>,
    cached_batch: usize,
    meter: FlopMeter,
}

impl Conv2d {
    /// Creates a convolution with He-normal weights and zero bias.
    pub fn new(
        name: impl Into<String>,
        geom: ConvGeom,
        out_channels: usize,
        rng: &mut AdrRng,
    ) -> Self {
        let k = geom.k();
        let mut weight = Matrix::zeros(k, out_channels);
        Init::HeNormal.fill(weight.as_mut_slice(), k, out_channels, rng);
        Self {
            name: name.into(),
            geom,
            out_channels,
            weight,
            weight_grad: Matrix::zeros(k, out_channels),
            weight_vel: Matrix::zeros(k, out_channels),
            bias: vec![0.0; out_channels],
            bias_grad: vec![0.0; out_channels],
            bias_vel: vec![0.0; out_channels],
            cached_unfolded: None,
            cached_batch: 0,
            meter: FlopMeter::new(),
        }
    }

    /// The layer's convolution geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    /// Number of output channels `M`.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Borrows the `K × M` weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutably borrows the weight matrix (used by tests and model surgery).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        assert_eq!(
            input,
            (self.geom.in_h, self.geom.in_w, self.geom.in_c),
            "conv {}: input shape mismatch",
            self.name
        );
        (self.geom.out_h(), self.geom.out_w(), self.out_channels)
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        adr_tensor::checked_finite!(input.as_slice(), "conv {}: forward input", self.name);
        let unfolded = im2col(input, &self.geom);
        let (n, k) = unfolded.shape();
        adr_tensor::checked_shape!(
            (n, k),
            (self.geom.rows_for_batch(input.batch()), self.geom.k()),
            "conv {}: unfolded input vs geometry",
            self.name
        );
        let mut y = matmul_par(&unfolded, &self.weight);
        y.add_row_bias(&self.bias);
        adr_tensor::checked_finite!(y.as_slice(), "conv {}: forward output", self.name);
        let work = (n * k * self.out_channels) as u64;
        self.meter.add_forward(work, work);
        self.cached_batch = input.batch();
        self.cached_unfolded = (mode == Mode::Train).then_some(unfolded);
        Tensor4::from_vec(
            input.batch(),
            self.geom.out_h(),
            self.geom.out_w(),
            self.out_channels,
            y.into_vec(),
        )
        .expect("output shape arithmetic is consistent")
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let unfolded = self
            .cached_unfolded
            .take()
            .expect("backward called without a preceding training forward");
        let (n, k) = unfolded.shape();
        adr_tensor::checked_finite!(grad_out.as_slice(), "conv {}: backward grad_out", self.name);
        let delta_y = Matrix::from_vec(n, self.out_channels, grad_out.as_slice().to_vec())
            .expect("grad_out shape mismatch");
        // ∇W = xᵀ · δy  (Eq. 2)
        self.weight_grad = unfolded.matmul_t_a(&delta_y);
        adr_tensor::checked_shape!(
            self.weight_grad.shape(),
            self.weight.shape(),
            "conv {}: weight gradient vs weight",
            self.name
        );
        adr_tensor::checked_finite!(
            self.weight_grad.as_slice(),
            "conv {}: weight gradient",
            self.name
        );
        // ∇b = Σ_rows δy
        self.bias_grad = delta_y.column_sums();
        // δx = δy · Wᵀ, folded back to input space (Eq. 3)
        let delta_x_unf = delta_y.matmul_t_b(&self.weight);
        adr_tensor::checked_finite!(delta_x_unf.as_slice(), "conv {}: input delta", self.name);
        let work = (2 * n * k * self.out_channels) as u64;
        self.meter.add_backward(work, work);
        col2im(&delta_x_unf, &self.geom, self.cached_batch)
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                data: self.weight.as_mut_slice(),
                grad: self.weight_grad.as_mut_slice(),
                velocity: self.weight_vel.as_mut_slice(),
            },
            ParamRefMut {
                data: &mut self.bias,
                grad: &mut self.bias_grad,
                velocity: &mut self.bias_vel,
            },
        ]
    }

    fn flops(&self) -> FlopReport {
        self.meter.actual()
    }

    fn baseline_flops(&self) -> FlopReport {
        self.meter.baseline()
    }

    fn reset_flops(&mut self) {
        self.meter.reset();
    }

    fn restore_flops(&mut self, actual: FlopReport, baseline: FlopReport) {
        self.meter.restore(actual, baseline);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_conv(rng_seed: u64) -> Conv2d {
        let geom = ConvGeom::new(4, 4, 2, 3, 3, 1, 0).unwrap();
        Conv2d::new("conv", geom, 3, &mut AdrRng::seeded(rng_seed))
    }

    #[test]
    fn forward_shape_is_correct() {
        let mut conv = small_conv(1);
        let x = Tensor4::zeros(2, 4, 4, 2);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 2, 2, 3));
        assert_eq!(conv.output_shape((4, 4, 2)), (2, 2, 3));
    }

    #[test]
    fn identity_kernel_reproduces_input_channel() {
        // 1x1 kernel, 1 in-channel, 1 out-channel, unit weight: y == x.
        let geom = ConvGeom::new(3, 3, 1, 1, 1, 1, 0).unwrap();
        let mut conv = Conv2d::new("id", geom, 1, &mut AdrRng::seeded(2));
        conv.weight_mut().as_mut_slice()[0] = 1.0;
        let x = Tensor4::from_fn(1, 3, 3, 1, |_, y, xx, _| (y * 3 + xx) as f32);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn bias_shifts_every_output() {
        let geom = ConvGeom::new(2, 2, 1, 1, 1, 1, 0).unwrap();
        let mut conv = Conv2d::new("b", geom, 2, &mut AdrRng::seeded(3));
        conv.weight_mut().scale(0.0);
        conv.bias = vec![1.5, -0.5];
        let y = conv.forward(&Tensor4::zeros(1, 2, 2, 1), Mode::Eval);
        for p in 0..4 {
            assert_eq!(y.as_slice()[p * 2], 1.5);
            assert_eq!(y.as_slice()[p * 2 + 1], -0.5);
        }
    }

    #[test]
    fn backward_gradient_matches_finite_differences() {
        let mut conv = small_conv(7);
        let x = Tensor4::from_fn(1, 4, 4, 2, |_, y, xx, c| ((y * 5 + xx * 3 + c) % 7) as f32 * 0.1);
        // Loss = sum of outputs; dL/dy = 1 everywhere.
        let y = conv.forward(&x, Mode::Train);
        let ones = Tensor4::from_vec(1, 2, 2, 3, vec![1.0; 12]).unwrap();
        let dx = conv.backward(&ones);
        let base: f32 = y.as_slice().iter().sum();

        // Check a few input positions by finite differences.
        let eps = 1e-2;
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp: f32 = conv.forward(&xp, Mode::Eval).as_slice().iter().sum();
            let numeric = (yp - base) / eps;
            let analytic = dx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut conv = small_conv(11);
        let x = Tensor4::from_fn(1, 4, 4, 2, |_, y, xx, c| ((y + xx + c) % 5) as f32 * 0.2);
        let y = conv.forward(&x, Mode::Train);
        let ones = Tensor4::from_vec(1, 2, 2, 3, vec![1.0; 12]).unwrap();
        conv.backward(&ones);
        let base: f32 = y.as_slice().iter().sum();
        let eps = 1e-2;
        for &idx in &[0usize, 10, 25, 50] {
            let analytic = conv.weight_grad.as_slice()[idx];
            conv.weight.as_mut_slice()[idx] += eps;
            let yp: f32 = conv.forward(&x, Mode::Eval).as_slice().iter().sum();
            conv.weight.as_mut_slice()[idx] -= eps;
            let numeric = (yp - base) / eps;
            assert!(
                (numeric - analytic).abs() < 1e-1,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn flops_match_paper_complexity() {
        let mut conv = small_conv(1);
        let x = Tensor4::zeros(2, 4, 4, 2);
        conv.forward(&x, Mode::Train);
        let n = 2 * 2 * 2; // Nb * Oh * Ow
        let k = 18; // 2 * 3 * 3
        let m = 3;
        assert_eq!(conv.flops().forward, (n * k * m) as u64);
        conv.backward(&Tensor4::zeros(2, 2, 2, 3));
        assert_eq!(conv.flops().backward, (2 * n * k * m) as u64);
        assert_eq!(conv.baseline_flops(), conv.flops());
    }

    #[test]
    #[should_panic(expected = "backward called without")]
    fn backward_without_forward_panics() {
        let mut conv = small_conv(1);
        conv.backward(&Tensor4::zeros(1, 2, 2, 3));
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut conv = small_conv(1);
        conv.forward(&Tensor4::zeros(1, 4, 4, 2), Mode::Eval);
        assert!(conv.cached_unfolded.is_none());
    }

    #[test]
    fn params_expose_weight_and_bias() {
        let mut conv = small_conv(1);
        let params = conv.params_mut();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].data.len(), 18 * 3);
        assert_eq!(params[1].data.len(), 3);
        for p in &params {
            p.check();
        }
    }
}
