//! Running training metrics and the loss-plateau detector that drives the
//! paper's "train until the loss value stops decreasing" switching rule
//! (§V-A(c), §V-B).

/// Exponentially-smoothed running average.
#[derive(Clone, Debug)]
pub struct RunningMean {
    value: Option<f32>,
    alpha: f32,
}

impl RunningMean {
    /// Creates a running mean with smoothing factor `alpha ∈ (0, 1]`
    /// (1.0 = no smoothing, track the latest value).
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { value: None, alpha }
    }

    /// Feeds one observation.
    pub fn update(&mut self, x: f32) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value, if any observation has been fed.
    pub fn get(&self) -> Option<f32> {
        self.value
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Overwrites the smoothed value (checkpoint resume).
    ///
    /// Non-finite values are rejected by resetting to `None` (as if no
    /// observation had been fed): a NaN seeded here would propagate through
    /// every subsequent [`RunningMean::update`] and permanently disarm any
    /// detector comparing against the mean. The checkpoint decoder
    /// (`adr_core::state`) already refuses such snapshots with a typed
    /// error; this is the defence for direct callers.
    pub fn restore(&mut self, value: Option<f32>) {
        self.value = value.filter(|v| v.is_finite());
    }
}

/// Detects when a (noisy) loss series stops decreasing.
///
/// The detector fires once the best smoothed loss seen has not improved by
/// at least `min_delta` (relative) for `patience` consecutive observations.
#[derive(Clone, Debug)]
pub struct PlateauDetector {
    smoothed: RunningMean,
    best: f32,
    stale: usize,
    seen: usize,
    patience: usize,
    warmup: usize,
    min_delta: f32,
}

impl PlateauDetector {
    /// Creates a detector.
    ///
    /// * `patience` — observations without improvement before firing.
    /// * `min_delta` — relative improvement that resets the counter
    ///   (e.g. `0.01` = the smoothed loss must drop by 1 %).
    ///
    /// # Panics
    /// Panics if `patience == 0` or `min_delta < 0`.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        assert!(patience > 0, "patience must be positive");
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        Self {
            smoothed: RunningMean::new(0.3),
            best: f32::INFINITY,
            stale: 0,
            seen: 0,
            patience,
            warmup: 0,
            min_delta,
        }
    }

    /// Suppresses firing for the first `warmup` observations of each phase
    /// — early-training loss is noise, not a plateau.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Feeds one loss observation; returns `true` when a plateau is detected.
    ///
    /// The detector keeps state after firing; call [`PlateauDetector::reset`]
    /// when switching to a new training phase.
    pub fn observe(&mut self, loss: f32) -> bool {
        self.seen += 1;
        self.smoothed.update(loss);
        // `update` guarantees a value; fall back to the raw loss anyway so
        // this path can never panic mid-epoch.
        let current = self.smoothed.get().unwrap_or(loss);
        let threshold = self.best * (1.0 - self.min_delta);
        if current < threshold {
            self.best = current;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.seen > self.warmup && self.stale >= self.patience
    }

    /// Consecutive non-improving observations so far.
    pub fn stale_count(&self) -> usize {
        self.stale
    }

    /// Clears all state (new phase), including the warmup window.
    pub fn reset(&mut self) {
        self.smoothed.reset();
        self.best = f32::INFINITY;
        self.stale = 0;
        self.seen = 0;
    }

    /// Captures the mutable detector state for checkpointing; the
    /// configuration (`patience`, `warmup`, `min_delta`) is rebuilt by
    /// code, only the observation window needs to survive a restart.
    pub fn snapshot(&self) -> PlateauState {
        PlateauState {
            smoothed: self.smoothed.get(),
            best: self.best,
            stale: self.stale,
            seen: self.seen,
        }
    }

    /// Restores a previously snapshotted observation window.
    ///
    /// Non-finite fields are sanitised rather than trusted: a NaN `best`
    /// would make `current < threshold` unconditionally false and wedge the
    /// detector. `+∞` is the legitimate "no best yet" sentinel and passes
    /// through.
    pub fn restore(&mut self, state: &PlateauState) {
        self.smoothed.restore(state.smoothed);
        let poisoned =
            state.best.is_nan() || (state.best.is_infinite() && state.best.is_sign_negative());
        self.best = if poisoned { f32::INFINITY } else { state.best };
        self.stale = state.stale;
        self.seen = state.seen;
    }
}

/// The resumable portion of a [`PlateauDetector`]: everything `observe`
/// mutates, excluding the code-supplied configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlateauState {
    /// Smoothed loss, if any observation has been fed.
    pub smoothed: Option<f32>,
    /// Best smoothed loss seen this phase.
    pub best: f32,
    /// Consecutive non-improving observations.
    pub stale: usize,
    /// Observations fed this phase.
    pub seen: usize,
}

/// Accumulates per-batch loss/accuracy into epoch summaries.
#[derive(Clone, Debug, Default)]
pub struct EpochMeter {
    loss_sum: f64,
    hits: usize,
    examples: usize,
    batches: usize,
}

impl EpochMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one batch.
    ///
    /// # Shape
    /// `loss` is the mean loss over the batch; `correct ≤ batch_size` are
    /// example counts, not per-example slices.
    pub fn record(&mut self, loss: f32, correct: usize, batch_size: usize) {
        self.loss_sum += loss as f64;
        self.hits += correct;
        self.examples += batch_size;
        self.batches += 1;
    }

    /// Mean loss over recorded batches.
    pub fn mean_loss(&self) -> f32 {
        if self.batches == 0 {
            0.0
        } else {
            // The f64 accumulator exists for summation precision; rounding
            // the mean back to f32 is the intended output width.
            #[allow(clippy::cast_possible_truncation)]
            let mean = (self.loss_sum / self.batches as f64) as f32;
            mean
        }
    }

    /// Accuracy over recorded examples.
    pub fn accuracy(&self) -> f32 {
        if self.examples == 0 {
            0.0
        } else {
            self.hits as f32 / self.examples as f32
        }
    }

    /// Examples seen.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// Clears the meter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Captures the accumulator state for checkpointing.
    pub fn snapshot(&self) -> EpochMeterState {
        EpochMeterState {
            loss_sum: self.loss_sum,
            hits: self.hits,
            examples: self.examples,
            batches: self.batches,
        }
    }

    /// Restores a previously snapshotted accumulator.
    pub fn restore(&mut self, state: &EpochMeterState) {
        self.loss_sum = state.loss_sum;
        self.hits = state.hits;
        self.examples = state.examples;
        self.batches = state.batches;
    }
}

/// The resumable accumulator state of an [`EpochMeter`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochMeterState {
    /// Sum of per-batch mean losses (f64 for summation precision).
    pub loss_sum: f64,
    /// Correctly classified examples.
    pub hits: usize,
    /// Examples seen.
    pub examples: usize,
    /// Batches recorded.
    pub batches: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_tracks_constant_series() {
        let mut m = RunningMean::new(0.5);
        for _ in 0..10 {
            m.update(2.0);
        }
        assert!((m.get().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn plateau_fires_on_flat_series() {
        let mut d = PlateauDetector::new(3, 0.01);
        let mut fired_at = None;
        for i in 0..10 {
            if d.observe(1.0) {
                fired_at = Some(i);
                break;
            }
        }
        // First observation establishes best; then needs `patience` stale.
        assert_eq!(fired_at, Some(3));
    }

    #[test]
    fn plateau_does_not_fire_on_decreasing_series() {
        let mut d = PlateauDetector::new(3, 0.01);
        for i in 0..50 {
            let loss = 10.0 * (0.9f32).powi(i);
            assert!(!d.observe(loss), "fired at iteration {i}");
        }
    }

    #[test]
    fn plateau_survives_noise_within_delta() {
        let mut d = PlateauDetector::new(5, 0.001);
        // Strong decrease with mild noise should not fire early.
        let mut fired = false;
        for i in 0..40 {
            let noise = if i % 2 == 0 { 0.02 } else { -0.02 };
            let loss = 5.0 - 0.1 * i as f32 + noise;
            fired = d.observe(loss);
            if fired {
                break;
            }
        }
        assert!(!fired);
    }

    #[test]
    fn reset_starts_a_new_phase() {
        let mut d = PlateauDetector::new(2, 0.01);
        for _ in 0..5 {
            d.observe(1.0);
        }
        d.reset();
        assert_eq!(d.stale_count(), 0);
        assert!(!d.observe(0.5));
    }

    #[test]
    fn warmup_suppresses_early_firing() {
        let mut d = PlateauDetector::new(2, 0.01).with_warmup(10);
        for i in 0..10 {
            assert!(!d.observe(1.0), "fired during warmup at {i}");
        }
        assert!(d.observe(1.0), "should fire right after warmup on a flat series");
    }

    #[test]
    fn plateau_snapshot_restore_resumes_identically() {
        let mut a = PlateauDetector::new(3, 0.01);
        for i in 0..7 {
            a.observe(2.0 - 0.05 * i as f32);
        }
        let snap = a.snapshot();
        let mut b = PlateauDetector::new(3, 0.01);
        b.restore(&snap);
        // Both detectors must now agree on every future observation.
        for _ in 0..6 {
            assert_eq!(a.observe(1.7), b.observe(1.7));
            assert_eq!(a.stale_count(), b.stale_count());
        }
    }

    #[test]
    fn epoch_meter_snapshot_round_trips() {
        let mut m = EpochMeter::new();
        m.record(1.5, 4, 8);
        m.record(0.5, 6, 8);
        let snap = m.snapshot();
        let mut back = EpochMeter::new();
        back.restore(&snap);
        assert_eq!(back.mean_loss().to_bits(), m.mean_loss().to_bits());
        assert_eq!(back.accuracy().to_bits(), m.accuracy().to_bits());
        assert_eq!(back.examples(), m.examples());
    }

    #[test]
    fn epoch_meter_aggregates() {
        let mut m = EpochMeter::new();
        m.record(1.0, 3, 10);
        m.record(3.0, 7, 10);
        assert!((m.mean_loss() - 2.0).abs() < 1e-6);
        assert!((m.accuracy() - 0.5).abs() < 1e-6);
        assert_eq!(m.examples(), 20);
    }
}
