//! Rectified linear activation.

use adr_tensor::Tensor4;

use crate::layer::{Layer, Mode, Shape3};

/// Element-wise `max(0, x)` with a cached pass-through mask for backward.
pub struct Relu {
    name: String,
    /// `true` where the forward input was positive.
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), mask: Vec::new() }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        input
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let mut out = input.clone();
        if mode == Mode::Train {
            self.mask.clear();
            self.mask.reserve(out.len());
            for v in out.as_mut_slice() {
                self.mask.push(*v > 0.0);
                if *v <= 0.0 {
                    *v = 0.0;
                }
            }
        } else {
            for v in out.as_mut_slice() {
                if *v <= 0.0 {
                    *v = 0.0;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "relu {}: backward called with mismatched shape or without training forward",
            self.name
        );
        let mut grad = grad_out.clone();
        for (g, &keep) in grad.as_mut_slice().iter_mut().zip(self.mask.iter()) {
            if !keep {
                *g = 0.0;
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new("r");
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![-1.0, 2.0, 0.0, -3.5]).unwrap();
        let y = relu.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_gates_gradient_by_mask() {
        let mut relu = Relu::new("r");
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![-1.0, 2.0, 0.0, 3.0]).unwrap();
        relu.forward(&x, Mode::Train);
        let g = Tensor4::from_vec(1, 1, 2, 2, vec![10.0, 10.0, 10.0, 10.0]).unwrap();
        let gx = relu.backward(&g);
        assert_eq!(gx.as_slice(), &[0.0, 10.0, 0.0, 10.0]);
    }

    #[test]
    fn zero_input_is_not_passed_through() {
        // Subgradient choice at 0: block (mask is strict >).
        let mut relu = Relu::new("r");
        relu.forward(&Tensor4::from_vec(1, 1, 1, 1, vec![0.0]).unwrap(), Mode::Train);
        let gx = relu.backward(&Tensor4::from_vec(1, 1, 1, 1, vec![5.0]).unwrap());
        assert_eq!(gx.as_slice(), &[0.0]);
    }

    #[test]
    fn shape_is_preserved() {
        let relu = Relu::new("r");
        assert_eq!(relu.output_shape((4, 5, 6)), (4, 5, 6));
    }
}
