//! Fully-connected layer.
//!
//! Operates on flattened activations: an input of shape `(n, h, w, c)` is
//! treated as `n` feature vectors of length `h·w·c`, and the output is
//! `(n, 1, 1, units)`.

use adr_tensor::matrix::Matrix;
use adr_tensor::par::matmul_par;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

use crate::flops::{FlopMeter, FlopReport};
use crate::init::Init;
use crate::layer::{Layer, Mode, ParamRefMut, Shape3};

/// A dense (fully-connected) layer: `y = flatten(x) · W + b`.
pub struct Dense {
    name: String,
    in_features: usize,
    units: usize,
    /// `in_features × units` weight matrix.
    weight: Matrix,
    weight_grad: Matrix,
    weight_vel: Matrix,
    bias: Vec<f32>,
    bias_grad: Vec<f32>,
    bias_vel: Vec<f32>,
    cached_input: Option<Matrix>,
    in_shape: Shape3,
    meter: FlopMeter,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    ///
    /// # Shape
    /// Weight is `in_features × units`; the layer maps `n × in_features`
    /// activations to `n × units`.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        units: usize,
        rng: &mut AdrRng,
    ) -> Self {
        let mut weight = Matrix::zeros(in_features, units);
        Init::HeNormal.fill(weight.as_mut_slice(), in_features, units, rng);
        Self {
            name: name.into(),
            in_features,
            units,
            weight,
            weight_grad: Matrix::zeros(in_features, units),
            weight_vel: Matrix::zeros(in_features, units),
            bias: vec![0.0; units],
            bias_grad: vec![0.0; units],
            bias_vel: vec![0.0; units],
            cached_input: None,
            in_shape: (0, 0, 0),
            meter: FlopMeter::new(),
        }
    }

    /// Input feature count this layer expects after flattening.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Mutably borrows the weight matrix (tests / model surgery).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        assert_eq!(
            input.0 * input.1 * input.2,
            self.in_features,
            "dense {}: expected {} input features, got {:?}",
            self.name,
            self.in_features,
            input
        );
        (1, 1, self.units)
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, h, w, c) = input.shape();
        assert_eq!(h * w * c, self.in_features, "dense {}: feature mismatch", self.name);
        adr_tensor::checked_finite!(input.as_slice(), "dense {}: forward input", self.name);
        let x = Matrix::from_vec(n, self.in_features, input.as_slice().to_vec())
            .expect("shape arithmetic is consistent");
        let mut y = matmul_par(&x, &self.weight);
        y.add_row_bias(&self.bias);
        adr_tensor::checked_finite!(y.as_slice(), "dense {}: forward output", self.name);
        let work = (n * self.in_features * self.units) as u64;
        self.meter.add_forward(work, work);
        self.in_shape = (h, w, c);
        self.cached_input = (mode == Mode::Train).then_some(x);
        Tensor4::from_vec(n, 1, 1, self.units, y.into_vec())
            .expect("shape arithmetic is consistent")
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let x =
            self.cached_input.take().expect("backward called without a preceding training forward");
        let n = x.rows();
        adr_tensor::checked_finite!(grad_out.as_slice(), "dense {}: backward grad_out", self.name);
        let delta_y = Matrix::from_vec(n, self.units, grad_out.as_slice().to_vec())
            .expect("grad_out shape mismatch");
        self.weight_grad = x.matmul_t_a(&delta_y);
        adr_tensor::checked_shape!(
            self.weight_grad.shape(),
            self.weight.shape(),
            "dense {}: weight gradient vs weight",
            self.name
        );
        adr_tensor::checked_finite!(
            self.weight_grad.as_slice(),
            "dense {}: weight gradient",
            self.name
        );
        self.bias_grad = delta_y.column_sums();
        let delta_x = delta_y.matmul_t_b(&self.weight);
        adr_tensor::checked_finite!(delta_x.as_slice(), "dense {}: input delta", self.name);
        let work = (2 * n * self.in_features * self.units) as u64;
        self.meter.add_backward(work, work);
        let (h, w, c) = self.in_shape;
        Tensor4::from_vec(n, h, w, c, delta_x.into_vec()).expect("shape arithmetic is consistent")
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                data: self.weight.as_mut_slice(),
                grad: self.weight_grad.as_mut_slice(),
                velocity: self.weight_vel.as_mut_slice(),
            },
            ParamRefMut {
                data: &mut self.bias,
                grad: &mut self.bias_grad,
                velocity: &mut self.bias_vel,
            },
        ]
    }

    fn flops(&self) -> FlopReport {
        self.meter.actual()
    }

    fn reset_flops(&mut self) {
        self.meter.reset();
    }

    fn restore_flops(&mut self, actual: FlopReport, baseline: FlopReport) {
        self.meter.restore(actual, baseline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        let mut dense = Dense::new("fc", 2, 2, &mut AdrRng::seeded(1));
        dense.weight = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        dense.bias = vec![0.5, -0.5];
        let x = Tensor4::from_vec(1, 1, 1, 2, vec![1.0, 1.0]).unwrap();
        let y = dense.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn flattens_spatial_input() {
        let mut dense = Dense::new("fc", 8, 3, &mut AdrRng::seeded(2));
        let x = Tensor4::zeros(2, 2, 2, 2);
        let y = dense.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 1, 1, 3));
    }

    #[test]
    fn backward_restores_input_shape() {
        let mut dense = Dense::new("fc", 8, 3, &mut AdrRng::seeded(2));
        let x = Tensor4::zeros(2, 2, 2, 2);
        dense.forward(&x, Mode::Train);
        let gx = dense.backward(&Tensor4::zeros(2, 1, 1, 3));
        assert_eq!(gx.shape(), (2, 2, 2, 2));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut dense = Dense::new("fc", 4, 2, &mut AdrRng::seeded(5));
        let x =
            Tensor4::from_vec(2, 1, 1, 4, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8]).unwrap();
        let y = dense.forward(&x, Mode::Train);
        let ones = Tensor4::from_vec(2, 1, 1, 2, vec![1.0; 4]).unwrap();
        let dx = dense.backward(&ones);
        let base: f32 = y.as_slice().iter().sum();
        let eps = 1e-2;
        // Input gradient.
        for idx in [0usize, 3, 6] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp: f32 = dense.forward(&xp, Mode::Eval).as_slice().iter().sum();
            assert!(((yp - base) / eps - dx.as_slice()[idx]).abs() < 1e-2);
        }
        // Weight gradient.
        for idx in [0usize, 5] {
            let analytic = dense.weight_grad.as_slice()[idx];
            dense.weight.as_mut_slice()[idx] += eps;
            let yp: f32 = dense.forward(&x, Mode::Eval).as_slice().iter().sum();
            dense.weight.as_mut_slice()[idx] -= eps;
            assert!(((yp - base) / eps - analytic).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn wrong_feature_count_panics() {
        let mut dense = Dense::new("fc", 4, 2, &mut AdrRng::seeded(1));
        dense.forward(&Tensor4::zeros(1, 1, 1, 5), Mode::Eval);
    }
}
