//! Inverted dropout.

use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

use crate::layer::{Layer, Mode, Shape3};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1/(1-rate)`, so eval-mode
/// forward passes are identity.
pub struct Dropout {
    name: String,
    rate: f32,
    rng: AdrRng,
    /// Keep-mask of the latest training forward (already includes scaling).
    scale_mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(name: impl Into<String>, rate: f32, rng: AdrRng) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Self { name: name.into(), rate, rng, scale_mask: Vec::new() }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        input
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.scale_mask.clear();
            self.scale_mask.resize(input.len(), 1.0);
            return input.clone();
        }
        let keep_scale = 1.0 / (1.0 - self.rate);
        self.scale_mask.clear();
        self.scale_mask.reserve(input.len());
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            let keep = self.rng.uniform() >= self.rate;
            let s = if keep { keep_scale } else { 0.0 };
            self.scale_mask.push(s);
            *v *= s;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        assert_eq!(
            grad_out.len(),
            self.scale_mask.len(),
            "dropout {}: backward shape mismatch",
            self.name
        );
        let mut grad = grad_out.clone();
        for (g, &s) in grad.as_mut_slice().iter_mut().zip(self.scale_mask.iter()) {
            *g *= s;
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new("d", 0.5, AdrRng::seeded(1));
        let x = Tensor4::from_vec(1, 1, 1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_mode_zeroes_roughly_rate_fraction() {
        let mut d = Dropout::new("d", 0.5, AdrRng::seeded(2));
        let x = Tensor4::from_vec(1, 1, 1, 10_000, vec![1.0; 10_000]).unwrap();
        let y = d.forward(&x, Mode::Train);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros {zeros}");
        // Survivors scaled to preserve expectation.
        let mean = y.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new("d", 0.5, AdrRng::seeded(3));
        let x = Tensor4::from_vec(1, 1, 1, 8, vec![1.0; 8]).unwrap();
        let y = d.forward(&x, Mode::Train);
        let g = Tensor4::from_vec(1, 1, 1, 8, vec![1.0; 8]).unwrap();
        let gx = d.backward(&g);
        // Gradient passes exactly where activations passed.
        for (yv, gv) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn zero_rate_never_drops() {
        let mut d = Dropout::new("d", 0.0, AdrRng::seeded(4));
        let x = Tensor4::from_vec(1, 1, 1, 16, vec![2.0; 16]).unwrap();
        assert_eq!(d.forward(&x, Mode::Train), x);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn invalid_rate_panics() {
        Dropout::new("d", 1.0, AdrRng::seeded(5));
    }
}
