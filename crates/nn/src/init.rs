//! Weight initialisation schemes.

use adr_tensor::rng::AdrRng;

/// Initialisation scheme for a weight tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Init {
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`. The right choice in
    /// front of ReLU activations, used for every conv/dense layer here.
    HeNormal,
    /// Xavier/Glorot uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    XavierUniform,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Fills `out` according to the scheme.
    ///
    /// # Shape
    /// `out` is the flat weight buffer (any layout); `fan_in`/`fan_out` are
    /// the layer's input/output widths and only set the variance.
    pub fn fill(&self, out: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut AdrRng) {
        match self {
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                for v in out {
                    *v = rng.gauss_with(0.0, std);
                }
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                for v in out {
                    *v = rng.uniform_in(-bound, bound);
                }
            }
            Init::Zeros => out.fill(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = AdrRng::seeded(3);
        let mut buf = vec![0.0f32; 10_000];
        Init::HeNormal.fill(&mut buf, 50, 10, &mut rng);
        let var = buf.iter().map(|v| v * v).sum::<f32>() / buf.len() as f32;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var}, expected {expected}");
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = AdrRng::seeded(4);
        let mut buf = vec![0.0f32; 1000];
        Init::XavierUniform.fill(&mut buf, 30, 70, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(buf.iter().all(|v| v.abs() <= bound));
        assert!(buf.iter().any(|v| v.abs() > bound * 0.5), "samples should spread");
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = AdrRng::seeded(5);
        let mut buf = vec![1.0f32; 8];
        Init::Zeros.fill(&mut buf, 1, 1, &mut rng);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        Init::HeNormal.fill(&mut a, 4, 4, &mut AdrRng::seeded(9));
        Init::HeNormal.fill(&mut b, 4, 4, &mut AdrRng::seeded(9));
        assert_eq!(a, b);
    }
}
