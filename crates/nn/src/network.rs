//! Sequential network container with a softmax cross-entropy head.

use adr_tensor::Tensor4;

use crate::flops::FlopReport;
use crate::layer::{Layer, Mode, Shape3};
use crate::optimizer::Optimizer;
use crate::sgd::Sgd;
use crate::softmax::{accuracy, softmax_cross_entropy};

/// The per-image shape of a batch disagrees with the network's input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Shape the network was built for.
    pub expected: Shape3,
    /// Shape the batch carried.
    pub found: Shape3,
}

impl std::fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch shape {}x{}x{} does not match the network input {}x{}x{}",
            self.found.0,
            self.found.1,
            self.found.2,
            self.expected.0,
            self.expected.1,
            self.expected.2
        )
    }
}

impl std::error::Error for ShapeMismatch {}

/// Result of a single training step.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// Mean cross-entropy loss for the batch.
    pub loss: f32,
    /// Number of correct argmax predictions in the batch.
    pub correct: usize,
    /// Batch size.
    pub batch_size: usize,
}

/// Result of an evaluation pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// Mean loss.
    pub loss: f32,
    /// Accuracy in `[0, 1]`.
    pub accuracy: f32,
}

/// A feed-forward stack of layers ending in class logits.
///
/// Shape compatibility is validated as layers are pushed, so construction
/// errors surface at model-build time rather than on the first batch.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Shape3,
    current_shape: Shape3,
}

impl Network {
    /// Creates an empty network expecting inputs of the given per-image shape.
    pub fn new(input_shape: Shape3) -> Self {
        Self { layers: Vec::new(), input_shape, current_shape: input_shape }
    }

    /// Appends a layer, validating shape compatibility.
    ///
    /// # Panics
    /// Panics (inside the layer's `output_shape`) when the layer cannot
    /// accept the current activation shape.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.current_shape = layer.output_shape(self.current_shape);
        self.layers.push(layer);
        self
    }

    /// The expected per-image input shape.
    pub fn input_shape(&self) -> Shape3 {
        self.input_shape
    }

    /// The per-image output (logit) shape.
    pub fn output_shape(&self) -> Shape3 {
        self.current_shape
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow the layer stack (for adaptive controllers to inspect).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrow the layer stack (for adaptive controllers to retune).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Total learnable scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).map(|p| p.data.len()).sum()
    }

    /// Forward pass through every layer.
    pub fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Backward pass from the loss gradient down to the input gradient.
    pub fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// One SGD step on a labelled batch: forward, loss, backward, update.
    pub fn train_batch(&mut self, images: &Tensor4, labels: &[usize], sgd: &mut Sgd) -> StepResult {
        self.train_batch_with(images, labels, sgd)
    }

    /// [`Network::train_batch`] with any [`Optimizer`] (SGD, Adam, ...).
    pub fn train_batch_with(
        &mut self,
        images: &Tensor4,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> StepResult {
        let logits = self.forward(images, Mode::Train);
        let loss_out = softmax_cross_entropy(&logits, labels);
        self.backward(&loss_out.grad);
        let mut params: Vec<_> = self.layers.iter_mut().flat_map(|l| l.params_mut()).collect();
        optimizer.step(&mut params);
        let correct = loss_out.predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        StepResult { loss: loss_out.loss, correct, batch_size: labels.len() }
    }

    /// Loss and accuracy on a labelled batch without updating weights.
    pub fn evaluate(&mut self, images: &Tensor4, labels: &[usize]) -> EvalResult {
        let logits = self.forward(images, Mode::Eval);
        let out = softmax_cross_entropy(&logits, labels);
        EvalResult { loss: out.loss, accuracy: accuracy(&out.predictions, labels) }
    }

    /// Shape-checked inference forward pass (frozen `Mode::Eval` semantics).
    ///
    /// Unlike [`Network::forward`], which trusts its caller and lets a bad
    /// shape panic deep inside a layer, this is the serving entry point: a
    /// mismatched batch comes back as a typed [`ShapeMismatch`] before any
    /// layer runs.
    ///
    /// # Errors
    /// Returns [`ShapeMismatch`] when the per-image shape of `images`
    /// differs from [`Network::input_shape`].
    pub fn infer(&mut self, images: &Tensor4) -> Result<Tensor4, ShapeMismatch> {
        let (_, h, w, c) = images.shape();
        if (h, w, c) != self.input_shape {
            return Err(ShapeMismatch { expected: self.input_shape, found: (h, w, c) });
        }
        Ok(self.forward(images, Mode::Eval))
    }

    /// Argmax class predictions for a batch.
    pub fn predict(&mut self, images: &Tensor4) -> Vec<usize> {
        let logits = self.forward(images, Mode::Eval);
        let (n, _, _, c) = logits.shape();
        (0..n)
            .map(|b| {
                logits.as_slice()[b * c..(b + 1) * c]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Multiply–adds actually performed across all layers.
    pub fn flops(&self) -> FlopReport {
        self.layers.iter().fold(FlopReport::default(), |acc, l| acc.merged(&l.flops()))
    }

    /// Multiply–adds a fully dense network would have performed.
    pub fn baseline_flops(&self) -> FlopReport {
        self.layers.iter().fold(FlopReport::default(), |acc, l| acc.merged(&l.baseline_flops()))
    }

    /// Resets all layer FLOP counters.
    pub fn reset_flops(&mut self) {
        for l in &mut self.layers {
            l.reset_flops();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::pool::Pool2d;
    use crate::relu::Relu;
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let geom = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(Conv2d::new("conv1", geom, 4, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Pool2d::max("pool1", 2, 2)));
        net.push(Box::new(Dense::new("fc", 2 * 2 * 4, 3, &mut rng)));
        net
    }

    #[test]
    fn shapes_chain_through_layers() {
        let net = tiny_net(1);
        assert_eq!(net.output_shape(), (1, 1, 3));
        assert_eq!(net.len(), 4);
    }

    #[test]
    #[should_panic(expected = "expected 99 input features")]
    fn incompatible_layer_panics_at_push() {
        let mut rng = AdrRng::seeded(1);
        let mut net = Network::new((4, 4, 1));
        // Wrong feature count for the 4x4x1 input.
        net.push(Box::new(Dense::new("fc", 99, 3, &mut rng)));
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_net(2);
        let x = Tensor4::zeros(5, 6, 6, 1);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (5, 1, 1, 3));
    }

    #[test]
    fn training_reduces_loss_on_separable_toy_data() {
        let mut net = tiny_net(3);
        let mut sgd = Sgd::constant(0.05);
        // Three classes distinguished by which image third is bright.
        let make_batch = || {
            let mut data = Vec::new();
            let labels = vec![0usize, 1, 2];
            for cls in 0..3 {
                for y in 0..6 {
                    for _x in 0..6 {
                        let bright = y / 2 == cls;
                        data.push(if bright { 1.0 } else { 0.0 });
                    }
                }
            }
            (Tensor4::from_vec(3, 6, 6, 1, data).unwrap(), labels)
        };
        let (images, labels) = make_batch();
        let first = net.train_batch(&images, &labels, &mut sgd).loss;
        let mut last = first;
        for _ in 0..60 {
            last = net.train_batch(&images, &labels, &mut sgd).loss;
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
        let eval = net.evaluate(&images, &labels);
        assert!(eval.accuracy > 0.99, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn flops_accumulate_and_reset() {
        let mut net = tiny_net(4);
        net.forward(&Tensor4::zeros(1, 6, 6, 1), Mode::Eval);
        assert!(net.flops().forward > 0);
        net.reset_flops();
        assert_eq!(net.flops(), FlopReport::default());
    }

    #[test]
    fn infer_rejects_mismatched_shapes_and_matches_eval_forward() {
        let mut net = tiny_net(7);
        let bad = Tensor4::zeros(1, 4, 4, 1);
        let err = net.infer(&bad).unwrap_err();
        assert_eq!(err, ShapeMismatch { expected: (6, 6, 1), found: (4, 4, 1) });
        assert!(err.to_string().contains("4x4x1"));

        let good = Tensor4::from_fn(2, 6, 6, 1, |n, y, x, _| (n + y + x) as f32 * 0.05);
        let via_infer = net.infer(&good).unwrap();
        let via_forward = net.forward(&good, Mode::Eval);
        assert_eq!(via_infer.as_slice(), via_forward.as_slice());
    }

    #[test]
    fn predict_matches_evaluate_argmax() {
        let mut net = tiny_net(5);
        let x = Tensor4::from_fn(2, 6, 6, 1, |n, y, _, _| (n + y) as f32 * 0.1);
        let preds = net.predict(&x);
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut net = tiny_net(6);
        let count = net.param_count();
        // conv: 9*4 + 4, fc: 16*3 + 3
        assert_eq!(count, 36 + 4 + 48 + 3);
    }
}
