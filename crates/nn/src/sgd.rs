//! Stochastic gradient descent with momentum and learning-rate schedules.

use crate::layer::ParamRefMut;

/// Learning-rate schedule evaluated per optimisation step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant(f32),
    /// `base · decay^(step / period)` with integer division (staircase).
    StepDecay {
        /// Initial rate.
        base: f32,
        /// Multiplicative factor applied every `period` steps.
        decay: f32,
        /// Steps between decays.
        period: usize,
    },
    /// `base / (1 + rate · step)` — smooth inverse decay.
    InverseTime {
        /// Initial rate.
        base: f32,
        /// Decay strength.
        rate: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { base, decay, period } => {
                // powi takes i32; step/period counts stay far below 2^31.
                #[allow(clippy::cast_possible_truncation)]
                let periods = (step / period.max(1)) as i32;
                base * decay.powi(periods)
            }
            LrSchedule::InverseTime { base, rate } => base / (1.0 + rate * step as f32),
        }
    }
}

/// SGD with classical momentum, optional L2 weight decay, and optional
/// per-parameter gradient-norm clipping (stabilises training through the
/// gradient noise that aggressive reuse settings inject).
#[derive(Clone, Debug)]
pub struct Sgd {
    schedule: LrSchedule,
    momentum: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
    step: usize,
}

impl Sgd {
    /// Creates an optimiser.
    ///
    /// # Panics
    /// Panics if `momentum` is outside `[0, 1)` or `weight_decay < 0`.
    pub fn new(schedule: LrSchedule, momentum: f32, weight_decay: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self { schedule, momentum, weight_decay, clip_norm: None, step: 0 }
    }

    /// Plain SGD with a constant rate.
    pub fn constant(lr: f32) -> Self {
        Self::new(LrSchedule::Constant(lr), 0.0, 0.0)
    }

    /// Enables per-parameter gradient L2-norm clipping at `max_norm`.
    ///
    /// # Panics
    /// Panics if `max_norm <= 0`.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        self.clip_norm = Some(max_norm);
        self
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Overwrites the step counter (checkpoint resume): the learning-rate
    /// schedule continues exactly where the interrupted run left off.
    pub fn set_step_count(&mut self, step: usize) {
        self.step = step;
    }

    /// Learning rate the *next* update will use.
    pub fn current_lr(&self) -> f32 {
        self.schedule.at(self.step)
    }

    /// Applies one update to the given parameters and advances the step
    /// counter. `v ← μ·v − lr·(g + λ·w)`, `w ← w + v`.
    pub fn apply(&mut self, params: &mut [ParamRefMut<'_>]) {
        let lr = self.current_lr();
        for p in params.iter_mut() {
            p.check();
            // Per-parameter gradient clipping (applied before weight decay).
            let scale = match self.clip_norm {
                Some(max_norm) => {
                    let norm = p.grad.iter().map(|g| g * g).sum::<f32>().sqrt();
                    if norm > max_norm {
                        max_norm / norm
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            };
            for i in 0..p.data.len() {
                let g = scale * p.grad[i] + self.weight_decay * p.data[i];
                p.velocity[i] = self.momentum * p.velocity[i] - lr * g;
                p.data[i] += p.velocity[i];
                p.grad[i] = 0.0;
            }
        }
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param_step(sgd: &mut Sgd, data: &mut [f32], grad: &mut [f32], vel: &mut [f32]) {
        let mut params = vec![ParamRefMut { data, grad, velocity: vel }];
        sgd.apply(&mut params);
    }

    #[test]
    fn plain_sgd_descends_gradient() {
        let mut sgd = Sgd::constant(0.1);
        let mut data = [1.0f32];
        let mut grad = [2.0f32];
        let mut vel = [0.0f32];
        param_step(&mut sgd, &mut data, &mut grad, &mut vel);
        assert!((data[0] - 0.8).abs() < 1e-6);
        assert_eq!(grad[0], 0.0, "grad is cleared after the step");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut sgd = Sgd::new(LrSchedule::Constant(0.1), 0.9, 0.0);
        let mut data = [0.0f32];
        let mut vel = [0.0f32];
        let mut grad = [1.0f32];
        param_step(&mut sgd, &mut data, &mut grad, &mut vel);
        let first_step = data[0];
        grad[0] = 1.0;
        param_step(&mut sgd, &mut data, &mut grad, &mut vel);
        let second_delta = data[0] - first_step;
        assert!(second_delta.abs() > first_step.abs(), "momentum should amplify movement");
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut sgd = Sgd::new(LrSchedule::Constant(0.1), 0.0, 0.5);
        let mut data = [2.0f32];
        let mut grad = [0.0f32];
        let mut vel = [0.0f32];
        param_step(&mut sgd, &mut data, &mut grad, &mut vel);
        assert!(data[0] < 2.0);
    }

    #[test]
    fn step_decay_is_staircase() {
        let s = LrSchedule::StepDecay { base: 1.0, decay: 0.5, period: 10 };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn inverse_time_decays_smoothly() {
        let s = LrSchedule::InverseTime { base: 1.0, rate: 0.1 };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(10) - 0.5).abs() < 1e-6);
        assert!(s.at(100) < s.at(10));
    }

    #[test]
    fn quadratic_bowl_converges() {
        // Minimise f(w) = (w-3)² with gradient 2(w-3).
        let mut sgd = Sgd::new(LrSchedule::Constant(0.1), 0.5, 0.0);
        let mut w = [0.0f32];
        let mut vel = [0.0f32];
        for _ in 0..100 {
            let mut grad = [2.0 * (w[0] - 3.0)];
            param_step(&mut sgd, &mut w, &mut grad, &mut vel);
        }
        assert!((w[0] - 3.0).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn invalid_momentum_panics() {
        Sgd::new(LrSchedule::Constant(0.1), 1.0, 0.0);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut sgd = Sgd::constant(1.0).with_clip_norm(1.0);
        let mut data = [0.0f32, 0.0];
        let mut grad = [30.0f32, 40.0]; // norm 50 -> scaled to norm 1
        let mut vel = [0.0f32, 0.0];
        param_step(&mut sgd, &mut data, &mut grad, &mut vel);
        let step_norm = (data[0] * data[0] + data[1] * data[1]).sqrt();
        assert!((step_norm - 1.0).abs() < 1e-5, "step norm {step_norm}");
        // Direction preserved.
        assert!(data[0] < 0.0 && data[1] < 0.0);
        assert!((data[0] / data[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn small_gradients_are_not_clipped() {
        let mut a = Sgd::constant(0.1).with_clip_norm(100.0);
        let mut b = Sgd::constant(0.1);
        let mut d1 = [1.0f32];
        let mut d2 = [1.0f32];
        let mut g1 = [2.0f32];
        let mut g2 = [2.0f32];
        let mut v1 = [0.0f32];
        let mut v2 = [0.0f32];
        param_step(&mut a, &mut d1, &mut g1, &mut v1);
        param_step(&mut b, &mut d2, &mut g2, &mut v2);
        assert_eq!(d1, d2);
    }
}
