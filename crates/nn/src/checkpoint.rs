//! Parameter checkpointing.
//!
//! Saves and restores the learnable parameters of a network whose
//! architecture is reconstructed by code (the model builders in
//! `adr-models` are deterministic, so architecture is never serialised —
//! only the parameter values). The format is a small versioned binary
//! layout: magic, version, slot count, then per-slot length + little-endian
//! `f32` data.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::network::Network;

const MAGIC: &[u8; 4] = b"ADR1";
const VERSION: u32 = 2;

/// A snapshot of every learnable parameter of a network (in layer order)
/// plus non-learnable layer state (batch-norm running statistics, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    slots: Vec<Vec<f32>>,
    state: Vec<Vec<f32>>,
}

impl Checkpoint {
    /// Captures the current parameters and layer state of `net`.
    pub fn capture(net: &mut Network) -> Self {
        let slots = net
            .layers_mut()
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .map(|p| p.data.to_vec())
            .collect();
        let state = net
            .layers_mut()
            .iter_mut()
            .flat_map(|l| l.state_buffers())
            .map(|s| s.to_vec())
            .collect();
        Self { slots, state }
    }

    /// Number of parameter slots (weights + biases across layers).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Number of non-learnable state buffers.
    pub fn num_state_buffers(&self) -> usize {
        self.state.len()
    }

    /// Restores the captured parameters into `net`.
    ///
    /// # Errors
    /// Returns a description when the network's parameter slots disagree
    /// with the checkpoint (different architecture).
    pub fn restore(&self, net: &mut Network) -> Result<(), String> {
        // Validate both sections fully before any write, so a mismatch
        // never leaves the network partially restored.
        {
            let params: Vec<_> = net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).collect();
            if params.len() != self.slots.len() {
                return Err(format!(
                    "checkpoint has {} parameter slots, network has {}",
                    self.slots.len(),
                    params.len()
                ));
            }
            for (i, (p, saved)) in params.iter().zip(&self.slots).enumerate() {
                if p.data.len() != saved.len() {
                    return Err(format!(
                        "slot {i}: checkpoint holds {} values, network expects {}",
                        saved.len(),
                        p.data.len()
                    ));
                }
            }
        }
        {
            let state: Vec<_> =
                net.layers_mut().iter_mut().flat_map(|l| l.state_buffers()).collect();
            if state.len() != self.state.len() {
                return Err(format!(
                    "checkpoint has {} state buffers, network has {}",
                    self.state.len(),
                    state.len()
                ));
            }
            for (i, (s, saved)) in state.iter().zip(&self.state).enumerate() {
                if s.len() != saved.len() {
                    return Err(format!(
                        "state buffer {i}: checkpoint holds {} values, network expects {}",
                        saved.len(),
                        s.len()
                    ));
                }
            }
        }
        let mut params: Vec<_> = net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).collect();
        for (p, saved) in params.iter_mut().zip(&self.slots) {
            p.data.copy_from_slice(saved);
        }
        drop(params);
        let mut state: Vec<_> =
            net.layers_mut().iter_mut().flat_map(|l| l.state_buffers()).collect();
        for (s, saved) in state.iter_mut().zip(&self.state) {
            s.copy_from_slice(saved);
        }
        Ok(())
    }

    /// Serialises into a writer.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        for section in [&self.slots, &self.state] {
            w.write_all(&(section.len() as u64).to_le_bytes())?;
            for slot in section {
                w.write_all(&(slot.len() as u64).to_le_bytes())?;
                for &v in slot {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Deserialises from a reader.
    ///
    /// # Errors
    /// Fails on I/O errors, bad magic, or unsupported versions.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ADR checkpoint"));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let mut buf8 = [0u8; 8];
        let mut read_section = |r: &mut dyn Read| -> io::Result<Vec<Vec<f32>>> {
            let too_big =
                || io::Error::new(io::ErrorKind::InvalidData, "section length overflows usize");
            r.read_exact(&mut buf8)?;
            let num_slots = usize::try_from(u64::from_le_bytes(buf8)).map_err(|_| too_big())?;
            let mut slots = Vec::with_capacity(num_slots.min(1 << 20));
            for _ in 0..num_slots {
                r.read_exact(&mut buf8)?;
                let len = usize::try_from(u64::from_le_bytes(buf8)).map_err(|_| too_big())?;
                let mut bytes = vec![0u8; len * 4];
                r.read_exact(&mut bytes)?;
                let slot = bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                slots.push(slot);
            }
            Ok(slots)
        };
        let slots = read_section(r)?;
        let state = read_section(r)?;
        Ok(Self { slots, state })
    }

    /// Saves to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut file)
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// Propagates I/O and format errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::relu::Relu;
    use crate::{Mode, Sgd};
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;
    use adr_tensor::Tensor4;

    fn net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((5, 5, 1));
        let geom = ConvGeom::new(5, 5, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(Conv2d::new("conv", geom, 2, &mut rng)));
        net.push(Box::new(Relu::new("relu")));
        net.push(Box::new(Dense::new("fc", 3 * 3 * 2, 2, &mut rng)));
        net
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut a = net(1);
        let snap = Checkpoint::capture(&mut a);
        assert_eq!(snap.num_slots(), 4); // conv w+b, dense w+b
                                         // Train a bit; parameters drift. Gaussian input keeps ReLUs alive
                                         // and distinct images give a non-degenerate loss gradient.
        let mut sgd = Sgd::constant(0.1);
        let mut xrng = AdrRng::seeded(9);
        let x = Tensor4::from_fn(2, 5, 5, 1, |_, _, _, _| xrng.gauss());
        for _ in 0..5 {
            a.train_batch(&x, &[0, 1], &mut sgd);
        }
        let drifted = Checkpoint::capture(&mut a);
        assert_ne!(snap, drifted);
        // Restore: parameters revert exactly.
        snap.restore(&mut a).unwrap();
        assert_eq!(Checkpoint::capture(&mut a), snap);
    }

    #[test]
    fn serialised_round_trip_is_bit_exact() {
        let mut a = net(2);
        let snap = Checkpoint::capture(&mut a);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.num_scalars(), snap.num_scalars());
    }

    #[test]
    fn file_round_trip_transfers_behaviour() {
        let dir = std::env::temp_dir().join("adr_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.adr");
        let mut trained = net(3);
        let mut sgd = Sgd::constant(0.05);
        let x = Tensor4::from_fn(2, 5, 5, 1, |_, y, xx, _| (y * 5 + xx) as f32 * 0.05);
        for _ in 0..10 {
            trained.train_batch(&x, &[0, 1], &mut sgd);
        }
        Checkpoint::capture(&mut trained).save(&path).unwrap();
        // A freshly built net with different seed gives different logits...
        let mut fresh = net(4);
        let before = fresh.forward(&x, Mode::Eval);
        // ...until the checkpoint is loaded.
        Checkpoint::load(&path).unwrap().restore(&mut fresh).unwrap();
        let after = fresh.forward(&x, Mode::Eval);
        let expected = trained.forward(&x, Mode::Eval);
        assert_ne!(before.as_slice(), after.as_slice());
        assert_eq!(after.as_slice(), expected.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_rejects_mismatched_architecture() {
        let mut a = net(5);
        let snap = Checkpoint::capture(&mut a);
        let mut rng = AdrRng::seeded(6);
        let mut other = Network::new((5, 5, 1));
        other.push(Box::new(Dense::new("fc", 25, 3, &mut rng)));
        let err = snap.restore(&mut other).unwrap_err();
        assert!(err.contains("slots"), "{err}");
        // Partial mismatch (right slot count, wrong sizes) is also refused
        // without mutating anything.
        let mut rng = AdrRng::seeded(7);
        let mut same_count = Network::new((5, 5, 1));
        let geom = ConvGeom::new(5, 5, 1, 3, 3, 1, 0).unwrap();
        same_count.push(Box::new(Conv2d::new("conv", geom, 3, &mut rng)));
        same_count.push(Box::new(Dense::new("fc", 3 * 3 * 3, 2, &mut rng)));
        let before = Checkpoint::capture(&mut same_count);
        assert!(snap.restore(&mut same_count).is_err());
        assert_eq!(Checkpoint::capture(&mut same_count), before, "no partial writes");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOPE\x01\x00\x00\x00";
        let err = Checkpoint::read_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
