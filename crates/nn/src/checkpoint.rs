//! Parameter checkpointing.
//!
//! Saves and restores the learnable parameters of a network whose
//! architecture is reconstructed by code (the model builders in
//! `adr-models` are deterministic, so architecture is never serialised —
//! only the parameter values). The format is a small versioned binary
//! layout: magic, version, slot count, then per-slot length + little-endian
//! `f32` data, closed by a CRC32 checksum over everything after the header
//! so bit rot and partial copies fail loudly instead of restoring garbage.
//!
//! Failure handling is transactional on both axes: [`Checkpoint::restore`]
//! validates every slot and state-buffer length before mutating anything,
//! and [`Checkpoint::save`] goes through the atomic-rename protocol in
//! [`crate::durable`], so neither a mismatched file nor a crash mid-save
//! can leave a half-written network or checkpoint behind.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::durable;
use crate::network::Network;

const MAGIC: &[u8; 4] = b"ADR1";
const VERSION: u32 = 3;

/// Why a checkpoint could not be decoded or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the `ADR1` magic.
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The byte stream ended inside the named structure.
    Truncated(&'static str),
    /// The stored CRC32 disagrees with the payload: corruption.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// A recorded length does not fit in memory on this platform.
    SectionOverflow,
    /// Extra bytes follow a structurally complete checkpoint.
    TrailingBytes,
    /// The checkpoint and the network disagree on the number of
    /// parameter slots (different architecture).
    SlotCountMismatch {
        /// Slots in the checkpoint.
        expected: usize,
        /// Slots in the target network.
        found: usize,
    },
    /// One parameter slot has the wrong length (different layer shape).
    SlotLenMismatch {
        /// Slot index in capture order.
        index: usize,
        /// Values in the checkpoint slot.
        expected: usize,
        /// Values the network expects.
        found: usize,
    },
    /// The checkpoint and the network disagree on the number of
    /// non-learnable state buffers.
    StateCountMismatch {
        /// Buffers in the checkpoint.
        expected: usize,
        /// Buffers in the target network.
        found: usize,
    },
    /// One state buffer has the wrong length.
    StateLenMismatch {
        /// Buffer index in capture order.
        index: usize,
        /// Values in the checkpoint buffer.
        expected: usize,
        /// Values the network expects.
        found: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            Self::BadMagic => write!(f, "not an ADR checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated(what) => write!(f, "checkpoint truncated inside {what}"),
            Self::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch (recorded {expected:#010x}, computed {actual:#010x})"
            ),
            Self::SectionOverflow => write!(f, "checkpoint section length overflows usize"),
            Self::TrailingBytes => write!(f, "trailing bytes after checkpoint payload"),
            Self::SlotCountMismatch { expected, found } => {
                write!(f, "checkpoint has {expected} parameter slots, network has {found}")
            }
            Self::SlotLenMismatch { index, expected, found } => write!(
                f,
                "slot {index}: checkpoint holds {expected} values, network expects {found}"
            ),
            Self::StateCountMismatch { expected, found } => {
                write!(f, "checkpoint has {expected} state buffers, network has {found}")
            }
            Self::StateLenMismatch { index, expected, found } => write!(
                f,
                "state buffer {index}: checkpoint holds {expected} values, network expects {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// A snapshot of every learnable parameter of a network (in layer order)
/// plus non-learnable layer state (batch-norm running statistics, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    slots: Vec<Vec<f32>>,
    state: Vec<Vec<f32>>,
}

impl Checkpoint {
    /// Captures the current parameters and layer state of `net`.
    pub fn capture(net: &mut Network) -> Self {
        let slots = net
            .layers_mut()
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .map(|p| p.data.to_vec())
            .collect();
        let state = net
            .layers_mut()
            .iter_mut()
            .flat_map(|l| l.state_buffers())
            .map(|s| s.to_vec())
            .collect();
        Self { slots, state }
    }

    /// Number of parameter slots (weights + biases across layers).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Number of non-learnable state buffers.
    pub fn num_state_buffers(&self) -> usize {
        self.state.len()
    }

    /// Restores the captured parameters into `net`, transactionally: every
    /// slot and state-buffer length is validated before the first write, so
    /// a mismatched checkpoint never leaves `net` partially restored.
    ///
    /// # Errors
    /// Returns a mismatch variant when the network's parameter slots or
    /// state buffers disagree with the checkpoint (different architecture).
    pub fn restore(&self, net: &mut Network) -> Result<(), CheckpointError> {
        {
            let params: Vec<_> = net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).collect();
            if params.len() != self.slots.len() {
                return Err(CheckpointError::SlotCountMismatch {
                    expected: self.slots.len(),
                    found: params.len(),
                });
            }
            for (i, (p, saved)) in params.iter().zip(&self.slots).enumerate() {
                if p.data.len() != saved.len() {
                    return Err(CheckpointError::SlotLenMismatch {
                        index: i,
                        expected: saved.len(),
                        found: p.data.len(),
                    });
                }
            }
        }
        {
            let state: Vec<_> =
                net.layers_mut().iter_mut().flat_map(|l| l.state_buffers()).collect();
            if state.len() != self.state.len() {
                return Err(CheckpointError::StateCountMismatch {
                    expected: self.state.len(),
                    found: state.len(),
                });
            }
            for (i, (s, saved)) in state.iter().zip(&self.state).enumerate() {
                if s.len() != saved.len() {
                    return Err(CheckpointError::StateLenMismatch {
                        index: i,
                        expected: saved.len(),
                        found: s.len(),
                    });
                }
            }
        }
        let mut params: Vec<_> = net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).collect();
        for (p, saved) in params.iter_mut().zip(&self.slots) {
            p.data.copy_from_slice(saved);
        }
        drop(params);
        let mut state: Vec<_> =
            net.layers_mut().iter_mut().flat_map(|l| l.state_buffers()).collect();
        for (s, saved) in state.iter_mut().zip(&self.state) {
            s.copy_from_slice(saved);
        }
        Ok(())
    }

    /// Serialises to the on-disk byte layout: magic, version, both f32
    /// sections, and a trailing CRC32 over everything after the header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        for section in [&self.slots, &self.state] {
            buf.extend_from_slice(&(section.len() as u64).to_le_bytes());
            for slot in section {
                buf.extend_from_slice(&(slot.len() as u64).to_le_bytes());
                for &v in slot {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let crc = durable::crc32(&buf[8..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserialises the byte layout produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    /// Fails closed on bad magic, unsupported versions, truncation,
    /// checksum mismatches, and trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // Magic is checked before the full header so a short junk file
        // reports "not a checkpoint" rather than "truncated".
        if bytes.len() < 4 {
            return Err(CheckpointError::Truncated("magic"));
        }
        if &bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < 12 {
            return Err(CheckpointError::Truncated("header"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let body = &bytes[8..bytes.len() - 4];
        let trailer = &bytes[bytes.len() - 4..];
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = durable::crc32(body);
        if expected != actual {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        let mut cursor = Cursor { bytes: body, pos: 0 };
        let slots = cursor.read_section()?;
        let state = cursor.read_section()?;
        if cursor.pos != body.len() {
            return Err(CheckpointError::TrailingBytes);
        }
        Ok(Self { slots, state })
    }

    /// Serialises into a writer ([`Checkpoint::to_bytes`] layout).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Deserialises from a reader ([`Checkpoint::from_bytes`] layout).
    ///
    /// # Errors
    /// Fails on I/O errors or any format error, mapped to `InvalidData`.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Saves to a file crash-safely (temp file + fsync + atomic rename via
    /// [`crate::durable::write_atomic`]).
    ///
    /// # Errors
    /// Propagates I/O errors; the destination is untouched on failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        durable::write_atomic(path.as_ref(), &self.to_bytes())?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// Propagates I/O and format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// Bounds-checked reader over the checksummed body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn read_u64(&mut self, what: &'static str) -> Result<u64, CheckpointError> {
        let end = self.pos.checked_add(8).ok_or(CheckpointError::SectionOverflow)?;
        let chunk = self.bytes.get(self.pos..end).ok_or(CheckpointError::Truncated(what))?;
        self.pos = end;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        Ok(u64::from_le_bytes(buf))
    }

    fn read_section(&mut self) -> Result<Vec<Vec<f32>>, CheckpointError> {
        let num_slots = usize::try_from(self.read_u64("section header")?)
            .map_err(|_| CheckpointError::SectionOverflow)?;
        let mut slots = Vec::with_capacity(num_slots.min(1 << 20));
        for _ in 0..num_slots {
            let len = usize::try_from(self.read_u64("slot header")?)
                .map_err(|_| CheckpointError::SectionOverflow)?;
            let nbytes = len.checked_mul(4).ok_or(CheckpointError::SectionOverflow)?;
            let end = self.pos.checked_add(nbytes).ok_or(CheckpointError::SectionOverflow)?;
            let chunk =
                self.bytes.get(self.pos..end).ok_or(CheckpointError::Truncated("f32 section"))?;
            self.pos = end;
            let slot = chunk
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            slots.push(slot);
        }
        Ok(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::relu::Relu;
    use crate::{Mode, Sgd};
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;
    use adr_tensor::Tensor4;

    fn net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((5, 5, 1));
        let geom = ConvGeom::new(5, 5, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(Conv2d::new("conv", geom, 2, &mut rng)));
        net.push(Box::new(Relu::new("relu")));
        net.push(Box::new(Dense::new("fc", 3 * 3 * 2, 2, &mut rng)));
        net
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut a = net(1);
        let snap = Checkpoint::capture(&mut a);
        assert_eq!(snap.num_slots(), 4); // conv w+b, dense w+b
                                         // Train a bit; parameters drift. Gaussian input keeps ReLUs alive
                                         // and distinct images give a non-degenerate loss gradient.
        let mut sgd = Sgd::constant(0.1);
        let mut xrng = AdrRng::seeded(9);
        let x = Tensor4::from_fn(2, 5, 5, 1, |_, _, _, _| xrng.gauss());
        for _ in 0..5 {
            a.train_batch(&x, &[0, 1], &mut sgd);
        }
        let drifted = Checkpoint::capture(&mut a);
        assert_ne!(snap, drifted);
        // Restore: parameters revert exactly.
        snap.restore(&mut a).unwrap();
        assert_eq!(Checkpoint::capture(&mut a), snap);
    }

    #[test]
    fn serialised_round_trip_is_bit_exact() {
        let mut a = net(2);
        let snap = Checkpoint::capture(&mut a);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.num_scalars(), snap.num_scalars());
    }

    #[test]
    fn file_round_trip_transfers_behaviour() {
        let dir = std::env::temp_dir().join("adr_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.adr");
        let mut trained = net(3);
        let mut sgd = Sgd::constant(0.05);
        let x = Tensor4::from_fn(2, 5, 5, 1, |_, y, xx, _| (y * 5 + xx) as f32 * 0.05);
        for _ in 0..10 {
            trained.train_batch(&x, &[0, 1], &mut sgd);
        }
        Checkpoint::capture(&mut trained).save(&path).unwrap();
        // A freshly built net with different seed gives different logits...
        let mut fresh = net(4);
        let before = fresh.forward(&x, Mode::Eval);
        // ...until the checkpoint is loaded.
        Checkpoint::load(&path).unwrap().restore(&mut fresh).unwrap();
        let after = fresh.forward(&x, Mode::Eval);
        let expected = trained.forward(&x, Mode::Eval);
        assert_ne!(before.as_slice(), after.as_slice());
        assert_eq!(after.as_slice(), expected.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_rejects_mismatched_architecture() {
        let mut a = net(5);
        let snap = Checkpoint::capture(&mut a);
        let mut rng = AdrRng::seeded(6);
        let mut other = Network::new((5, 5, 1));
        other.push(Box::new(Dense::new("fc", 25, 3, &mut rng)));
        let err = snap.restore(&mut other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::SlotCountMismatch { expected: 4, found: 2 }),
            "{err}"
        );
        // Partial mismatch (right slot count, wrong sizes) is also refused
        // without mutating anything.
        let mut rng = AdrRng::seeded(7);
        let mut same_count = Network::new((5, 5, 1));
        let geom = ConvGeom::new(5, 5, 1, 3, 3, 1, 0).unwrap();
        same_count.push(Box::new(Conv2d::new("conv", geom, 3, &mut rng)));
        same_count.push(Box::new(Dense::new("fc", 3 * 3 * 3, 2, &mut rng)));
        let before = Checkpoint::capture(&mut same_count);
        let err = snap.restore(&mut same_count).unwrap_err();
        assert!(matches!(err, CheckpointError::SlotLenMismatch { .. }), "{err}");
        assert_eq!(Checkpoint::capture(&mut same_count), before, "no partial writes");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOPE\x01\x00\x00\x00";
        let err = Checkpoint::from_bytes(bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic), "{err}");
        // And through the io-flavoured reader, it maps to InvalidData.
        let err = Checkpoint::read_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
