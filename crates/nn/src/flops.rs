//! Exact multiply–add accounting.
//!
//! The paper reports computation savings through complexity formulas
//! (Eqs. 5/6/12/20) that count multiply–adds. Every layer in this workspace
//! meters the multiply–adds it *actually* performs, and reuse layers also
//! report what a dense implementation *would have* performed, so savings can
//! be stated exactly rather than estimated.

/// Forward/backward multiply–add counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlopReport {
    /// Multiply–adds in forward passes.
    pub forward: u64,
    /// Multiply–adds in backward passes.
    pub backward: u64,
}

impl FlopReport {
    /// Forward + backward.
    pub fn total(&self) -> u64 {
        self.forward + self.backward
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &FlopReport) -> FlopReport {
        FlopReport {
            forward: self.forward + other.forward,
            backward: self.backward + other.backward,
        }
    }
}

/// A resettable accumulator layers embed to meter their work.
#[derive(Clone, Debug, Default)]
pub struct FlopMeter {
    actual: FlopReport,
    baseline: FlopReport,
}

impl FlopMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records forward multiply–adds; for dense layers `baseline == actual`.
    pub fn add_forward(&mut self, actual: u64, baseline: u64) {
        self.actual.forward += actual;
        self.baseline.forward += baseline;
    }

    /// Records backward multiply–adds.
    pub fn add_backward(&mut self, actual: u64, baseline: u64) {
        self.actual.backward += actual;
        self.baseline.backward += baseline;
    }

    /// Work actually performed.
    pub fn actual(&self) -> FlopReport {
        self.actual
    }

    /// Work a dense implementation would have performed.
    pub fn baseline(&self) -> FlopReport {
        self.baseline
    }

    /// Fraction of baseline work avoided, in `[0, 1]`; zero when no baseline
    /// work has been recorded.
    pub fn savings(&self) -> f64 {
        let base = self.baseline.total();
        if base == 0 {
            return 0.0;
        }
        1.0 - self.actual.total() as f64 / base as f64
    }

    /// Zeroes both counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Overwrites both counters (checkpoint resume): resumed runs report
    /// the same cumulative savings as an uninterrupted run.
    pub fn restore(&mut self, actual: FlopReport, baseline: FlopReport) {
        self.actual = actual;
        self.baseline = baseline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_total_and_merge() {
        let a = FlopReport { forward: 10, backward: 20 };
        let b = FlopReport { forward: 1, backward: 2 };
        assert_eq!(a.total(), 30);
        assert_eq!(a.merged(&b), FlopReport { forward: 11, backward: 22 });
    }

    #[test]
    fn meter_tracks_savings() {
        let mut m = FlopMeter::new();
        m.add_forward(30, 100);
        m.add_backward(20, 100);
        assert_eq!(m.actual().total(), 50);
        assert_eq!(m.baseline().total(), 200);
        assert!((m.savings() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn savings_is_zero_without_baseline() {
        let m = FlopMeter::new();
        assert_eq!(m.savings(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = FlopMeter::new();
        m.add_forward(5, 5);
        m.reset();
        assert_eq!(m.actual(), FlopReport::default());
        assert_eq!(m.baseline(), FlopReport::default());
    }

    #[test]
    fn negative_savings_when_overhead_dominates() {
        // Hashing overhead can exceed a small layer's dense cost
        // (paper: benefit requires H << M(1 - r_c)).
        let mut m = FlopMeter::new();
        m.add_forward(150, 100);
        assert!(m.savings() < 0.0);
    }
}
