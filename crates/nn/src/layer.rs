//! The object-safe layer trait and learnable-parameter access.

use adr_tensor::Tensor4;

use crate::flops::FlopReport;

/// Per-image activation shape `(height, width, channels)`.
pub type Shape3 = (usize, usize, usize);

/// Whether a forward pass is part of training or evaluation.
///
/// Training mode enables dropout and lets reuse layers record the clustering
/// needed by the backward pass; evaluation mode disables dropout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Forward pass that will be followed by a backward pass.
    Train,
    /// Inference-only forward pass.
    Eval,
}

/// Borrowed view of one learnable tensor: values, gradient, and the
/// optimizer-owned velocity buffer, all flat and of equal length.
///
/// Layers own their parameters in whatever shape suits them (a `Matrix` for
/// conv/dense weights, a `Vec<f32>` for biases) and lend these parallel
/// views to the optimizer each step.
pub struct ParamRefMut<'a> {
    /// Current values.
    pub data: &'a mut [f32],
    /// Gradient from the latest backward pass.
    pub grad: &'a mut [f32],
    /// Momentum/velocity state.
    pub velocity: &'a mut [f32],
}

impl ParamRefMut<'_> {
    /// Asserts the three buffers are parallel; called by the optimizer.
    ///
    /// # Panics
    /// Panics when the grad or velocity length disagrees with the data.
    pub fn check(&self) {
        assert_eq!(self.data.len(), self.grad.len(), "grad buffer length mismatch");
        assert_eq!(self.data.len(), self.velocity.len(), "velocity buffer length mismatch");
    }
}

/// A neural-network layer.
///
/// Layers are stateful: `forward` caches the activations needed by
/// `backward`, and `backward` both computes the input gradient and fills
/// parameter gradients (if any). `backward` must follow a
/// `forward(Mode::Train)` on the same batch.
///
/// Every `impl Layer` in this crate that defines `forward` must be covered
/// by a finite-difference gradient check: add the type name to a
/// `// grad-check: ...` registry comment in `tests/gradient_checks.rs`, or
/// place `// grad-check: exempt — <reason>` directly above the impl if the
/// layer has nothing to differentiate. The `adr::grad_coverage` lint in
/// `adr-check` enforces this.
pub trait Layer {
    /// Short human-readable name used in reports (e.g. `"conv1"`).
    fn name(&self) -> &str;

    /// Output activation shape for a given input shape.
    ///
    /// # Panics
    /// May panic if `input` is incompatible with the layer's configuration.
    fn output_shape(&self, input: Shape3) -> Shape3;

    /// Computes the layer output for a batch.
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4;

    /// Propagates the output gradient to the input, updating parameter
    /// gradients as a side effect.
    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4;

    /// Mutable access to learnable parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        Vec::new()
    }

    /// Multiply–add counts performed since the last [`Layer::reset_flops`].
    fn flops(&self) -> FlopReport {
        FlopReport::default()
    }

    /// Multiply–adds a *dense* implementation of this layer would have
    /// performed for the same calls — the paper's baseline `N·K·M` cost.
    /// Defaults to the actual count for layers with no reuse path.
    fn baseline_flops(&self) -> FlopReport {
        self.flops()
    }

    /// Resets FLOP counters.
    fn reset_flops(&mut self) {}

    /// Overwrites FLOP counters with checkpointed totals so a resumed run
    /// reports the same cumulative work as an uninterrupted one. Layers
    /// without meters keep the no-op default.
    fn restore_flops(&mut self, _actual: FlopReport, _baseline: FlopReport) {}

    /// Non-learnable state that must survive checkpointing (e.g. batch
    /// normalisation's running statistics). Buffers must be returned in a
    /// stable order. Stateless layers keep the empty default.
    fn state_buffers(&mut self) -> Vec<&mut [f32]> {
        Vec::new()
    }

    /// Downcast hook so controllers can retune concrete layer types living
    /// behind `Box<dyn Layer>` (the adaptive controller uses this to reach
    /// `ReuseConv2d`). Layers with no tunable state keep the `None` default.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Immutable counterpart of [`Layer::as_any_mut`].
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ref_check_accepts_parallel_buffers() {
        let mut d = vec![1.0f32; 4];
        let mut g = vec![0.0f32; 4];
        let mut v = vec![0.0f32; 4];
        ParamRefMut { data: &mut d, grad: &mut g, velocity: &mut v }.check();
    }

    #[test]
    #[should_panic(expected = "grad buffer length mismatch")]
    fn param_ref_check_rejects_mismatch() {
        let mut d = vec![1.0f32; 4];
        let mut g = vec![0.0f32; 3];
        let mut v = vec![0.0f32; 4];
        ParamRefMut { data: &mut d, grad: &mut g, velocity: &mut v }.check();
    }
}
