//! A from-scratch CNN training stack.
//!
//! The paper implements adaptive deep reuse inside TensorFlow; this crate is
//! the equivalent substrate built in Rust: convolution via im2col + GEMM,
//! pooling, dense layers, softmax/cross-entropy, SGD with momentum, and
//! exact FLOP accounting so computation savings can be reported with the
//! paper's own complexity formulas.
//!
//! # Architecture
//!
//! * [`layer::Layer`] — the object-safe layer trait. Layers cache whatever
//!   they need during `forward` and consume it in `backward`.
//! * [`network::Network`] — a sequential container with a softmax
//!   cross-entropy head, wired to [`sgd::Sgd`].
//! * [`flops::FlopMeter`] — every layer meters the multiply–adds it actually
//!   performs, which is how the reuse crate reports the paper's
//!   *remaining ratio* based savings.
//!
//! The baseline convolution lives in [`conv::Conv2d`]; the deep-reuse
//! replacement (`ReuseConv2d`) lives in the `adr-reuse` crate and implements
//! the same [`layer::Layer`] trait, so models can swap one for the other.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod batchnorm;
pub mod checkpoint;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod durable;
pub mod flops;
pub mod init;
pub mod layer;
pub mod lrn;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod pool;
pub mod relu;
pub mod sgd;
pub mod softmax;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use flops::{FlopMeter, FlopReport};
pub use layer::{Layer, Mode, ParamRefMut, Shape3};
pub use network::Network;
pub use optimizer::{Adam, Optimizer};
pub use sgd::{LrSchedule, Sgd};
