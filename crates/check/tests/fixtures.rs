//! Integration tests: the binary must fail on the seeded fixture workspace
//! and pass on the real workspace it ships in.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::path::Path;
use std::process::Command;

fn manifest_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn run_on(root: &Path) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_adr-check"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("adr-check binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().expect("adr-check exits normally"), text)
}

#[test]
fn fixture_violations_fail_the_check() {
    let root = manifest_dir().join("fixtures/violations");
    let (code, text) = run_on(&root);
    assert_eq!(code, 1, "seeded violations must exit 1; output:\n{text}");
    // Every lint fires at least once on the fixture workspace.
    assert!(text.contains("adr::no_panic"), "missing no_panic finding:\n{text}");
    assert!(text.contains("adr::flop_coverage"), "missing flop_coverage finding:\n{text}");
    assert!(text.contains("adr::shape_docs"), "missing shape_docs finding:\n{text}");
    assert!(text.contains("adr::determinism"), "missing determinism finding:\n{text}");
    assert!(text.contains("adr::float_eq"), "missing float_eq finding:\n{text}");
    assert!(text.contains("adr::grad_coverage"), "missing grad_coverage finding:\n{text}");
    assert!(text.contains("adr::durable_io"), "missing durable_io finding:\n{text}");
    // The audited/compliant halves of the fixtures stay quiet.
    assert!(!text.contains("make_matrix_documented"), "documented fn was flagged:\n{text}");
    assert!(!text.contains("forward_metered"), "metered GEMM was flagged:\n{text}");
    assert!(!text.contains("save_snapshot_durable"), "atomic write path was flagged:\n{text}");
    assert!(!text.contains("durable.rs"), "the exempt atomic helper was flagged:\n{text}");
    assert!(!text.contains("centroid_mass_dense"), "dense reduction was flagged:\n{text}");
    assert!(!text.contains("converged_tolerant"), "tolerant compare was flagged:\n{text}");
    assert!(!text.contains("Opaque"), "grad-check-exempt impl was flagged:\n{text}");
}

#[test]
fn fixture_findings_are_precise() {
    let root = manifest_dir().join("fixtures/violations");
    let report = adr_check::run_checks(&root).expect("fixture root is a workspace");
    let mut names: Vec<(&str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.lint.name(), f.file.rsplit_once('/').map_or(f.file.as_str(), |(_, n)| n)))
        .collect();
    names.sort_unstable();
    // tensor: unwrap + missing # Shape; nn: unmetered matmul + unregistered
    // Layer impl + bare File::create; reuse: panic! + expect; clustering:
    // thread_rng + map iteration under float accumulation + exact float
    // compare.
    assert_eq!(
        names,
        vec![
            ("adr::determinism", "lib.rs"),
            ("adr::determinism", "lib.rs"),
            ("adr::durable_io", "lib.rs"),
            ("adr::float_eq", "lib.rs"),
            ("adr::flop_coverage", "lib.rs"),
            ("adr::grad_coverage", "unregistered.rs"),
            ("adr::no_panic", "lib.rs"),
            ("adr::no_panic", "lib.rs"),
            ("adr::no_panic", "lib.rs"),
            ("adr::shape_docs", "lib.rs"),
        ],
        "unexpected finding set: {:#?}",
        report.findings
    );
}

#[test]
fn shipped_workspace_is_clean() {
    let root = manifest_dir().join("../..");
    let (code, text) = run_on(&root);
    assert_eq!(code, 0, "the shipped workspace must pass adr-check; output:\n{text}");
}

fn run_shapes(extra: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_adr-check"))
        .arg("shapes")
        .args(extra)
        .output()
        .expect("adr-check binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().expect("adr-check exits normally"), text)
}

#[test]
fn shapes_accepts_all_builtin_specs() {
    let (code, text) = run_shapes(&[]);
    assert_eq!(code, 0, "built-in specs must verify; output:\n{text}");
    for net in ["cifarnet", "alexnet", "vgg19"] {
        assert!(text.contains(&format!("shape-check {net}")), "missing {net} trace:\n{text}");
    }
    assert!(text.contains("3 spec(s) verified"), "unexpected summary:\n{text}");
}

#[test]
fn shapes_rejects_broken_fixture_with_trace() {
    let spec = manifest_dir().join("fixtures/shapes/broken.spec");
    let (code, text) = run_shapes(&["--spec", &spec.to_string_lossy()]);
    assert_eq!(code, 1, "broken spec must fail; output:\n{text}");
    // The error names the offending layer and the trace shows the divergence.
    assert!(
        text.contains("error[adr::shape_graph]: broken-cifarnet/conv2"),
        "error must name conv2:\n{text}"
    );
    assert!(text.contains("disagrees with propagated"), "missing mismatch detail:\n{text}");
    // The propagated prefix is printed: pool1 produced the 15x15 activation
    // conv2 contradicts.
    assert!(text.contains("(N, 64, 15, 15)"), "missing propagated shape in trace:\n{text}");
}
