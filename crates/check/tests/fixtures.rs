//! Integration tests: the binary must fail on the seeded fixture workspace
//! and pass on the real workspace it ships in.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::path::Path;
use std::process::Command;

fn manifest_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn run_on(root: &Path) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_adr-check"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("adr-check binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().expect("adr-check exits normally"), text)
}

#[test]
fn fixture_violations_fail_the_check() {
    let root = manifest_dir().join("fixtures/violations");
    let (code, text) = run_on(&root);
    assert_eq!(code, 1, "seeded violations must exit 1; output:\n{text}");
    // Every lint fires at least once on the fixture workspace.
    assert!(text.contains("adr::no_panic"), "missing no_panic finding:\n{text}");
    assert!(text.contains("adr::flop_coverage"), "missing flop_coverage finding:\n{text}");
    assert!(text.contains("adr::shape_docs"), "missing shape_docs finding:\n{text}");
    assert!(text.contains("adr::determinism"), "missing determinism finding:\n{text}");
    assert!(text.contains("adr::float_eq"), "missing float_eq finding:\n{text}");
    assert!(text.contains("adr::grad_coverage"), "missing grad_coverage finding:\n{text}");
    assert!(text.contains("adr::durable_io"), "missing durable_io finding:\n{text}");
    assert!(text.contains("adr::unsafe_contract"), "missing unsafe_contract finding:\n{text}");
    assert!(text.contains("adr::atomic_ordering"), "missing atomic_ordering finding:\n{text}");
    assert!(text.contains("adr::lock_order"), "missing lock_order finding:\n{text}");
    assert!(text.contains("adr::scoped_capture"), "missing scoped_capture finding:\n{text}");
    assert!(text.contains("adr::par_reduction"), "missing par_reduction finding:\n{text}");
    // The audited/compliant halves of the fixtures stay quiet.
    assert!(!text.contains("make_matrix_documented"), "documented fn was flagged:\n{text}");
    assert!(!text.contains("forward_metered"), "metered GEMM was flagged:\n{text}");
    assert!(!text.contains("save_snapshot_durable"), "atomic write path was flagged:\n{text}");
    assert!(!text.contains("durable.rs"), "the exempt atomic helper was flagged:\n{text}");
    assert!(!text.contains("centroid_mass_dense"), "dense reduction was flagged:\n{text}");
    assert!(!text.contains("converged_tolerant"), "tolerant compare was flagged:\n{text}");
    assert!(!text.contains("Opaque"), "grad-check-exempt impl was flagged:\n{text}");
    assert!(!text.contains("scatter_disjoint"), "disjoint split was flagged:\n{text}");
    assert!(!text.contains("par_total_fixed_order"), "fixed-order fold was flagged:\n{text}");
    // (`simd.rs` appears in confinement *messages* as the approved-module
    // list; only a finding *located* there would be a bug.)
    assert!(
        !text.contains("--> crates/tensor/src/simd.rs"),
        "the approved kernel module was flagged:\n{text}"
    );
}

#[test]
fn fixture_lock_cycle_carries_the_full_trace() {
    let root = manifest_dir().join("fixtures/violations");
    let report = adr_check::run_checks(&root).expect("fixture root is a workspace");
    let cycle = report
        .findings
        .iter()
        .find(|f| f.lint.name() == "adr::lock_order")
        .expect("seeded two-lock cycle is found");
    assert!(cycle.message.contains("acquisition trace"), "{}", cycle.message);
    assert!(cycle.message.contains("fn `publish`"), "{}", cycle.message);
    assert!(cycle.message.contains("fn `rollback`"), "{}", cycle.message);
    assert!(cycle.message.contains("calls `flush_journal()`"), "{}", cycle.message);
    // The inter-procedural edge list is exposed for `adr-check conc`.
    assert!(
        report.lock_graph.iter().any(|e| e.starts_with("table -> journal")),
        "{:#?}",
        report.lock_graph
    );
    assert!(
        report.lock_graph.iter().any(|e| e.starts_with("journal -> table")),
        "{:#?}",
        report.lock_graph
    );
}

#[test]
fn fixture_findings_are_precise() {
    let root = manifest_dir().join("fixtures/violations");
    let report = adr_check::run_checks(&root).expect("fixture root is a workspace");
    let mut names: Vec<(&str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.lint.name(), f.file.rsplit_once('/').map_or(f.file.as_str(), |(_, n)| n)))
        .collect();
    names.sort_unstable();
    // tensor: unwrap + missing # Shape; nn: unmetered matmul + unregistered
    // Layer impl + bare File::create; reuse: panic! + expect; clustering:
    // thread_rng + map iteration under float accumulation + exact float
    // compare; core: the five seeded concurrency violations (unsafe block
    // without SAFETY, raw access outside the kernel modules, Relaxed read
    // near float accumulation, two-lock cycle, non-disjoint capture,
    // lock-guarded parallel float accumulation).
    assert_eq!(
        names,
        vec![
            ("adr::atomic_ordering", "lib.rs"),
            ("adr::determinism", "lib.rs"),
            ("adr::determinism", "lib.rs"),
            ("adr::durable_io", "lib.rs"),
            ("adr::float_eq", "lib.rs"),
            ("adr::flop_coverage", "lib.rs"),
            ("adr::grad_coverage", "unregistered.rs"),
            ("adr::lock_order", "lib.rs"),
            ("adr::no_panic", "lib.rs"),
            ("adr::no_panic", "lib.rs"),
            ("adr::no_panic", "lib.rs"),
            ("adr::par_reduction", "lib.rs"),
            ("adr::scoped_capture", "lib.rs"),
            ("adr::shape_docs", "lib.rs"),
            ("adr::unsafe_contract", "lib.rs"),
            ("adr::unsafe_contract", "lib.rs"),
        ],
        "unexpected finding set: {:#?}",
        report.findings
    );
}

#[test]
fn shipped_workspace_is_clean() {
    let root = manifest_dir().join("../..");
    let (code, text) = run_on(&root);
    assert_eq!(code, 0, "the shipped workspace must pass adr-check; output:\n{text}");
}

#[test]
fn stale_and_uncategorized_allow_entries_fail_the_check() {
    let root = manifest_dir().join("fixtures/stale_allow");
    let (code, text) = run_on(&root);
    assert_eq!(code, 1, "stale allowlist must exit 1; output:\n{text}");
    // The live entry suppressed the only real finding...
    assert!(!text.contains("adr::no_panic"), "audited unwrap leaked through:\n{text}");
    // ...the dead entry is reported as stale with its allowlist line...
    assert!(
        text.contains("adr::stale_allow") && text.contains("gone_function("),
        "missing stale-entry diagnostic:\n{text}"
    );
    // ...and the unknown category is its own hard failure.
    assert!(
        text.contains("adr::allow_category") && text.contains("made-up-category"),
        "missing category diagnostic:\n{text}"
    );
}

fn run_with_args(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_adr-check"))
        .args(args)
        .output()
        .expect("adr-check binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().expect("adr-check exits normally"), text)
}

#[test]
fn sarif_output_is_valid_and_carries_the_findings() {
    let root = manifest_dir().join("fixtures/violations");
    let (code, text) = run_with_args(&["--root", &root.to_string_lossy(), "--format", "sarif"]);
    assert_eq!(code, 1, "violations still exit 1 in sarif mode; output:\n{text}");
    let doc = adr_obs::Json::parse(&text).expect("sarif output parses as JSON");
    adr_check::sarif::validate_sarif(&doc).expect("sarif output validates");
    let results =
        doc.get("runs").unwrap().as_arr().unwrap()[0].get("results").unwrap().as_arr().unwrap();
    let rule_ids: Vec<&str> =
        results.iter().filter_map(|r| r.get("ruleId").and_then(adr_obs::Json::as_str)).collect();
    for rule in ["adr::no_panic", "adr::unsafe_contract", "adr::lock_order", "adr::par_reduction"] {
        assert!(rule_ids.contains(&rule), "missing {rule} in SARIF results: {rule_ids:?}");
    }
}

#[test]
fn sarif_mode_on_clean_workspace_emits_empty_results() {
    let root = manifest_dir().join("../..");
    let (code, text) = run_with_args(&["--root", &root.to_string_lossy(), "--format", "sarif"]);
    assert_eq!(code, 0, "clean workspace exits 0 in sarif mode; output:\n{text}");
    let doc = adr_obs::Json::parse(&text).expect("sarif output parses as JSON");
    adr_check::sarif::validate_sarif(&doc).expect("sarif output validates");
    let results =
        doc.get("runs").unwrap().as_arr().unwrap()[0].get("results").unwrap().as_arr().unwrap();
    assert!(results.is_empty(), "clean run must carry no results");
}

#[test]
fn conc_subcommand_reports_only_concurrency_findings() {
    let root = manifest_dir().join("fixtures/violations");
    let (code, text) = run_with_args(&["conc", "--root", &root.to_string_lossy()]);
    assert_eq!(code, 1, "seeded conc violations must exit 1; output:\n{text}");
    assert!(text.contains("lock-order graph"), "missing graph dump:\n{text}");
    assert!(text.contains("table -> journal"), "missing graph edge:\n{text}");
    for lint in [
        "adr::unsafe_contract",
        "adr::atomic_ordering",
        "adr::lock_order",
        "adr::scoped_capture",
        "adr::par_reduction",
    ] {
        assert!(text.contains(lint), "missing {lint} in conc output:\n{text}");
    }
    // Sequential lints and allowlist staleness are out of scope here.
    assert!(!text.contains("adr::no_panic"), "sequential lint leaked into conc run:\n{text}");
    assert!(!text.contains("adr::stale_allow"), "staleness reported by conc run:\n{text}");
}

#[test]
fn hotpath_subcommand_flags_seeded_violations() {
    let root = manifest_dir().join("fixtures/hotpath");
    let (code, text) = run_with_args(&["hotpath", "--root", &root.to_string_lossy()]);
    assert_eq!(code, 1, "seeded hot-path violations must exit 1; output:\n{text}");
    for lint in ["adr::hot_alloc", "adr::hot_panic", "adr::hot_lock"] {
        assert!(text.contains(lint), "missing {lint} in hotpath output:\n{text}");
    }
    // The reachable-set dump is printed before the findings.
    assert!(text.contains("reachable fn(s) from root"), "missing dump:\n{text}");
    assert!(text.contains("phase `im2col`"), "missing im2col phase in dump:\n{text}");
    // The cross-file edge attributes hashpack's indexing sites to the
    // `reuse_forward` phase as well as to `hash`.
    assert!(
        text.contains("(phase `reuse_forward`)") && text.contains("fn `hash_all`"),
        "missing cross-file attribution:\n{text}"
    );
    // The compliant twins allocate/panic/print identically but are not
    // reachable from any root, so none of them may be named.
    for twin in ["patch_scratch_cold", "decode_cold", "dump_stats", "load_checkpoint_cold"] {
        assert!(!text.contains(twin), "compliant twin `{twin}` was flagged:\n{text}");
    }
    // Sequential lints are out of scope for the hotpath subcommand.
    assert!(!text.contains("adr::no_panic"), "sequential lint leaked into hotpath run:\n{text}");
}

#[test]
fn hotpath_budget_drift_fails_with_the_pinned_count() {
    let root = manifest_dir().join("fixtures/hotpath_drift");
    let (code, text) = run_with_args(&["hotpath", "--root", &root.to_string_lossy()]);
    assert_eq!(code, 1, "budget drift must exit 1; output:\n{text}");
    assert!(
        text.contains("adr-check.budget pins 0") && text.contains("re-pin `im2col.alloc`"),
        "missing drift diagnostic:\n{text}"
    );
    // Roots declared in the analyzer but absent from the tree are findings
    // when a budget is committed.
    assert!(
        text.contains("hot root") && text.contains("`poll`"),
        "missing absent-root diagnostic:\n{text}"
    );
}

#[test]
fn hotpath_subcommand_is_clean_on_the_shipped_workspace() {
    let root = manifest_dir().join("../..");
    let (code, text) = run_with_args(&["hotpath", "--root", &root.to_string_lossy()]);
    assert_eq!(code, 0, "shipped workspace must pass adr-check hotpath; output:\n{text}");
    // The committed budget was loaded and every phase is accounted for.
    for phase in ["im2col", "hash", "gemm", "reuse_forward", "serve"] {
        assert!(text.contains(&format!("phase `{phase}`")), "missing {phase} in dump:\n{text}");
    }
}

fn run_shapes(extra: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_adr-check"))
        .arg("shapes")
        .args(extra)
        .output()
        .expect("adr-check binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().expect("adr-check exits normally"), text)
}

#[test]
fn shapes_accepts_all_builtin_specs() {
    let (code, text) = run_shapes(&[]);
    assert_eq!(code, 0, "built-in specs must verify; output:\n{text}");
    for net in ["cifarnet", "alexnet", "vgg19"] {
        assert!(text.contains(&format!("shape-check {net}")), "missing {net} trace:\n{text}");
    }
    assert!(text.contains("3 spec(s) verified"), "unexpected summary:\n{text}");
}

#[test]
fn shapes_rejects_broken_fixture_with_trace() {
    let spec = manifest_dir().join("fixtures/shapes/broken.spec");
    let (code, text) = run_shapes(&["--spec", &spec.to_string_lossy()]);
    assert_eq!(code, 1, "broken spec must fail; output:\n{text}");
    // The error names the offending layer and the trace shows the divergence.
    assert!(
        text.contains("error[adr::shape_graph]: broken-cifarnet/conv2"),
        "error must name conv2:\n{text}"
    );
    assert!(text.contains("disagrees with propagated"), "missing mismatch detail:\n{text}");
    // The propagated prefix is printed: pool1 produced the 15x15 activation
    // conv2 contradicts.
    assert!(text.contains("(N, 64, 15, 15)"), "missing propagated shape in trace:\n{text}");
}
