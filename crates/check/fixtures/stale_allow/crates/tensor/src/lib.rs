//! Minimal crate for allowlist-staleness tests: one audited unwrap that a
//! well-formed entry suppresses.

pub fn pick(risky: Option<u32>) -> u32 {
    risky.unwrap()
}
