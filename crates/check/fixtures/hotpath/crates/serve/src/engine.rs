//! Seeded `adr::hot_lock` violation for the serving loop: the `poll`
//! hot root reads files per batch; its compliant twin does the same
//! I/O but only at startup, unreachable from `poll`.

/// Hot root: drains the manifest list once per batch.
pub fn poll(paths: &[String]) -> usize {
    let mut total = 0;
    for p in paths {
        total += read_manifest(p);
    }
    total
}

/// File I/O on the batch loop — `adr::hot_lock` must flag the
/// `fs::read` site.
fn read_manifest(path: &str) -> usize {
    std::fs::read(path).map(|b| b.len()).unwrap_or(0)
}

/// Compliant twin: identical I/O, but startup-only — nothing on the
/// hot path calls it, so it must stay quiet.
pub fn load_checkpoint_cold(path: &str) -> usize {
    std::fs::read(path).map(|b| b.len()).unwrap_or(0)
}
