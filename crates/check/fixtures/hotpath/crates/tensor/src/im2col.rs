//! Seeded `adr::hot_alloc` violation: the `im2col` hot root reaches an
//! allocating helper with no audit entry, while its compliant twin
//! allocates the same way but only off the hot path.

/// Hot root: unfolds `x` into patch rows.
pub fn im2col(x: &[f32], out: &mut [f32]) {
    let scratch = patch_scratch(x.len());
    for (dst, s) in out.iter_mut().zip(&scratch) {
        *dst = *s;
    }
}

/// Allocates a scratch buffer on every call — reachable from `im2col`,
/// so `adr::hot_alloc` must flag the `vec!` site.
fn patch_scratch(n: usize) -> Vec<f32> {
    vec![0.0; n]
}

/// Compliant twin: the identical allocation, but nothing on the hot
/// path calls it, so it must stay quiet.
pub fn patch_scratch_cold(n: usize) -> Vec<f32> {
    vec![0.0; n]
}
