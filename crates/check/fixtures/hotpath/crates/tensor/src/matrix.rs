//! Seeded `adr::hot_lock` violation: the `matmul` hot root reaches a
//! `println!` through a helper; the compliant twin prints the same way
//! but is only called off the hot path.

/// Hot root: accumulates dot products into `out`.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32]) {
    log_progress(out.len());
    for v in out.iter_mut() {
        *v = dot(a, b);
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Console output on the hot path — `adr::hot_lock` must flag the
/// `println!` site.
fn log_progress(n: usize) {
    println!("tile {n}");
}

/// Compliant twin: printing is fine where no hot root reaches it.
pub fn dump_stats(n: usize) {
    println!("stats {n}");
}
