//! Seeded violations for the `reuse_forward` hot root: a `Mutex`
//! acquisition (`adr::hot_lock`) plus an `unwrap` (`adr::hot_panic`),
//! and a cross-file edge into hashpack.rs whose indexing sites must be
//! attributed to this phase too.

use std::sync::Mutex;

/// Reuse-hit counter guarded by a lock — acquiring it per forward call
/// is exactly what `adr::hot_lock` exists to catch.
pub static STATS: Mutex<u64> = Mutex::new(0);

/// Hot root: hashes the batch, then bumps the shared counter.
pub fn reuse_forward(rows: &[u64], out: &mut [u64]) {
    hash_all(rows, out);
    record_hit();
}

fn record_hit() {
    let mut guard = STATS.lock().unwrap();
    *guard += 1;
}
