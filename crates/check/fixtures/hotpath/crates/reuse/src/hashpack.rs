//! Seeded `adr::hot_panic` violations: the `hash_all` hot root indexes
//! its slices bare, and `reuse_forward` (in forward.rs) reaches these
//! same sites through a cross-file call edge.

/// Hot root: hashes every row.
pub fn hash_all(rows: &[u64], out: &mut [u64]) {
    for i in 0..out.len() {
        out[i] = mix(rows[i]);
    }
}

fn mix(x: u64) -> u64 {
    x.rotate_left(7) ^ 0x9e37_79b9
}

/// Compliant twin: panics too (`unwrap`), but is never called from a
/// hot root, so it must stay quiet.
pub fn decode_cold(v: Option<u64>) -> u64 {
    v.unwrap()
}
