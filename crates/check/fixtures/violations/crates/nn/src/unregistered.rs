//! Fixture: seeded `adr::grad_coverage` violation.
//! Not compiled — scanned by the adr-check integration test.

/// A layer missing from the gradient-check registry.
pub struct Unchecked;

impl Layer for Unchecked {
    fn forward(&mut self, x: Matrix) -> Matrix {
        x
    }
}

/// Exempted: carries an audited opt-out comment.
pub struct Opaque;

// grad-check: exempt — identity layer, nothing to differentiate
impl Layer for Opaque {
    fn forward(&mut self, x: Matrix) -> Matrix {
        x
    }
}
