//! Fixture: the atomic-write helper itself — the one file where the raw
//! write syscalls are sanctioned (`adr::durable_io` exempts `durable.rs`).
//! Not compiled — scanned by the adr-check integration test.

/// Temp + rename stand-in for the real helper; its bare `fs::write` and
/// the rename must stay quiet under `adr::durable_io`.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}
