//! Fixture: seeded `adr::flop_coverage` and `adr::durable_io` violations.
//! Not compiled — scanned by the adr-check integration test.

pub struct Layer {
    pub weights: Matrix,
}

pub struct Matrix;

impl Matrix {
    pub fn matmul(&self, _other: &Matrix) -> Matrix {
        Matrix
    }
}

impl Layer {
    /// GEMM with no FLOP-meter update in the same function: a violation.
    pub fn forward_unmetered(&self, input: &Matrix) -> Matrix {
        input.matmul(&self.weights)
    }

    /// GEMM paired with a meter update: fine.
    pub fn forward_metered(&self, input: &Matrix, gemm_flops: &mut u64) -> Matrix {
        let y = input.matmul(&self.weights);
        *gemm_flops += 1; // stands in for meter.add_forward(actual, baseline)
        y
    }
}

/// Bare write with no temp + fsync + rename protocol: a violation — a
/// crash mid-write leaves a torn checkpoint at `path`.
pub fn save_snapshot_torn(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    std::io::Write::write_all(&mut file, bytes)
}

/// Routed through the atomic helper: fine.
pub fn save_snapshot_durable(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    crate::durable::write_atomic(path, bytes)
}
