//! Fixture: seeded `adr::determinism` and `adr::float_eq` violations.
//! Not compiled — scanned by the adr-check integration test.

use std::collections::HashMap;

/// OS-seeded entropy in library code: a violation.
pub fn random_projection_seed() -> u64 {
    let rng = thread_rng();
    rng.next_u64()
}

/// Sums centroid norms by iterating a `HashMap` inside float accumulation:
/// the reduction order is the hash order — a violation.
pub fn centroid_mass(centroids: &HashMap<u64, f32>) -> f32 {
    let mut total = 0.0;
    for (_, v) in centroids.iter() {
        total += v;
    }
    total
}

/// Deterministic reduction over a dense slice: fine.
pub fn centroid_mass_dense(norms: &[f32]) -> f32 {
    let mut total = 0.0;
    for v in norms {
        total += v;
    }
    total
}

/// Exact float equality as a convergence test: a violation.
pub fn converged(prev: f32, curr: f32) -> bool {
    prev == curr
}

/// Tolerance-based convergence test: fine.
pub fn converged_tolerant(prev: f32, curr: f32) -> bool {
    (prev - curr).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    /// Exact equality on freshly constructed values in tests is fine.
    #[test]
    fn exact_compare_in_tests_is_fine() {
        let x = 1.5f32;
        assert!(x == 1.5);
    }
}
