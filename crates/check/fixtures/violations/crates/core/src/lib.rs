//! Seeded concurrency violations: one per conc lint, next to compliant
//! twins that must stay quiet.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared trainer state guarded by two locks and an epoch counter.
pub struct Shared {
    pub table: Mutex<Vec<f32>>,
    pub journal: Mutex<Vec<u64>>,
    pub epoch: AtomicU64,
}

// --- adr::unsafe_contract: missing SAFETY comment ------------------------

pub fn first_element(v: &[f32]) -> f32 {
    unsafe { *v.as_ptr() }
}

// --- adr::unsafe_contract: raw access outside the kernel modules ---------

pub fn scale_unchecked(v: &[f32], n: usize) -> f32 {
    let mut total = 0.0;
    for i in 0..n {
        // SAFETY: the caller asserted n <= v.len().
        total += unsafe { *v.get_unchecked(i) };
    }
    total
}

// --- adr::atomic_ordering: Relaxed read near float accumulation ----------

pub fn staleness_weighted_sum(shared: &Shared, vs: &[f32]) -> f32 {
    let age = shared.epoch.load(Ordering::Relaxed) as f32;
    let mut total = 0.0;
    for v in vs {
        total += v * age;
    }
    total
}

// --- adr::lock_order: table -> journal (via call) vs journal -> table ----

pub fn publish(shared: &Shared, update: &[f32]) {
    if let Ok(mut table) = shared.table.lock() {
        table.extend_from_slice(update);
        flush_journal(shared, update.len() as u64);
    }
}

fn flush_journal(shared: &Shared, entries: u64) {
    if let Ok(mut journal) = shared.journal.lock() {
        journal.push(entries);
    }
}

pub fn rollback(shared: &Shared, entries: usize) {
    if let Ok(mut journal) = shared.journal.lock() {
        let dropped = journal.pop();
        if let Ok(mut table) = shared.table.lock() {
            let keep = table.len().saturating_sub(entries);
            table.truncate(keep);
        }
        let _ = dropped;
    }
}

// --- adr::scoped_capture: non-disjoint &mut across the spawn boundary ----

pub fn scatter_shared(deltas: &[f32], out: &mut [f32]) {
    let n = out.len();
    std::thread::scope(|scope| {
        for (i, d) in deltas.iter().enumerate() {
            scope.spawn(move || {
                out[i % n] = *d;
            });
        }
    });
}

// Compliant twin: provably disjoint halves may cross the boundary.
pub fn scatter_disjoint(deltas: &[f32], out: &mut [f32]) {
    let mid = out.len() / 2;
    let (lo, hi) = out.split_at_mut(mid);
    std::thread::scope(|scope| {
        scope.spawn(move || fill_half(lo, deltas));
        scope.spawn(move || fill_half(hi, deltas));
    });
}

fn fill_half(half: &mut [f32], deltas: &[f32]) {
    for (h, d) in half.iter_mut().zip(deltas) {
        *h = *d;
    }
}

// --- adr::par_reduction: lock-guarded float accumulation in a spawn ------

pub fn par_total(chunks: &[Vec<f32>], total: &Mutex<f32>) {
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                let partial: f32 = chunk.iter().sum();
                if let Ok(mut t) = total.lock() {
                    *t += partial;
                }
            });
        }
    });
}

// Compliant twin: per-thread partials in disjoint slots, sequential fold.
pub fn par_total_fixed_order(chunks: &[Vec<f32>], partials: &mut [f32]) -> f32 {
    std::thread::scope(|scope| {
        for (chunk, slot) in chunks.iter().zip(partials.chunks_mut(1)) {
            scope.spawn(move || {
                slot[0] = chunk.iter().sum();
            });
        }
    });
    let mut total = 0.0;
    for p in partials.iter() {
        total += p;
    }
    total
}
