//! Approved kernel module: raw-pointer and unchecked access is sanctioned
//! here (see `APPROVED_KERNEL_MODULES`), so this file must stay quiet.

/// Sums the first `n` elements without bounds checks.
pub fn kernel_sum(v: &[f32], n: usize) -> f32 {
    let mut total = 0.0;
    for i in 0..n {
        // SAFETY: the caller asserted n <= v.len().
        total += unsafe { *v.get_unchecked(i) };
    }
    total
}
