//! Fixture: seeded `adr::no_panic` and `adr::shape_docs` violations.
//! Not compiled — scanned by the adr-check integration test.

/// Builds a matrix. Deliberately missing its shape-contract doc section.
pub fn make_matrix(rows: usize, cols: usize) -> Vec<f32> {
    vec![0.0; rows.checked_mul(cols).unwrap()]
}

/// Fine: documented shape contract.
///
/// # Shape
/// Output has `rows × cols` entries.
pub fn make_matrix_documented(rows: usize, cols: usize) -> Vec<f32> {
    vec![0.0; rows * cols]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
