//! Fixture: seeded `adr::no_panic` macro violations.
//! Not compiled — scanned by the adr-check integration test.

/// Explicit panic in library code: a violation.
pub fn reconstruct(cluster: usize) -> usize {
    if cluster == usize::MAX {
        panic!("invalid cluster id");
    }
    cluster
}

/// `.expect()` in library code: a violation.
pub fn centroid(ids: &[usize]) -> usize {
    ids.first().copied().expect("at least one cluster")
}
