//! Budget-drift fixture: one audited allocation on the hot path, but
//! the committed adr-check.budget pins `im2col.alloc = 0`, so the count
//! check must fail (and the absent roots must each be reported).

/// Hot root.
pub fn im2col(x: &[f32], out: &mut [f32]) {
    let scratch = patch_scratch(x.len());
    for (dst, s) in out.iter_mut().zip(&scratch) {
        *dst = *s;
    }
}

fn patch_scratch(n: usize) -> Vec<f32> {
    vec![0.0; n]
}
