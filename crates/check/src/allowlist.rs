//! The audited-site allowlist (`adr-check.allow` at the workspace root).
//!
//! Each line has the form:
//!
//! ```text
//! crates/tensor/src/matrix.rs: from_vec(   # audited: error path returns Err
//! ```
//!
//! i.e. `<workspace-relative path>: <substring of the offending line>`,
//! optionally followed by a `#` comment. A finding is suppressed when an
//! entry's path matches the finding's file and its substring occurs in the
//! flagged source line. Matching on line *content* instead of line numbers
//! keeps entries stable across unrelated edits.

/// One allowlist entry.
#[derive(Debug)]
pub struct AllowEntry {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Substring that must occur in the flagged line.
    pub pattern: String,
    /// Source line in the allowlist file (for unused-entry reporting).
    pub line: usize,
}

/// Parsed allowlist with per-entry hit counts.
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    hits: Vec<std::cell::Cell<usize>>,
}

impl Allowlist {
    /// Parses allowlist text. Lines that are empty or start with `#` are
    /// ignored; malformed lines (no `:`) are reported as errors.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((path, pattern)) = line.split_once(':') else {
                return Err(format!(
                    "adr-check.allow:{}: expected `<path>: <line substring>`",
                    idx + 1
                ));
            };
            let pattern = pattern.trim();
            if pattern.is_empty() {
                return Err(format!("adr-check.allow:{}: empty pattern", idx + 1));
            }
            entries.push(AllowEntry {
                path: path.trim().to_string(),
                pattern: pattern.to_string(),
                line: idx + 1,
            });
        }
        let hits = entries.iter().map(|_| std::cell::Cell::new(0)).collect();
        Ok(Allowlist { entries, hits })
    }

    /// An empty allowlist.
    pub fn empty() -> Allowlist {
        Allowlist { entries: Vec::new(), hits: Vec::new() }
    }

    /// True when a finding in `file` whose source line is `line_text` is
    /// covered by an entry. Records the hit.
    pub fn allows(&self, file: &str, line_text: &str) -> bool {
        let mut allowed = false;
        for (entry, hit) in self.entries.iter().zip(&self.hits) {
            if entry.path == file && line_text.contains(&entry.pattern) {
                hit.set(hit.get() + 1);
                allowed = true;
            }
        }
        allowed
    }

    /// Entries that never matched a finding — stale audit records.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().zip(&self.hits).filter(|(_, h)| h.get() == 0).map(|(e, _)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let list = Allowlist::parse(
            "# comment\ncrates/a/src/x.rs: foo.unwrap()  # audited\n\ncrates/b/src/y.rs: bar(",
        )
        .expect("well-formed allowlist");
        assert!(list.allows("crates/a/src/x.rs", "    foo.unwrap();"));
        assert!(!list.allows("crates/a/src/x.rs", "    other.unwrap();"));
        assert!(!list.allows("crates/c/src/z.rs", "    foo.unwrap();"));
        assert_eq!(list.unused().len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("no separator here").is_err());
        assert!(Allowlist::parse("path.rs:   ").is_err());
    }
}
