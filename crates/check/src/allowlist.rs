//! The audited-site allowlist (`adr-check.allow` at the workspace root).
//!
//! Each line has the form:
//!
//! ```text
//! crates/tensor/src/matrix.rs: from_vec(   # internal-invariant: why it holds
//! ```
//!
//! i.e. `<workspace-relative path>: <substring of the offending line>`,
//! followed by a `#` comment whose first token is the audit **category**
//! (one of [`KNOWN_CATEGORIES`]). A finding is suppressed when an entry's
//! path matches the finding's file and its substring occurs in the flagged
//! source line. Matching on line *content* instead of line numbers keeps
//! entries stable across unrelated edits.
//!
//! Two staleness rules keep the file from rotting:
//! * an entry that matches no finding is a hard failure (stale audit);
//! * an entry with a missing or unknown category is a hard failure, so
//!   every suppression names the *kind* of argument that justifies it.
//!
//! Category-gated lints (`adr::atomic_ordering`) go further: the entry's
//! category must come from the lint's own accepted set
//! ([`Allowlist::allows_categorized`]), so a generic audit comment cannot
//! wave through an ordering choice.

/// The audit categories an allowlist comment may open with. Adding a new
/// category is a reviewed change to this list plus DESIGN.md.
pub const KNOWN_CATEGORIES: &[&str] = &[
    // Sequential-lint audits (PR 2).
    "layer-protocol",
    "internal-invariant",
    "caller-shape",
    "exact-zero-guard",
    "checked-feature",
    // Concurrency audits (PR 6). The `ordering-*` pair gates
    // `adr::atomic_ordering`; the rest gate their same-named lints.
    "ordering-counter",
    "ordering-handoff",
    "lock-order-audited",
    "capture-disjoint",
    "reduction-fixed-order",
    "kernel-unsafe",
    // Hot-path resource audits (PR 7). The `alloc-*` pair gates
    // `adr::hot_alloc`: `alloc-init` for one-time/setup allocations,
    // `alloc-amortized` for amortized or conditional ones.
    "alloc-init",
    "alloc-amortized",
];

/// One allowlist entry.
#[derive(Debug)]
pub struct AllowEntry {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Substring that must occur in the flagged line.
    pub pattern: String,
    /// Audit category: first token of the comment, if any.
    pub category: Option<String>,
    /// Source line in the allowlist file (for unused-entry reporting).
    pub line: usize,
}

/// Parsed allowlist with per-entry hit counts.
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    hits: Vec<std::cell::Cell<usize>>,
}

impl Allowlist {
    /// Parses allowlist text. Lines that are empty or start with `#` are
    /// ignored; malformed lines (no `:`) are reported as errors.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let (line, comment) = match raw_line.split_once('#') {
                Some((code, comment)) => (code.trim(), Some(comment.trim())),
                None => (raw_line.trim(), None),
            };
            if line.is_empty() {
                continue;
            }
            let Some((path, pattern)) = line.split_once(':') else {
                return Err(format!(
                    "adr-check.allow:{}: expected `<path>: <line substring>`",
                    idx + 1
                ));
            };
            let pattern = pattern.trim();
            if pattern.is_empty() {
                return Err(format!("adr-check.allow:{}: empty pattern", idx + 1));
            }
            let category = comment
                .and_then(|c| c.split_whitespace().next())
                .map(|tok| tok.trim_end_matches(':').to_string());
            entries.push(AllowEntry {
                path: path.trim().to_string(),
                pattern: pattern.to_string(),
                category,
                line: idx + 1,
            });
        }
        let hits = entries.iter().map(|_| std::cell::Cell::new(0)).collect();
        Ok(Allowlist { entries, hits })
    }

    /// An empty allowlist.
    pub fn empty() -> Allowlist {
        Allowlist { entries: Vec::new(), hits: Vec::new() }
    }

    /// True when a finding in `file` whose source line is `line_text` is
    /// covered by an entry. Records the hit.
    pub fn allows(&self, file: &str, line_text: &str) -> bool {
        let mut allowed = false;
        for (entry, hit) in self.entries.iter().zip(&self.hits) {
            if entry.path == file && line_text.contains(&entry.pattern) {
                hit.set(hit.get() + 1);
                allowed = true;
            }
        }
        allowed
    }

    /// Like [`Allowlist::allows`], but the matching entry must carry a
    /// category from `accepted`. Used by lints whose suppressions demand a
    /// specific kind of audit (e.g. `adr::atomic_ordering` only accepts
    /// `ordering-*` categories).
    pub fn allows_categorized(&self, file: &str, line_text: &str, accepted: &[&str]) -> bool {
        let mut allowed = false;
        for (entry, hit) in self.entries.iter().zip(&self.hits) {
            if entry.path == file
                && line_text.contains(&entry.pattern)
                && entry.category.as_deref().is_some_and(|c| accepted.contains(&c))
            {
                hit.set(hit.get() + 1);
                allowed = true;
            }
        }
        allowed
    }

    /// Entries that never matched a finding — stale audit records.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().zip(&self.hits).filter(|(_, h)| h.get() == 0).map(|(e, _)| e).collect()
    }

    /// Entries whose audit category is missing or not in
    /// [`KNOWN_CATEGORIES`] — each is a hard failure, rendered like the
    /// stale-entry diagnostics.
    pub fn category_errors(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter_map(|e| match e.category.as_deref() {
                None => Some(format!(
                    "adr-check.allow:{}: `{}: {}` has no audit category \
                     (comment must open with one of: {})",
                    e.line,
                    e.path,
                    e.pattern,
                    KNOWN_CATEGORIES.join(", ")
                )),
                Some(cat) if !KNOWN_CATEGORIES.contains(&cat) => Some(format!(
                    "adr-check.allow:{}: unknown audit category `{}` \
                     (known: {})",
                    e.line,
                    cat,
                    KNOWN_CATEGORIES.join(", ")
                )),
                Some(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let list = Allowlist::parse(
            "# comment\ncrates/a/src/x.rs: foo.unwrap()  # internal-invariant: audited\n\n\
             crates/b/src/y.rs: bar(  # caller-shape",
        )
        .expect("well-formed allowlist");
        assert!(list.allows("crates/a/src/x.rs", "    foo.unwrap();"));
        assert!(!list.allows("crates/a/src/x.rs", "    other.unwrap();"));
        assert!(!list.allows("crates/c/src/z.rs", "    foo.unwrap();"));
        assert_eq!(list.unused().len(), 1);
        assert!(list.category_errors().is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("no separator here").is_err());
        assert!(Allowlist::parse("path.rs:   ").is_err());
    }

    #[test]
    fn categories_are_parsed_and_validated() {
        let list = Allowlist::parse(
            "crates/a/src/x.rs: load(Ordering::Acquire)  # ordering-handoff: pairs with Release\n\
             crates/a/src/x.rs: y.unwrap()  # bespoke-excuse: trust me\n\
             crates/a/src/x.rs: z.unwrap()",
        )
        .expect("parses");
        let errors = list.category_errors();
        assert_eq!(errors.len(), 2, "{errors:#?}");
        assert!(errors[0].contains("unknown audit category `bespoke-excuse`"));
        assert!(errors[1].contains("has no audit category"));
    }

    #[test]
    fn categorized_matching_demands_the_right_kind() {
        let list = Allowlist::parse(
            "crates/a/src/x.rs: fetch_add(1, Ordering::SeqCst)  # internal-invariant: wrong kind\n\
             crates/a/src/y.rs: load(Ordering::Acquire)  # ordering-handoff: pairs with Release",
        )
        .expect("parses");
        let accepted = ["ordering-counter", "ordering-handoff"];
        assert!(!list.allows_categorized(
            "crates/a/src/x.rs",
            "c.fetch_add(1, Ordering::SeqCst);",
            &accepted
        ));
        assert!(list.allows_categorized(
            "crates/a/src/y.rs",
            "let e = epoch.load(Ordering::Acquire);",
            &accepted
        ));
        // The mismatched entry did not record a hit, so it reads as stale.
        assert_eq!(list.unused().len(), 1);
    }

    #[test]
    fn checked_feature_comment_style_parses() {
        // `# checked-feature diagnostic: ...` — category is the first
        // token, the rest is prose.
        let list =
            Allowlist::parse("crates/t/src/s.rs: panic!(    # checked-feature diagnostic: loud")
                .expect("parses");
        assert!(list.category_errors().is_empty());
    }
}
