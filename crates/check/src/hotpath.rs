//! The hot-path resource analyzer (`adr-check hotpath`).
//!
//! ROADMAP item 1 replaces the reuse hot path's inner loops with SIMD
//! kernels over arena-backed buffers. Before those kernels land, the
//! per-step resource behavior of the hot path must be a *contract*, not
//! folklore: what it allocates, where it can panic, and that it never
//! touches a lock or the filesystem mid-step. This module pins that
//! contract statically:
//!
//! 1. A call graph is built over every scanned function (the shared
//!    [`crate::callgraph`] machinery), with impl-owner tracking so
//!    `Matrix::zeros(` resolves to the `Matrix` impl rather than every
//!    `zeros` in the workspace.
//! 2. The reachable set is marked from the declared [`HOT_ROOTS`] — the
//!    five reuse phases (im2col, hash, cluster, centroid-GEMM, scatter,
//!    covered by `im2col`, `hash_all`, `matmul`, and `reuse_forward`), the
//!    persistent worker pool's dispatch loop (`scope_run`, which every
//!    fan-out funnels through), and the serving batch loops
//!    (`Engine::poll`, `Gateway::poll`).
//! 3. Three lints run over that set:
//!    * `adr::hot_alloc` — heap-allocation sites (`Vec::with_capacity`,
//!      `push`, `collect`, `to_vec`, `clone`, `vec!`, `format!`, ...) are
//!      denied unless audited with an `alloc-init` / `alloc-amortized`
//!      allowlist entry, and the per-phase site count must match the
//!      committed `adr-check.budget` manifest exactly.
//!    * `adr::hot_panic` — implicit panic sites (bare slice indexing,
//!      `unwrap`/`expect`, non-constant `/` and `%`, release-mode
//!      `assert!`) are counted per phase against the same manifest.
//!    * `adr::hot_lock` — `Mutex`/`RwLock` acquisition, `File`/`fs` I/O,
//!      and `print!`-family output reachable from a hot root are denied
//!      outright (allowlistable only with a categorized audit).
//!
//! The budget manifest keeps the lints honest in both directions: a new
//! allocation site fails the check even if someone also adds an allowlist
//! entry for it (the count drifts), and a *removed* site fails too, so
//! the arena work must lower the pinned numbers in the same PR that earns
//! them. A `[runtime]` section in the manifest pins the *dynamic*
//! allocator-hit counts per steady-state step; the counting-allocator
//! tests in `crates/reuse` and `crates/serve` assert those at run time,
//! so the static story is cross-checked by a real `#[global_allocator]`.
//!
//! Like every other pass in this crate, the analysis is a hand-rolled
//! lexical walk on the comment/literal-blanked text — no `syn`, fully
//! offline. Accepted imprecision (documented in DESIGN.md §13): call
//! resolution is by name with owner narrowing, so same-named methods on
//! different workspace types still merge; `.read(`/`.write(` are *not*
//! lock tokens (too many innocent uses); float `/` with a non-literal
//! divisor counts as a panic site even though only integer division
//! panics. All of it over-approximates, which can only grow the pinned
//! counts, never hide a site.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::allowlist::Allowlist;
use crate::callgraph::{self, is_ident_byte, CallSite};
use crate::lints::{Finding, Lint};
use crate::scan::{is_word_at, match_brace, FileModel};

/// Declared hot roots: `(workspace-relative file, fn name, phase key)`.
/// The phase key names the budget entries (`<phase>.alloc`, `<phase>.panic`
/// in `adr-check.budget`).
pub const HOT_ROOTS: &[(&str, &str, &str)] = &[
    ("crates/tensor/src/im2col.rs", "im2col", "im2col"),
    ("crates/reuse/src/hashpack.rs", "hash_all", "hash"),
    ("crates/tensor/src/matrix.rs", "matmul", "gemm"),
    ("crates/reuse/src/forward.rs", "reuse_forward", "reuse_forward"),
    // The persistent worker pool executes every fan-out's closures; its
    // dispatch loop is as hot as the kernels it runs.
    ("crates/tensor/src/kernels/pool.rs", "scope_run", "pool"),
    ("crates/serve/src/engine.rs", "poll", "serve"),
    ("crates/serve/src/gateway.rs", "poll", "gateway"),
];

/// Allowlist categories accepted by `adr::hot_alloc` suppressions:
/// `alloc-init` for one-time/setup allocations (hashplane tables, output
/// buffers sized once), `alloc-amortized` for allocations that are
/// amortized or conditional (cache misses, metrics-sink label vectors).
pub const ALLOC_CATEGORIES: &[&str] = &["alloc-init", "alloc-amortized"];

/// Call names never followed across the graph, even when they resolve to
/// a workspace function by name. These are ubiquitous std method names
/// whose workspace homonyms (e.g. `Json::get`) are never on the hot path;
/// following them would drag whole subsystems into every phase.
const HOT_CALL_SKIP: &[&str] = &[
    "get", "len", "is_empty", "contains", "min", "max", "clamp", "load", "store", "push", "fill",
    "sum", "take", "advance", "batch", "clear",
];

/// What kind of resource a site consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// Heap allocation (or allocation-capable constructor).
    Alloc,
    /// Implicit panic.
    Panic,
    /// Lock acquisition, file I/O, or console output.
    Lock,
}

/// One resource site inside a function body.
#[derive(Debug)]
pub struct ResourceSite {
    /// Which lint the site feeds.
    pub kind: SiteKind,
    /// The matched token, for messages (`vec!`, `.push(`, `Vec::new(`).
    pub token: String,
    /// 1-indexed line.
    pub line: usize,
    /// Raw text of the line (allowlist matching).
    pub line_text: String,
}

/// Hot-path facts for one function.
#[derive(Debug)]
pub struct HotFn {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type, when inside an impl block.
    pub owner: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Candidate call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Resource sites, in source order.
    pub sites: Vec<ResourceSite>,
}

/// Extracts hot-path facts for every non-test function in one file.
pub fn collect(file: &str, model: &FileModel) -> Vec<HotFn> {
    let owners = impl_owners(model);
    let mut out = Vec::new();
    for f in &model.fns {
        if model.in_test_code(f.start) || f.body.is_empty() {
            continue;
        }
        let body = &model.cleaned[f.body.clone()];
        let base = f.body.start;
        let owner = owners
            .iter()
            .filter(|(r, _)| r.contains(&f.start))
            .min_by_key(|(r, _)| r.len())
            .map(|(_, name)| name.clone());
        let mut sites = Vec::new();
        find_alloc_sites(model, base, body, &f.params, &mut sites);
        find_panic_sites(model, base, body, &mut sites);
        find_lock_sites(model, base, body, &mut sites);
        sites.sort_by_key(|s| (s.line, s.token.clone()));
        out.push(HotFn {
            name: f.name.clone(),
            owner,
            file: file.to_string(),
            line: f.line,
            calls: callgraph::find_call_sites(model, base, body),
            sites,
        });
    }
    out
}

/// `impl` block ranges with their target type name (`impl Matrix {`,
/// `impl Layer for Conv2d {` → `Conv2d`). Trait-for-type impls report the
/// implementing type; generics and paths are stripped to the last plain
/// segment.
fn impl_owners(model: &FileModel) -> Vec<(Range<usize>, String)> {
    let cleaned = &model.cleaned;
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = cleaned[i..].find("impl").map(|p| p + i) {
        i = pos + 4;
        if !is_word_at(cleaned, pos, "impl") {
            continue;
        }
        let Some(open_rel) = cleaned[pos..].find('{') else {
            continue;
        };
        let open = pos + open_rel;
        let header = &cleaned[pos + 4..open];
        // `impl<T> Trait for Type<T> where ...` → the implementing type.
        let header = header.split(" where ").next().unwrap_or(header).trim();
        let header = skip_generics(header);
        let target = match header.rfind(" for ") {
            Some(at) => &header[at + 5..],
            None => header,
        };
        let target = target.trim();
        let target = target.split('<').next().unwrap_or(target).trim();
        let target = target.rsplit("::").next().unwrap_or(target).trim();
        if target.is_empty() || !target.bytes().all(is_ident_byte) {
            continue;
        }
        let close = match_brace(cleaned, open);
        out.push((open..close, target.to_string()));
    }
    out
}

/// Drops a leading `<...>` generic-parameter list.
fn skip_generics(header: &str) -> &str {
    if !header.starts_with('<') {
        return header;
    }
    let bytes = header.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return header[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    header
}

// ---------------------------------------------------------------------------
// Site scanners
// ---------------------------------------------------------------------------

/// Std container/owner types whose associated constructors are
/// allocation-capable. `Vec::new()` does not allocate *yet*, but it mints
/// a growable buffer — counting the site keeps the budget an honest upper
/// bound on allocation capability.
const ALLOC_QUALIFIERS: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "Rc", "Arc", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Associated-fn names that mint or grow a heap buffer on the qualifiers
/// above.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter", "from_elem"];

/// Method names that allocate (or may reallocate) on their receiver.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "append",
    "insert",
    "reserve",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Primitive `Copy` types: a `.clone()` whose receiver is a local or
/// parameter annotated with one of these is a bitwise copy, not an
/// allocation.
const COPY_TYPES: &[&str] = &[
    "f32", "f64", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128",
    "usize", "bool", "char",
];

fn push_site(
    out: &mut Vec<ResourceSite>,
    model: &FileModel,
    kind: SiteKind,
    token: String,
    offset: usize,
) {
    let line = model.line_of(offset);
    out.push(ResourceSite { kind, token, line, line_text: model.line_text(line).to_string() });
}

/// Scans one body for heap-allocation sites.
fn find_alloc_sites(
    model: &FileModel,
    base: usize,
    body: &str,
    params: &str,
    out: &mut Vec<ResourceSite>,
) {
    let copy_names = copy_typed_names(params, body);
    let bytes = body.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let word = &body[start..i];
        if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        // Macros: `vec![...]` / `format!(...)`.
        if bytes.get(i) == Some(&b'!') && ALLOC_MACROS.contains(&word) {
            push_site(out, model, SiteKind::Alloc, format!("{word}!"), base + start);
            continue;
        }
        // The call-shaped forms all end in `(`, with an optional turbofish
        // (`collect::<Vec<_>>()`) between the name and the parenthesis.
        if skip_turbofish_to_paren(body, i).is_none() {
            continue;
        }
        // Associated constructors: `Vec::with_capacity(`, `Box::new(`, ...
        if let Some(q) = qualifier_of(body, start) {
            if ALLOC_QUALIFIERS.contains(&q.as_str()) && ALLOC_CTORS.contains(&word) {
                push_site(out, model, SiteKind::Alloc, format!("{q}::{word}("), base + start);
            }
            continue;
        }
        // Methods: `.push(`, `.collect::<Vec<_>>(`, chains across lines.
        if !preceded_by_dot(bytes, start) || !ALLOC_METHODS.contains(&word) {
            continue;
        }
        if word == "clone" && receiver_is_copy(body, start, &copy_names) {
            continue;
        }
        push_site(out, model, SiteKind::Alloc, format!(".{word}("), base + start);
    }
}

/// Scans one body for implicit panic sites.
fn find_panic_sites(model: &FileModel, base: usize, body: &str, out: &mut Vec<ResourceSite>) {
    let bytes = body.as_bytes();
    // Bare indexing and non-constant division/remainder: byte-level scan.
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            // `a[i]`, `a[..n]`, `f()[0]`, `a[0][1]` — but not `&[f32]`
            // types, attributes (`#[...]`), or `vec![...]`.
            b'[' if k > 0
                && (is_ident_byte(bytes[k - 1])
                    || bytes[k - 1] == b']'
                    || bytes[k - 1] == b')') =>
            {
                push_site(out, model, SiteKind::Panic, "[...]".to_string(), base + k);
            }
            b'/' | b'%' => {
                let prev = if k > 0 { bytes[k - 1] } else { b' ' };
                let next = bytes.get(k + 1).copied().unwrap_or(b' ');
                if prev == b'/' || next == b'/' || next == b'=' {
                    continue; // `//` (shouldn't survive the lexer) or `/=`
                }
                let mut j = k + 1;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                // A literal divisor cannot be zero at run time; anything
                // else (identifier, call, parenthesized expr) can.
                if j < bytes.len()
                    && !bytes[j].is_ascii_digit()
                    && (is_ident_byte(bytes[j]) || bytes[j] == b'(')
                {
                    let op = if b == b'/' { "/" } else { "%" };
                    push_site(out, model, SiteKind::Panic, format!("{op} non-const"), base + k);
                }
            }
            _ => {}
        }
    }
    // `.unwrap()` / `.expect(` and release-mode assert macros.
    for (token, is_method) in [
        ("unwrap", true),
        ("expect", true),
        ("assert", false),
        ("assert_eq", false),
        ("assert_ne", false),
    ] {
        let mut i = 0usize;
        while let Some(pos) = body[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            if !is_word_at(body, pos, token) {
                continue;
            }
            let rest = body[pos + token.len()..].trim_start();
            let hit = if is_method {
                rest.starts_with('(') && body[..pos].trim_end().ends_with('.')
            } else {
                body[pos + token.len()..].starts_with('!')
            };
            if hit {
                let rendered = if is_method { format!(".{token}(") } else { format!("{token}!") };
                push_site(out, model, SiteKind::Panic, rendered, base + pos);
            }
        }
    }
}

/// Lock-acquisition / file-I/O / console-output tokens denied on the hot
/// path. `.read(`/`.write(` are deliberately absent (accepted imprecision;
/// DESIGN.md §13) — `adr-check conc` owns lock-order discipline, this lint
/// only needs the unambiguous acquisition spelling.
fn find_lock_sites(model: &FileModel, base: usize, body: &str, out: &mut Vec<ResourceSite>) {
    let bytes = body.as_bytes();
    // `.lock(` method calls.
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("lock").map(|p| p + i) {
        i = pos + 4;
        if is_word_at(body, pos, "lock")
            && body[pos + 4..].trim_start().starts_with('(')
            && preceded_by_dot(bytes, pos)
        {
            push_site(out, model, SiteKind::Lock, ".lock(".to_string(), base + pos);
        }
    }
    // Qualified file I/O: `File::open(`, `fs::read(`, `OpenOptions::new(`.
    for q in ["File", "OpenOptions", "fs"] {
        let mut i = 0usize;
        while let Some(pos) = body[i..].find(q).map(|p| p + i) {
            i = pos + q.len();
            if is_word_at(body, pos, q) && body[pos + q.len()..].starts_with("::") {
                push_site(out, model, SiteKind::Lock, format!("{q}::"), base + pos);
            }
        }
    }
    // Console output macros.
    for m in ["print", "println", "eprint", "eprintln", "dbg"] {
        let mut i = 0usize;
        while let Some(pos) = body[i..].find(m).map(|p| p + i) {
            i = pos + m.len();
            if is_word_at(body, pos, m) && body[pos + m.len()..].starts_with('!') {
                push_site(out, model, SiteKind::Lock, format!("{m}!"), base + pos);
            }
        }
    }
}

/// After an identifier ending at `i`, skips an optional `::<...>`
/// turbofish and any whitespace; returns the offset just past `(` when
/// the next meaningful token is a call parenthesis.
fn skip_turbofish_to_paren(body: &str, i: usize) -> Option<usize> {
    let bytes = body.as_bytes();
    let mut j = i;
    if body[j..].starts_with("::<") {
        let mut depth = 0i32;
        let mut k = j + 2;
        while k < bytes.len() {
            match bytes[k] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= bytes.len() {
            return None;
        }
        j = k + 1;
    }
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    if bytes.get(j) == Some(&b'(') {
        Some(j + 1)
    } else {
        None
    }
}

/// The path segment before `::` preceding `start`, if any.
fn qualifier_of(body: &str, start: usize) -> Option<String> {
    let bytes = body.as_bytes();
    if start < 2 || bytes[start - 1] != b':' || bytes[start - 2] != b':' {
        return None;
    }
    let end = start - 2;
    let mut k = end;
    while k > 0 && is_ident_byte(bytes[k - 1]) {
        k -= 1;
    }
    if k == end {
        return None;
    }
    Some(body[k..end].to_string())
}

/// True when the previous non-whitespace byte before `start` is `.`.
fn preceded_by_dot(bytes: &[u8], start: usize) -> bool {
    let mut k = start;
    while k > 0 && (bytes[k - 1] as char).is_whitespace() {
        k -= 1;
    }
    k > 0 && bytes[k - 1] == b'.'
}

/// Names of parameters and locals annotated with a primitive `Copy` type.
fn copy_typed_names(params: &str, body: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut add = |piece: &str| {
        let Some((pat, ty)) = piece.split_once(':') else {
            return;
        };
        let name = pat.trim().trim_start_matches("mut ").trim();
        let ty = ty.trim().trim_start_matches('&').trim_start_matches("mut ").trim();
        let ty = ty.split(['=', ';']).next().unwrap_or(ty).trim();
        if !name.is_empty() && name.bytes().all(is_ident_byte) && COPY_TYPES.contains(&ty) {
            names.push(name.to_string());
        }
    };
    for piece in params.split(',') {
        add(piece);
    }
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("let ").map(|p| p + i) {
        i = pos + 4;
        if !is_word_at(body, pos, "let") {
            continue;
        }
        // Keep the annotation only: cut at `=`/`;`/end-of-line.
        let stmt = &body[pos + 4..];
        let cut = stmt.find(['=', ';', '\n']).unwrap_or(stmt.len());
        add(&stmt[..cut]);
    }
    names
}

/// True when the receiver of `.clone()` at `start` (the ident before the
/// dot) is a known primitive-`Copy` local.
fn receiver_is_copy(body: &str, start: usize, copy_names: &[String]) -> bool {
    let bytes = body.as_bytes();
    let mut k = start;
    while k > 0 && (bytes[k - 1] as char).is_whitespace() {
        k -= 1;
    }
    if k == 0 || bytes[k - 1] != b'.' {
        return false;
    }
    k -= 1;
    while k > 0 && (bytes[k - 1] as char).is_whitespace() {
        k -= 1;
    }
    let end = k;
    while k > 0 && is_ident_byte(bytes[k - 1]) {
        k -= 1;
    }
    if k == end {
        return false;
    }
    // `self.x.clone()` — the ident is a field, not a local; be
    // conservative and count it.
    if k >= 1 && bytes[k - 1] == b'.' {
        return false;
    }
    copy_names.iter().any(|n| n == &body[k..end])
}

// ---------------------------------------------------------------------------
// The budget manifest
// ---------------------------------------------------------------------------

/// Parsed `adr-check.budget`: pinned static site counts and runtime
/// allocator-hit counts.
pub struct Budget {
    /// `[static]` entries: `<phase>.alloc` / `<phase>.panic` → pinned count.
    pub static_counts: BTreeMap<String, u64>,
    /// `[runtime]` entries (asserted by the counting-allocator tests).
    pub runtime_counts: BTreeMap<String, u64>,
    /// Key → (1-indexed line, raw line text), for finding anchors.
    pub entry_lines: BTreeMap<String, (usize, String)>,
}

impl Budget {
    /// Parses the manifest text.
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Budget, String> {
        let mut static_counts = BTreeMap::new();
        let mut runtime_counts = BTreeMap::new();
        let mut entry_lines = BTreeMap::new();
        let mut section: Option<&str> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                match name {
                    "static" | "runtime" => {
                        section = Some(if name == "static" { "static" } else { "runtime" })
                    }
                    other => {
                        return Err(format!(
                            "adr-check.budget:{}: unknown section `[{other}]` (static|runtime)",
                            idx + 1
                        ))
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("adr-check.budget:{}: expected `<key> = <count>`", idx + 1));
            };
            let key = key.trim().to_string();
            let count: u64 = value.trim().parse().map_err(|_| {
                format!("adr-check.budget:{}: `{}` is not a count", idx + 1, value.trim())
            })?;
            let Some(section) = section else {
                return Err(format!(
                    "adr-check.budget:{}: entry before any `[static]`/`[runtime]` section",
                    idx + 1
                ));
            };
            if section == "static" {
                static_counts.insert(key.clone(), count);
            } else {
                runtime_counts.insert(key.clone(), count);
            }
            entry_lines.insert(key, (idx + 1, raw.to_string()));
        }
        Ok(Budget { static_counts, runtime_counts, entry_lines })
    }
}

// ---------------------------------------------------------------------------
// The analysis
// ---------------------------------------------------------------------------

/// Findings plus the reachable-set / site dump (`adr-check hotpath`).
pub struct HotReport {
    /// Violations that survived the allowlist.
    pub findings: Vec<Finding>,
    /// Per-phase reachable functions and resource sites, rendered.
    pub dump: Vec<String>,
}

/// Runs the three hot-path lints over `fns`.
///
/// `budget` is the parsed `adr-check.budget`, when the workspace ships
/// one. With a budget: per-phase alloc/panic site counts must match it
/// exactly, and a declared root that cannot be found is itself a finding
/// (the analyzer must not silently under-report). Without one (fixture
/// workspaces): every unaudited site is reported individually and missing
/// roots are skipped.
pub fn check(fns: &[HotFn], budget: Option<&Budget>, allow: &Allowlist) -> HotReport {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut findings = Vec::new();
    let mut dump = Vec::new();

    for &(root_file, root_fn, phase) in HOT_ROOTS {
        let roots: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == root_file && f.name == root_fn)
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            if let Some(budget) = budget {
                let (line, line_text) = anchor(budget, &format!("{phase}.alloc"));
                findings.push(Finding {
                    lint: Lint::HotAlloc,
                    file: "adr-check.budget".to_string(),
                    line,
                    message: format!(
                        "hot root `{root_fn}` not found in `{root_file}` — the `{phase}` phase \
                         is unanalyzed; fix the root declaration or the moved function"
                    ),
                    line_text,
                });
            }
            continue;
        }

        let visits = callgraph::reach(fns.len(), &roots, |idx| {
            let mut edges = Vec::new();
            for call in &fns[idx].calls {
                for callee in resolve(fns, &by_name, idx, call) {
                    edges.push((callee, call.line));
                }
            }
            edges
        });

        dump.push(format!(
            "phase `{phase}`: {} reachable fn(s) from root `{root_fn}`",
            visits.len()
        ));
        for &(idx, via) in &visits {
            let f = &fns[idx];
            let from = match via {
                None => String::new(),
                Some((caller, line)) => {
                    format!("  (via {}:{line})", fns[caller].file)
                }
            };
            dump.push(format!("  {}:{}: fn `{}`{from}", f.file, f.line, f.name));
        }

        let mut counts: BTreeMap<SiteKind, u64> = BTreeMap::new();
        for &(idx, _) in &visits {
            let f = &fns[idx];
            for site in &f.sites {
                *counts.entry(site.kind).or_default() += 1;
                let audited = match site.kind {
                    SiteKind::Alloc => {
                        allow.allows_categorized(&f.file, &site.line_text, ALLOC_CATEGORIES)
                    }
                    SiteKind::Lock => allow.allows(&f.file, &site.line_text),
                    SiteKind::Panic => false,
                };
                dump.push(format!(
                    "  {} {}:{}: `{}` in fn `{}`{}",
                    kind_word(site.kind),
                    f.file,
                    site.line,
                    site.token,
                    f.name,
                    if audited { "  [audited]" } else { "" }
                ));
                let report_site = match site.kind {
                    SiteKind::Alloc => !audited,
                    SiteKind::Lock => !audited,
                    // Panic sites are budget-counted, not audited per
                    // site; they surface individually only when no
                    // manifest pins the phase.
                    SiteKind::Panic => budget.is_none(),
                };
                if report_site {
                    findings.push(site_finding(f, site, root_fn, phase));
                }
            }
        }
        dump.push(format!(
            "phase `{phase}`: {} alloc / {} panic / {} lock site(s)",
            counts.get(&SiteKind::Alloc).copied().unwrap_or(0),
            counts.get(&SiteKind::Panic).copied().unwrap_or(0),
            counts.get(&SiteKind::Lock).copied().unwrap_or(0),
        ));

        if let Some(budget) = budget {
            for (kind, suffix) in [(SiteKind::Alloc, "alloc"), (SiteKind::Panic, "panic")] {
                let key = format!("{phase}.{suffix}");
                let found = counts.get(&kind).copied().unwrap_or(0);
                let (line, line_text) = anchor(budget, &key);
                match budget.static_counts.get(&key) {
                    None => findings.push(Finding {
                        lint: lint_for(kind),
                        file: "adr-check.budget".to_string(),
                        line,
                        message: format!(
                            "phase `{phase}` has no `{key}` entry in adr-check.budget \
                             ({found} site(s) reachable) — pin the count"
                        ),
                        line_text,
                    }),
                    Some(&pinned) if pinned != found => findings.push(Finding {
                        lint: lint_for(kind),
                        file: "adr-check.budget".to_string(),
                        line,
                        message: format!(
                            "phase `{phase}`: {found} reachable {suffix} site(s), \
                             adr-check.budget pins {pinned} — audit the change and re-pin \
                             `{key}` (run `adr-check hotpath` for the site dump)"
                        ),
                        line_text,
                    }),
                    Some(_) => {}
                }
            }
        }
    }

    HotReport { findings, dump }
}

fn kind_word(kind: SiteKind) -> &'static str {
    match kind {
        SiteKind::Alloc => "alloc",
        SiteKind::Panic => "panic",
        SiteKind::Lock => "lock",
    }
}

fn lint_for(kind: SiteKind) -> Lint {
    match kind {
        SiteKind::Alloc => Lint::HotAlloc,
        SiteKind::Panic => Lint::HotPanic,
        SiteKind::Lock => Lint::HotLock,
    }
}

fn site_finding(f: &HotFn, site: &ResourceSite, root_fn: &str, phase: &str) -> Finding {
    let message = match site.kind {
        SiteKind::Alloc => format!(
            "heap allocation `{}` in fn `{}` is reachable from hot root `{root_fn}` \
             (phase `{phase}`) — hoist it out of the hot path, or audit it with an \
             `alloc-init`/`alloc-amortized` allowlist entry and pin `{phase}.alloc` \
             in adr-check.budget",
            site.token, f.name
        ),
        SiteKind::Panic => format!(
            "implicit panic site `{}` in fn `{}` is reachable from hot root `{root_fn}` \
             (phase `{phase}`) — handle the failure or pin `{phase}.panic` in \
             adr-check.budget",
            site.token, f.name
        ),
        SiteKind::Lock => format!(
            "`{}` in fn `{}` is reachable from hot root `{root_fn}` (phase `{phase}`) — \
             locks, file I/O, and console output are denied on the hot path \
             (move it off-path or audit it with a categorized allowlist entry)",
            site.token, f.name
        ),
    };
    Finding {
        lint: lint_for(site.kind),
        file: f.file.clone(),
        line: site.line,
        message,
        line_text: site.line_text.clone(),
    }
}

/// Budget-anchored `(line, line_text)` for `key`, falling back to line 1.
fn anchor(budget: &Budget, key: &str) -> (usize, String) {
    budget
        .entry_lines
        .get(key)
        .map(|(l, t)| (*l, t.clone()))
        .unwrap_or((1, String::from("[static]")))
}

/// Owner-aware call resolution. By-name resolution alone would merge
/// every `new`/`insert` in the workspace into one node; the qualifier and
/// receiver facts narrow it:
///
/// * `Type::callee(` binds to functions in the `Type` impl; an
///   uppercase qualifier with no workspace impl is an external type
///   (`Vec::new`) and binds to nothing; a lowercase qualifier is a module
///   path and binds to free functions.
/// * `Self::callee(` binds within the caller's own impl.
/// * `.callee(` (method call) binds only to impl functions.
/// * bare `callee(` binds only to free functions.
fn resolve(
    fns: &[HotFn],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    call: &CallSite,
) -> Vec<usize> {
    if call.qualifier.is_none() && HOT_CALL_SKIP.contains(&call.callee.as_str()) {
        return Vec::new();
    }
    let Some(candidates) = by_name.get(call.callee.as_str()) else {
        return Vec::new();
    };
    if let Some(q) = &call.qualifier {
        let q: &str = if q == "Self" {
            match fns[caller].owner.as_deref() {
                Some(owner) => owner,
                None => return Vec::new(),
            }
        } else {
            q
        };
        let owned: Vec<usize> =
            candidates.iter().copied().filter(|&i| fns[i].owner.as_deref() == Some(q)).collect();
        if !owned.is_empty() {
            return owned;
        }
        if q.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Vec::new(); // external type (Vec::, String::, ...)
        }
        // Module-qualified free function (`par::matmul_par(`).
        return candidates.iter().copied().filter(|&i| fns[i].owner.is_none()).collect();
    }
    if call.is_method {
        candidates.iter().copied().filter(|&i| fns[i].owner.is_some()).collect()
    } else {
        candidates.iter().copied().filter(|&i| fns[i].owner.is_none()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_fns(src: &str) -> Vec<HotFn> {
        collect("crates/tensor/src/lib.rs", &FileModel::parse(src))
    }

    fn sites_of<'a>(fns: &'a [HotFn], name: &str) -> &'a [ResourceSite] {
        &fns.iter().find(|f| f.name == name).expect("fn collected").sites
    }

    fn alloc_tokens(sites: &[ResourceSite]) -> Vec<&str> {
        sites.iter().filter(|s| s.kind == SiteKind::Alloc).map(|s| s.token.as_str()).collect()
    }

    #[test]
    fn macro_allocations_are_found() {
        let fns = hot_fns(
            "fn f(n: usize) -> Vec<f32> {\n    let v = vec![0.0; n];\n    let s = format!(\"{}*{}\", n, format!(\"{n}\"));\n    v\n}\n",
        );
        let tokens = alloc_tokens(sites_of(&fns, "f"));
        assert_eq!(tokens, vec!["vec!", "format!", "format!"], "nested format! counts twice");
    }

    #[test]
    fn turbofish_collect_is_an_alloc_site() {
        let fns =
            hot_fns("fn f() -> Vec<u32> {\n    (0..4).map(|i| i + 1).collect::<Vec<u32>>()\n}\n");
        assert_eq!(alloc_tokens(sites_of(&fns, "f")), vec![".collect("]);
    }

    #[test]
    fn multiline_method_chains_are_found() {
        let fns = hot_fns(
            "fn f(xs: &[f32]) -> Vec<f32> {\n    xs.iter()\n        .map(|x| x * 2.0)\n        .collect()\n}\n",
        );
        assert_eq!(alloc_tokens(sites_of(&fns, "f")), vec![".collect("]);
    }

    #[test]
    fn clone_on_copy_locals_does_not_count() {
        let fns = hot_fns(
            "fn f(scale: f32, m: Matrix) -> (f32, Matrix) {\n    let idx: usize = 3;\n    let a = scale.clone();\n    let b = idx.clone();\n    let big = m.clone();\n    (a + b as f32, big)\n}\n",
        );
        let tokens = alloc_tokens(sites_of(&fns, "f"));
        assert_eq!(tokens, vec![".clone("], "only the non-Copy receiver counts: {tokens:?}");
    }

    #[test]
    fn constructors_and_growth_methods_are_found() {
        let fns = hot_fns(
            "fn f(n: usize) {\n    let mut v = Vec::with_capacity(n);\n    v.push(1.0f32);\n    let b = Box::new(v);\n    drop(b);\n}\n",
        );
        let tokens = alloc_tokens(sites_of(&fns, "f"));
        assert_eq!(tokens, vec!["Vec::with_capacity(", ".push(", "Box::new("]);
    }

    #[test]
    fn panic_sites_cover_indexing_division_and_asserts() {
        let fns = hot_fns(
            "fn f(xs: &[f32], i: usize, n: usize) -> f32 {\n    assert!(n > 0);\n    debug_assert!(i < n);\n    let per = xs.len() / n;\n    let x = xs[i];\n    let _half = per / 2;\n    x\n}\n",
        );
        let tokens: Vec<&str> = sites_of(&fns, "f")
            .iter()
            .filter(|s| s.kind == SiteKind::Panic)
            .map(|s| s.token.as_str())
            .collect();
        assert!(tokens.contains(&"assert!"), "{tokens:?}");
        assert!(tokens.contains(&"/ non-const"), "{tokens:?}");
        assert!(tokens.contains(&"[...]"), "{tokens:?}");
        // debug_assert! and the literal division are exempt.
        assert_eq!(tokens.iter().filter(|t| **t == "assert!").count(), 1, "{tokens:?}");
        assert_eq!(tokens.iter().filter(|t| **t == "/ non-const").count(), 1, "{tokens:?}");
    }

    #[test]
    fn lock_io_and_print_sites_are_found() {
        let fns = hot_fns(
            "fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock();\n    println!(\"{g:?}\");\n    let _ = fs::read(\"x\");\n}\n",
        );
        let tokens: Vec<&str> = sites_of(&fns, "f")
            .iter()
            .filter(|s| s.kind == SiteKind::Lock)
            .map(|s| s.token.as_str())
            .collect();
        assert_eq!(tokens, vec![".lock(", "println!", "fs::"], "source order (by line)");
    }

    #[test]
    fn impl_owner_is_tracked_through_trait_impls() {
        let fns = hot_fns(
            "struct Grid;\nimpl Grid {\n    fn cell(&self) -> usize { 0 }\n}\nimpl Clone for Grid {\n    fn clone(&self) -> Grid { Grid }\n}\nfn free() {}\n",
        );
        assert_eq!(
            fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect::<Vec<_>>(),
            vec![("cell", Some("Grid")), ("clone", Some("Grid")), ("free", None)],
        );
    }

    #[test]
    fn budget_parses_sections_and_rejects_garbage() {
        let b = Budget::parse(
            "# pinned counts\n[static]\nim2col.alloc = 2  # zeros + scope\nim2col.panic = 4\n[runtime]\nreuse_forward_step = 31\n",
        )
        .expect("well-formed budget");
        assert_eq!(b.static_counts.get("im2col.alloc"), Some(&2));
        assert_eq!(b.runtime_counts.get("reuse_forward_step"), Some(&31));
        assert_eq!(b.entry_lines.get("im2col.panic").map(|(l, _)| *l), Some(4));
        assert!(Budget::parse("im2col.alloc = 2\n").is_err(), "entry before section");
        assert!(Budget::parse("[bogus]\n").is_err(), "unknown section");
        assert!(Budget::parse("[static]\nim2col.alloc = lots\n").is_err(), "non-numeric count");
    }

    #[test]
    fn reachability_crosses_impls_and_counts_drift() {
        let src = "\
struct Matrix;
impl Matrix {
    fn matmul(&self) {
        let t = Matrix::zeros(2);
        t.fill_from(self);
    }
    fn zeros(n: usize) -> Matrix {
        let _v = vec![0.0; n];
        Matrix
    }
    fn fill_from(&self, _o: &Matrix) {}
}
fn cold() {
    let _ = vec![1];
}
";
        let fns = collect("crates/tensor/src/matrix.rs", &FileModel::parse(src));
        let allow = Allowlist::empty();
        // Without a budget: the vec! inside zeros (reachable from the
        // matmul root) fires; cold()'s vec! does not.
        let report = check(&fns, None, &allow);
        let alloc: Vec<&Finding> =
            report.findings.iter().filter(|f| f.lint == Lint::HotAlloc).collect();
        assert_eq!(alloc.len(), 1, "{:#?}", report.findings);
        assert!(alloc[0].message.contains("fn `zeros`"), "{}", alloc[0].message);
        assert!(
            report.dump.iter().any(|l| l.contains("fn `fill_from`")),
            "method call resolved into the impl: {:#?}",
            report.dump
        );
        // With a budget pinning the wrong count: drift is one finding
        // anchored at the manifest.
        let budget = Budget::parse("[static]\ngemm.alloc = 5\ngemm.panic = 0\n").expect("parses");
        let report = check(&fns, Some(&budget), &allow);
        let drift: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.file == "adr-check.budget" && f.message.contains("pins 5"))
            .collect();
        assert_eq!(drift.len(), 1, "{:#?}", report.findings);
        assert_eq!(drift[0].lint, Lint::HotAlloc);
        // The four roots this one-file workspace doesn't model are each
        // their own loud failure under a budget.
        let missing = report.findings.iter().filter(|f| f.message.contains("not found")).count();
        assert_eq!(missing, HOT_ROOTS.len() - 1, "{:#?}", report.findings);
    }

    #[test]
    fn missing_root_is_a_finding_only_under_a_budget() {
        let fns = hot_fns("fn unrelated() {}\n");
        let allow = Allowlist::empty();
        assert!(check(&fns, None, &allow).findings.is_empty());
        let budget = Budget::parse("[static]\n").expect("parses");
        let report = check(&fns, Some(&budget), &allow);
        assert_eq!(report.findings.len(), HOT_ROOTS.len(), "{:#?}", report.findings);
        assert!(report.findings[0].message.contains("not found"), "{}", report.findings[0].message);
    }
}
