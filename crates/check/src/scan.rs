//! File model built on the cleaned source: function spans, visibility,
//! attached docs, and `#[cfg(test)]` suppression regions.

use crate::lexer::{clean_source, line_of};

/// One `fn` item found in a file.
#[derive(Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Parameter-list text (cleaned, between the outer parentheses).
    pub params: String,
    /// Body byte range in the cleaned text (empty for trait-method decls).
    pub body: std::ops::Range<usize>,
    /// `pub` without a visibility restriction.
    pub is_public: bool,
    /// Doc-comment text attached to the item (`///` lines, joined).
    pub docs: String,
}

/// A parsed source file ready for linting.
pub struct FileModel {
    /// Raw source text.
    pub raw: String,
    /// Comment/literal-blanked source (same length as `raw`).
    pub cleaned: String,
    /// All functions, in order of appearance.
    pub fns: Vec<FnSpan>,
    /// Byte ranges covered by `#[cfg(test)]`-gated items.
    pub test_regions: Vec<std::ops::Range<usize>>,
}

impl FileModel {
    /// Lexes and scans `source`.
    pub fn parse(source: &str) -> FileModel {
        let cleaned = clean_source(source);
        let test_regions = find_test_regions(&cleaned);
        let fns = find_fns(source, &cleaned);
        FileModel { raw: source.to_string(), cleaned, fns, test_regions }
    }

    /// True when byte `offset` lies inside a `#[cfg(test)]`-gated item.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&offset))
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnSpan> {
        self.fns.iter().filter(|f| f.body.contains(&offset)).min_by_key(|f| f.body.len())
    }

    /// 1-indexed line number for a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        line_of(&self.raw, offset)
    }

    /// The raw text of the 1-indexed line.
    pub fn line_text(&self, line: usize) -> &str {
        self.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

/// True when `text[i..]` starts the identifier-like word `word` with
/// boundaries on both sides.
pub fn is_word_at(text: &str, i: usize, word: &str) -> bool {
    let bytes = text.as_bytes();
    if i + word.len() > bytes.len() || &text[i..i + word.len()] != word {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
    let after = i + word.len();
    let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
    before_ok && after_ok
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offset just past the matching `}` for the `{` at `open` (or text end).
pub fn match_brace(cleaned: &str, open: usize) -> usize {
    let bytes = cleaned.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Finds every `#[cfg(...test...)]`-gated item's byte range.
fn find_test_regions(cleaned: &str) -> Vec<std::ops::Range<usize>> {
    let bytes = cleaned.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = cleaned[i..].find("#[cfg(").map(|p| p + i) {
        let attr_end = cleaned[pos..].find(']').map(|p| p + pos).unwrap_or(bytes.len());
        let attr = &cleaned[pos..attr_end];
        i = attr_end;
        if !attr.contains("test") {
            continue;
        }
        // Skip any further attributes, then find the item's opening brace
        // (or a terminating `;` for gated statements/imports).
        let mut j = attr_end + 1;
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'#' {
                j = cleaned[j..].find(']').map(|p| p + j + 1).unwrap_or(bytes.len());
                continue;
            }
            break;
        }
        let brace = cleaned[j..].find('{').map(|p| p + j);
        let semi = cleaned[j..].find(';').map(|p| p + j);
        match (brace, semi) {
            (Some(b), Some(s)) if s < b => regions.push(pos..s + 1),
            (Some(b), _) => regions.push(pos..match_brace(cleaned, b)),
            (None, Some(s)) => regions.push(pos..s + 1),
            (None, None) => regions.push(pos..bytes.len()),
        }
    }
    regions
}

/// Finds all `fn` items with their signature, visibility, body, and docs.
fn find_fns(raw: &str, cleaned: &str) -> Vec<FnSpan> {
    let bytes = cleaned.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'f' && is_word_at(cleaned, i, "fn") {
            if let Some(span) = parse_fn(raw, cleaned, i) {
                i = span.body.start.max(i + 2);
                fns.push(span);
                continue;
            }
        }
        i += 1;
    }
    fns
}

fn parse_fn(raw: &str, cleaned: &str, fn_pos: usize) -> Option<FnSpan> {
    let bytes = cleaned.as_bytes();
    // Name.
    let mut j = fn_pos + 2;
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    let name_start = j;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    if j == name_start {
        return None; // `fn` keyword in a type position (e.g. `fn(` pointer)
    }
    let name = cleaned[name_start..j].to_string();
    // Parameter list: first `(` after the name (skipping generics).
    let open_paren = cleaned[j..].find('(').map(|p| p + j)?;
    let mut depth = 0usize;
    let mut k = open_paren;
    while k < bytes.len() {
        match bytes[k] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let params = cleaned[open_paren + 1..k.min(bytes.len())].to_string();
    // Body: next `{` or `;` at the signature level.
    let mut m = k + 1;
    let body = loop {
        if m >= bytes.len() {
            break m..m;
        }
        match bytes[m] {
            b'{' => break m..match_brace(cleaned, m),
            b';' => break m..m,
            _ => m += 1,
        }
    };
    // Visibility: tokens between the previous item boundary and `fn`.
    let prefix_start = cleaned[..fn_pos].rfind(['{', '}', ';']).map(|p| p + 1).unwrap_or(0);
    let prefix = &cleaned[prefix_start..fn_pos];
    let is_public = prefix
        .split_whitespace()
        .any(|tok| tok == "pub" || tok.starts_with("pub") && !tok.starts_with("pub("));
    // Docs: walk raw lines immediately above the item prefix.
    let item_line = line_of(raw, prefix_start + prefix.len() - prefix.trim_start().len());
    let docs = collect_docs(raw, item_line);
    Some(FnSpan { name, start: fn_pos, line: line_of(raw, fn_pos), params, body, is_public, docs })
}

/// Collects the `///` doc block ending just above 1-indexed `item_line`,
/// looking through attribute lines.
fn collect_docs(raw: &str, item_line: usize) -> String {
    let lines: Vec<&str> = raw.lines().collect();
    let mut docs: Vec<&str> = Vec::new();
    let mut l = item_line.saturating_sub(2); // 0-indexed line above the item
    while let Some(text) = lines.get(l) {
        let t = text.trim_start();
        if t.starts_with("///") {
            docs.push(t.trim_start_matches('/').trim());
        } else if t.starts_with("#[")
            || t.starts_with("#!")
            || t.ends_with(']') && t.starts_with('#')
        {
            // attribute between docs and item — keep walking
        } else {
            break;
        }
        if l == 0 {
            break;
        }
        l -= 1;
    }
    docs.reverse();
    docs.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
/// Adds.
///
/// # Shape
/// `a: r×c`.
pub fn add(a: usize, b: usize) -> usize { a + b }

fn private_helper(x: f32) -> f32 {
    x.sqrt()
}

#[cfg(test)]
mod tests {
    fn helper_in_tests() { some().unwrap(); }
}
"#;

    #[test]
    fn finds_functions_and_visibility() {
        let model = FileModel::parse(SRC);
        let names: Vec<&str> = model.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["add", "private_helper", "helper_in_tests"]);
        assert!(model.fns[0].is_public);
        assert!(!model.fns[1].is_public);
    }

    #[test]
    fn attaches_docs() {
        let model = FileModel::parse(SRC);
        assert!(model.fns[0].docs.contains("# Shape"));
        assert!(model.fns[1].docs.is_empty());
    }

    #[test]
    fn captures_params() {
        let model = FileModel::parse(SRC);
        assert_eq!(model.fns[0].params, "a: usize, b: usize");
    }

    #[test]
    fn cfg_test_region_covers_test_mod() {
        let model = FileModel::parse(SRC);
        let unwrap_pos = model.raw.find(".unwrap()").expect("fixture has an unwrap");
        assert!(model.in_test_code(unwrap_pos));
        let add_pos = model.raw.find("pub fn add").expect("fixture has add");
        assert!(!model.in_test_code(add_pos));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let model = FileModel::parse(SRC);
        let pos = model.raw.find("x.sqrt()").expect("fixture has sqrt");
        assert_eq!(model.enclosing_fn(pos).expect("inside a fn").name, "private_helper");
    }
}
