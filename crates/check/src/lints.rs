//! The ADR-specific lints.
//!
//! All three lints are lexical: they run on the comment/literal-blanked
//! source (see [`crate::lexer`]) with function spans and `#[cfg(test)]`
//! regions from [`crate::scan`]. That is deliberate — the invariants they
//! enforce (token pairing and doc sections) are lexical properties, and a
//! zero-dependency scanner keeps the tool runnable in the fully offline
//! build environment.

use crate::scan::{is_word_at, FileModel};

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    /// Panicking construct in hot-path library code.
    NoPanic,
    /// GEMM call site not paired with a FLOP-meter update.
    FlopCoverage,
    /// Public dimension-taking function without a `# Shape` doc section.
    ShapeDocs,
}

impl Lint {
    /// Stable lint name used in reports and documentation.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoPanic => "adr::no_panic",
            Lint::FlopCoverage => "adr::flop_coverage",
            Lint::ShapeDocs => "adr::shape_docs",
        }
    }
}

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Raw text of the offending line (for allowlist matching).
    pub line_text: String,
}

/// Panicking constructs denied in hot-path library code.
///
/// `assert!`/`assert_eq!` are *not* denied: shape-contract assertions at
/// API boundaries are the documented failure mode for caller bugs, and each
/// is required (via clippy's `missing_panics_doc`) to carry a `# Panics`
/// doc. What this lint removes from hot paths is the unplanned variety:
/// `unwrap`/`expect` on `Option`/`Result` and explicit `panic!` family
/// macros in loops that run mid-epoch.
const PANIC_TOKENS: &[(&str, &str)] = &[
    ("unwrap", ".unwrap() in hot-path library code (handle the None/Err case or allowlist the audited site)"),
    ("expect", ".expect() in hot-path library code (handle the None/Err case or allowlist the audited site)"),
    ("panic", "panic! in hot-path library code (return an error or allowlist the audited site)"),
    ("unreachable", "unreachable! in hot-path library code (prove it with types or allowlist the audited site)"),
    ("todo", "todo! left in library code"),
    ("unimplemented", "unimplemented! left in library code"),
];

/// Lint 1: no panicking constructs in library code outside `#[cfg(test)]`.
pub fn no_panic(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;
    for (token, message) in PANIC_TOKENS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            if !is_word_at(cleaned, pos, token) {
                continue;
            }
            // `.unwrap()` / `.expect(` are method calls; the macros appear
            // as `name!`. Anything else (e.g. `unwrap_or`, a local named
            // `todo`) is fine — is_word_at already rejected those.
            let rest = cleaned[pos + token.len()..].trim_start();
            let is_method = *token == "unwrap" || *token == "expect";
            let matches_use = if is_method {
                rest.starts_with('(') && cleaned[..pos].trim_end().ends_with('.')
            } else {
                rest.starts_with('!')
            };
            if !matches_use || model.in_test_code(pos) {
                continue;
            }
            // `debug_assert!`-style and `#[allow]` interplay is handled by
            // the allowlist file, not inline attributes.
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::NoPanic,
                file: file.to_string(),
                line,
                message: (*message).to_string(),
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    findings
}

/// GEMM entry points whose multiply–adds the cost model must see.
const GEMM_TOKENS: &[&str] =
    &["matmul", "matmul_into", "matmul_t_a", "matmul_t_b", "matmul_par", "matmul_range_t_b_par"];

/// Substrings that count as a FLOP-meter update inside a function body.
const FLOP_RECORD_MARKS: &[&str] = &["add_forward", "add_backward", "flops"];

/// Lint 2: every GEMM call site in `nn`/`reuse` library code must share its
/// enclosing function with a FLOP-meter update, so the Eq. 5/6/12/20 cost
/// model cannot silently drift from the computation it claims to describe.
pub fn flop_coverage(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;
    for token in GEMM_TOKENS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            if !is_word_at(cleaned, pos, token) {
                continue;
            }
            // Call sites only: `name(`; skip definitions (`fn matmul`),
            // paths in imports, and doc references.
            let rest = cleaned[pos + token.len()..].trim_start();
            if !rest.starts_with('(') {
                continue;
            }
            let before = cleaned[..pos].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            if model.in_test_code(pos) {
                continue;
            }
            let Some(espan) = model.enclosing_fn(pos) else {
                continue; // not inside a function (e.g. a const initialiser)
            };
            let body = &cleaned[espan.body.clone()];
            let recorded = FLOP_RECORD_MARKS.iter().any(|mark| body.contains(mark));
            if recorded {
                continue;
            }
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::FlopCoverage,
                file: file.to_string(),
                line,
                message: format!(
                    "`{}(...)` in fn `{}` has no FLOP-meter update in the same function \
                     (record with add_forward/add_backward or a *_flops counter)",
                    token, espan.name
                ),
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    findings
}

/// Lint 3: public functions in `tensor`/`nn` that take matrix dimensions
/// (two or more `usize` parameters) must document their `# Shape` contract.
pub fn shape_docs(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if !f.is_public || model.in_test_code(f.start) {
            continue;
        }
        // `: usize` matches bare dimension parameters but not slice/ref
        // types like `&[usize]`, which carry data rather than shape.
        let usize_params = f.params.matches(": usize").count();
        if usize_params < 2 {
            continue;
        }
        if f.docs.contains("# Shape") {
            continue;
        }
        findings.push(Finding {
            lint: Lint::ShapeDocs,
            file: file.to_string(),
            line: f.line,
            message: format!(
                "public fn `{}` takes {} dimension parameters but its docs have no `# Shape` section",
                f.name, usize_params
            ),
            line_text: model.line_text(f.line).to_string(),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(src)
    }

    #[test]
    fn no_panic_flags_unwrap_outside_tests() {
        let m = model("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        let found = no_panic("lib.rs", &m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::NoPanic);
    }

    #[test]
    fn no_panic_ignores_unwrap_or_and_strings() {
        let m = model(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g() -> &'static str { \"don't panic!()\" }",
        );
        assert!(no_panic("lib.rs", &m).is_empty());
    }

    #[test]
    fn no_panic_ignores_test_code() {
        let m = model("#[cfg(test)]\nmod tests {\n fn f() { None::<u8>.unwrap(); panic!(); }\n}");
        assert!(no_panic("lib.rs", &m).is_empty());
    }

    #[test]
    fn flop_coverage_flags_unmetered_gemm() {
        let m = model("fn f(a: &M, b: &M) -> M { a.matmul(b) }");
        let found = flop_coverage("lib.rs", &m);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("matmul"));
    }

    #[test]
    fn flop_coverage_accepts_metered_gemm() {
        let m = model(
            "fn f(&mut self, a: &M, b: &M) -> M { let y = a.matmul(b); self.meter.add_forward(1, 1); y }",
        );
        assert!(flop_coverage("lib.rs", &m).is_empty());
    }

    #[test]
    fn flop_coverage_accepts_flops_counter() {
        let m = model(
            "fn f(a: &M, b: &M, stats: &mut S) -> M { stats.gemm_flops += 1; a.matmul_t_a(b) }",
        );
        assert!(flop_coverage("lib.rs", &m).is_empty());
    }

    #[test]
    fn flop_coverage_skips_definitions() {
        let m = model("pub fn matmul(a: usize, b: usize) -> usize {\n/// # Shape\n a * b }");
        assert!(flop_coverage("lib.rs", &m).is_empty());
    }

    #[test]
    fn shape_docs_requires_section() {
        let m = model("pub fn zeros(rows: usize, cols: usize) -> M { M::new(rows, cols) }");
        let found = shape_docs("lib.rs", &m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::ShapeDocs);
    }

    #[test]
    fn shape_docs_satisfied_by_section() {
        let m = model(
            "/// Zeros.\n///\n/// # Shape\n/// `rows × cols`.\npub fn zeros(rows: usize, cols: usize) -> M { M::new(rows, cols) }",
        );
        assert!(shape_docs("lib.rs", &m).is_empty());
    }

    #[test]
    fn shape_docs_ignores_private_and_single_usize() {
        let m = model(
            "fn zeros(rows: usize, cols: usize) -> M { M::new(rows, cols) }\npub fn row(i: usize) -> usize { i }",
        );
        assert!(shape_docs("lib.rs", &m).is_empty());
    }

    #[test]
    fn shape_docs_ignores_usize_slices() {
        let m = model("pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 { 0.0 }");
        assert!(shape_docs("lib.rs", &m).is_empty());
    }
}
