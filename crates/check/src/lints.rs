//! The ADR-specific lints.
//!
//! The v1 lints (`no_panic`, `flop_coverage`, `shape_docs`) are lexical:
//! they run on the comment/literal-blanked source (see [`crate::lexer`])
//! with function spans and `#[cfg(test)]` regions from [`crate::scan`].
//! The v2 dataflow lints (`determinism`, `float_eq`, `grad_coverage`) add
//! the binding-level facts of [`crate::parser`]: use-path resolution,
//! map/float-typed locals and fields, and float-accumulation detection.
//! All of it stays hand-rolled on the existing lexer (no `syn`), so the
//! tool keeps running in the fully offline build environment.

use crate::parser::{self, FnFacts, UseMap};
use crate::scan::{is_word_at, FileModel};

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    /// Panicking construct in hot-path library code.
    NoPanic,
    /// GEMM call site not paired with a FLOP-meter update.
    FlopCoverage,
    /// Public dimension-taking function without a `# Shape` doc section.
    ShapeDocs,
    /// Run-to-run nondeterminism source in numeric library code.
    Determinism,
    /// Exact float equality outside test code.
    FloatEq,
    /// `Layer` implementation missing from the gradient-check registry.
    GradCoverage,
    /// Bare (non-atomic) file write in checkpoint-adjacent code.
    DurableIo,
    /// `unsafe` site without its justification, or raw-pointer code
    /// outside the approved kernel modules.
    UnsafeContract,
    /// Atomic ordering that is either denied (`Relaxed` read near float
    /// accumulation) or unaudited.
    AtomicOrdering,
    /// Cycle in the inter-procedural lock-acquisition graph.
    LockOrder,
    /// Non-disjoint mutable capture crossing a spawn boundary.
    ScopedCapture,
    /// Unordered float reduction inside a parallel region.
    ParReduction,
    /// Unaudited heap allocation (or budget drift) reachable from a hot
    /// root.
    HotAlloc,
    /// Implicit-panic site count drifting from the hot-path budget.
    HotPanic,
    /// Lock acquisition, file I/O, or console output reachable from a hot
    /// root.
    HotLock,
}

impl Lint {
    /// Stable lint name used in reports and documentation.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoPanic => "adr::no_panic",
            Lint::FlopCoverage => "adr::flop_coverage",
            Lint::ShapeDocs => "adr::shape_docs",
            Lint::Determinism => "adr::determinism",
            Lint::FloatEq => "adr::float_eq",
            Lint::GradCoverage => "adr::grad_coverage",
            Lint::DurableIo => "adr::durable_io",
            Lint::UnsafeContract => "adr::unsafe_contract",
            Lint::AtomicOrdering => "adr::atomic_ordering",
            Lint::LockOrder => "adr::lock_order",
            Lint::ScopedCapture => "adr::scoped_capture",
            Lint::ParReduction => "adr::par_reduction",
            Lint::HotAlloc => "adr::hot_alloc",
            Lint::HotPanic => "adr::hot_panic",
            Lint::HotLock => "adr::hot_lock",
        }
    }

    /// One-line rule description (SARIF `shortDescription`).
    pub fn description(self) -> &'static str {
        match self {
            Lint::NoPanic => "No panicking constructs in hot-path library code",
            Lint::FlopCoverage => "Every GEMM call site pairs with a FLOP-meter update",
            Lint::ShapeDocs => "Public dimension-taking functions document their # Shape contract",
            Lint::Determinism => "No OS entropy or hash-order float reduction in numeric code",
            Lint::FloatEq => "No exact float ==/!= outside tests",
            Lint::GradCoverage => "Every Layer impl is registered in the gradient-check suite",
            Lint::DurableIo => "Persistent artifacts are written via the atomic durable helper",
            Lint::UnsafeContract => {
                "Every unsafe site carries its SAFETY justification; raw pointers stay in \
                 approved kernel modules"
            }
            Lint::AtomicOrdering => {
                "Every atomic Ordering choice is audited; Relaxed reads near float \
                 accumulation are denied"
            }
            Lint::LockOrder => "The inter-procedural lock-acquisition graph is acyclic",
            Lint::ScopedCapture => {
                "Mutable captures crossing a spawn boundary are provably disjoint"
            }
            Lint::ParReduction => "Float reductions in parallel regions use a fixed order",
            Lint::HotAlloc => {
                "Heap allocations reachable from a hot root are audited and their per-phase \
                 count pinned in adr-check.budget"
            }
            Lint::HotPanic => {
                "Implicit panic sites reachable from a hot root match the pinned per-phase \
                 budget"
            }
            Lint::HotLock => "No locks, file I/O, or console output reachable from a hot root",
        }
    }

    /// All lints, for SARIF rule enumeration.
    pub const ALL: &'static [Lint] = &[
        Lint::NoPanic,
        Lint::FlopCoverage,
        Lint::ShapeDocs,
        Lint::Determinism,
        Lint::FloatEq,
        Lint::GradCoverage,
        Lint::DurableIo,
        Lint::UnsafeContract,
        Lint::AtomicOrdering,
        Lint::LockOrder,
        Lint::ScopedCapture,
        Lint::ParReduction,
        Lint::HotAlloc,
        Lint::HotPanic,
        Lint::HotLock,
    ];
}

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Raw text of the offending line (for allowlist matching).
    pub line_text: String,
}

/// Panicking constructs denied in hot-path library code.
///
/// `assert!`/`assert_eq!` are *not* denied: shape-contract assertions at
/// API boundaries are the documented failure mode for caller bugs, and each
/// is required (via clippy's `missing_panics_doc`) to carry a `# Panics`
/// doc. What this lint removes from hot paths is the unplanned variety:
/// `unwrap`/`expect` on `Option`/`Result` and explicit `panic!` family
/// macros in loops that run mid-epoch.
const PANIC_TOKENS: &[(&str, &str)] = &[
    ("unwrap", ".unwrap() in hot-path library code (handle the None/Err case or allowlist the audited site)"),
    ("expect", ".expect() in hot-path library code (handle the None/Err case or allowlist the audited site)"),
    ("panic", "panic! in hot-path library code (return an error or allowlist the audited site)"),
    ("unreachable", "unreachable! in hot-path library code (prove it with types or allowlist the audited site)"),
    ("todo", "todo! left in library code"),
    ("unimplemented", "unimplemented! left in library code"),
];

/// Lint 1: no panicking constructs in library code outside `#[cfg(test)]`.
pub fn no_panic(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;
    for (token, message) in PANIC_TOKENS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            if !is_word_at(cleaned, pos, token) {
                continue;
            }
            // `.unwrap()` / `.expect(` are method calls; the macros appear
            // as `name!`. Anything else (e.g. `unwrap_or`, a local named
            // `todo`) is fine — is_word_at already rejected those.
            let rest = cleaned[pos + token.len()..].trim_start();
            let is_method = *token == "unwrap" || *token == "expect";
            let matches_use = if is_method {
                rest.starts_with('(') && cleaned[..pos].trim_end().ends_with('.')
            } else {
                rest.starts_with('!')
            };
            if !matches_use || model.in_test_code(pos) {
                continue;
            }
            // `debug_assert!`-style and `#[allow]` interplay is handled by
            // the allowlist file, not inline attributes.
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::NoPanic,
                file: file.to_string(),
                line,
                message: (*message).to_string(),
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    findings
}

/// GEMM entry points whose multiply–adds the cost model must see.
const GEMM_TOKENS: &[&str] =
    &["matmul", "matmul_into", "matmul_t_a", "matmul_t_b", "matmul_par", "matmul_range_t_b_par"];

/// Substrings that count as a FLOP-meter update inside a function body.
const FLOP_RECORD_MARKS: &[&str] = &["add_forward", "add_backward", "flops"];

/// Lint 2: every GEMM call site in `nn`/`reuse` library code must share its
/// enclosing function with a FLOP-meter update, so the Eq. 5/6/12/20 cost
/// model cannot silently drift from the computation it claims to describe.
pub fn flop_coverage(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;
    for token in GEMM_TOKENS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            if !is_word_at(cleaned, pos, token) {
                continue;
            }
            // Call sites only: `name(`; skip definitions (`fn matmul`),
            // paths in imports, and doc references.
            let rest = cleaned[pos + token.len()..].trim_start();
            if !rest.starts_with('(') {
                continue;
            }
            let before = cleaned[..pos].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            if model.in_test_code(pos) {
                continue;
            }
            let Some(espan) = model.enclosing_fn(pos) else {
                continue; // not inside a function (e.g. a const initialiser)
            };
            let body = &cleaned[espan.body.clone()];
            let recorded = FLOP_RECORD_MARKS.iter().any(|mark| body.contains(mark));
            if recorded {
                continue;
            }
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::FlopCoverage,
                file: file.to_string(),
                line,
                message: format!(
                    "`{}(...)` in fn `{}` has no FLOP-meter update in the same function \
                     (record with add_forward/add_backward or a *_flops counter)",
                    token, espan.name
                ),
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    findings
}

/// Lint 3: public functions in `tensor`/`nn` that take matrix dimensions
/// (two or more `usize` parameters) must document their `# Shape` contract.
pub fn shape_docs(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if !f.is_public || model.in_test_code(f.start) {
            continue;
        }
        // `: usize` matches bare dimension parameters but not slice/ref
        // types like `&[usize]`, which carry data rather than shape.
        let usize_params = f.params.matches(": usize").count();
        if usize_params < 2 {
            continue;
        }
        if f.docs.contains("# Shape") {
            continue;
        }
        findings.push(Finding {
            lint: Lint::ShapeDocs,
            file: file.to_string(),
            line: f.line,
            message: format!(
                "public fn `{}` takes {} dimension parameters but its docs have no `# Shape` section",
                f.name, usize_params
            ),
            line_text: model.line_text(f.line).to_string(),
        });
    }
    findings
}

/// Entropy sources banned outright in numeric library code: everything
/// stochastic must flow from a seeded `AdrRng` so whole runs replay
/// bit-for-bit (the paper's Figs. 7–8 curves are only comparable across
/// `{L, H, CR}` settings when the policy is the *only* varying input).
const ENTROPY_TOKENS: &[(&str, &str)] = &[
    ("thread_rng", "thread_rng() is OS-seeded; draw from a seeded AdrRng stream instead"),
    (
        "from_entropy",
        "from_entropy() seeds from the OS; derive the seed from AdrRng::split instead",
    ),
    (
        "SystemTime",
        "SystemTime-derived values must not feed seeds or policy decisions; \
         use a seeded AdrRng (wall-clock *measurement* belongs in Instant-based reporting only)",
    ),
];

/// Iteration adaptors whose order is unspecified on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Lint 4: run-to-run determinism. Bans OS-entropy sources everywhere in
/// numeric library code, and bans iterating a `HashMap`/`HashSet` (or the
/// workspace's `SignatureMap`/`SignatureSet` aliases) inside any function
/// that accumulates floats — hash-iteration order reorders float sums,
/// which breaks bitwise reproducibility across builds and capacities. Sort
/// the keys (or keep a side `Vec` in insertion order) before folding.
pub fn determinism(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;

    for (token, message) in ENTROPY_TOKENS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            if !is_word_at(cleaned, pos, token) || model.in_test_code(pos) {
                continue;
            }
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::Determinism,
                file: file.to_string(),
                line,
                message: (*message).to_string(),
                line_text: model.line_text(line).to_string(),
            });
        }
    }

    let uses = UseMap::collect(cleaned);
    let fields = parser::map_fields(model, &uses);
    for f in &model.fns {
        if model.in_test_code(f.start) || f.body.is_empty() {
            continue;
        }
        let facts = parser::fn_facts(model, f, &uses);
        if !facts.accumulates_float {
            continue;
        }
        let mut names: Vec<&str> = facts.map_locals.iter().map(String::as_str).collect();
        names.extend(fields.iter().map(String::as_str));
        let body = &cleaned[f.body.clone()];
        for name in names {
            for pos in iteration_sites(body, name) {
                let global = f.body.start + pos;
                let line = model.line_of(global);
                findings.push(Finding {
                    lint: Lint::Determinism,
                    file: file.to_string(),
                    line,
                    message: format!(
                        "fn `{}` iterates hash collection `{}` while accumulating floats; \
                         hash order is not a stable reduction order — sort the keys first",
                        f.name, name
                    ),
                    line_text: model.line_text(line).to_string(),
                });
            }
        }
    }
    findings.sort_by_key(|f| f.line);
    findings.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    findings
}

/// Byte offsets in `body` where hash collection `name` is iterated: either
/// `name.<iter-method>(` (incl. `self.name.…`) or as the sequence of a
/// `for … in [&[mut ]]name` loop.
fn iteration_sites(body: &str, name: &str) -> Vec<usize> {
    let mut sites = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = body[i..].find(name).map(|p| p + i) {
        i = pos + name.len();
        if !is_word_at(body, pos, name) {
            continue;
        }
        let rest = &body[pos + name.len()..];
        // Method-call iteration: `name.iter()`, `name.values_mut()`, ...
        if let Some(method_rest) = rest.strip_prefix('.') {
            let method: String = method_rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if ITER_METHODS.contains(&method.as_str()) {
                sites.push(pos);
                continue;
            }
        }
        // Loop iteration: `for … in name {` / `in &name {`.
        let before = body[..pos].trim_end();
        let before = before.trim_end_matches('&').trim_end();
        let before = before.strip_suffix("mut").map_or(before, |b| b.trim_end());
        let before = before.trim_end_matches('&').trim_end();
        let is_for_in = before.ends_with("in")
            && is_word_at(before, before.len() - 2, "in")
            && rest.trim_start().starts_with('{');
        if is_for_in {
            sites.push(pos);
        }
    }
    sites
}

/// Lint 5: no exact `==`/`!=` between float expressions outside
/// `#[cfg(test)]`. Exact float equality is only meaningful for IEEE
/// special-case guards; everything else must compare against a tolerance
/// (`Matrix::max_abs_diff`, `(a - b).abs() < eps`). The rare deliberate
/// exact guard is an allowlist entry with an audit comment.
pub fn float_eq(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;
    let uses = UseMap::collect(cleaned);
    for op in ["==", "!="] {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(op).map(|p| p + i) {
            i = pos + op.len();
            if model.in_test_code(pos) {
                continue;
            }
            // `==` also matches inside `!=`'s neighbour scan; and any `=` run
            // longer than the operator is not a comparison.
            if op == "==" && pos > 0 && cleaned.as_bytes()[pos - 1] == b'!' {
                continue;
            }
            let floats = {
                let facts = model
                    .enclosing_fn(pos)
                    .map(|f| parser::fn_facts(model, f, &uses))
                    .unwrap_or_default();
                operand_is_float(&cleaned[..pos], &facts, true)
                    || operand_is_float(&cleaned[pos + op.len()..], &facts, false)
            };
            if !floats {
                continue;
            }
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::FloatEq,
                file: file.to_string(),
                line,
                message: format!(
                    "exact float `{op}` outside tests; compare against a tolerance \
                     (max_abs_diff / (a - b).abs() < eps) or allowlist the audited exact guard"
                ),
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    findings
}

/// Classifies the operand adjacent to a comparison: `text` is everything
/// before (`left = true`) or after (`left = false`) the operator.
fn operand_is_float(text: &str, facts: &FnFacts, left: bool) -> bool {
    let token: String = if left {
        let trimmed = text.trim_end();
        trimmed
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect()
    } else {
        let trimmed = text.trim_start().trim_start_matches('-').trim_start();
        trimmed
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect()
    };
    if token.is_empty() {
        return false;
    }
    // A float literal (`0.0`, `1e-3` won't parse here but `1.5` will), an
    // `as f32` cast remnant, or a tracked float-typed binding.
    if parser::contains_float_literal(&token) {
        return true;
    }
    let last_segment = token.rsplit('.').next().unwrap_or(&token);
    facts.float_locals.iter().any(|n| n == last_segment)
}

/// One `impl Layer for T` site found in `nn` sources.
#[derive(Debug)]
pub struct LayerImpl {
    /// Implementing type name.
    pub type_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line of the `impl`.
    pub line: usize,
    /// Raw text of the `impl` line.
    pub line_text: String,
    /// Whether the impl block provides a `forward`.
    pub has_forward: bool,
    /// Whether a `grad-check: exempt` audit comment precedes the impl.
    pub exempt: bool,
}

/// Collects `impl Layer for <Type>` blocks from one file.
pub fn layer_impls(file: &str, model: &FileModel) -> Vec<LayerImpl> {
    let cleaned = &model.cleaned;
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = cleaned[i..].find("impl").map(|p| p + i) {
        i = pos + 4;
        if !is_word_at(cleaned, pos, "impl") || model.in_test_code(pos) {
            continue;
        }
        let Some(open) = cleaned[pos..].find('{').map(|p| p + pos) else {
            break;
        };
        let header = &cleaned[pos..open];
        let Some(for_pos) = header.find(" for ") else {
            continue;
        };
        let trait_part = &header[4..for_pos];
        let trait_leaf = trait_part
            .trim()
            .trim_end_matches('>')
            .rsplit("::")
            .next()
            .unwrap_or("")
            .trim()
            .trim_start_matches('<')
            .trim();
        if trait_leaf != "Layer" {
            continue;
        }
        let type_name: String = header[for_pos + 5..]
            .trim()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if type_name.is_empty() {
            continue;
        }
        let close = crate::scan::match_brace(cleaned, open);
        let body = &cleaned[open..close];
        let has_forward =
            body.match_indices("fn forward").any(|(p, _)| is_word_at(body, p + 3, "forward"));
        let line = model.line_of(pos);
        let exempt = (line.saturating_sub(3)..line)
            .filter(|&l| l > 0)
            .any(|l| model.line_text(l).contains("grad-check: exempt"));
        out.push(LayerImpl {
            type_name,
            file: file.to_string(),
            line,
            line_text: model.line_text(line).to_string(),
            has_forward,
            exempt,
        });
        i = open + 1;
    }
    out
}

/// Parses the gradient-check registry: every `grad-check: A, B` comment in
/// `tests/gradient_checks.rs` contributes its listed type names.
pub fn grad_check_registry(raw: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in raw.lines() {
        let Some(idx) = line.find("grad-check:") else {
            continue;
        };
        let list = &line[idx + "grad-check:".len()..];
        for name in list.split(',') {
            let name = name.trim();
            if !name.is_empty()
                && name != "exempt"
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                names.push(name.to_string());
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Lint 6: every `Layer` implementation in `nn` with a `forward` must be
/// registered (and therefore exercised) in the gradient-check suite. The
/// paper's backward-reuse equations (9/10, 17/18) only hold when each
/// layer's analytic gradient is validated against finite differences — a
/// layer outside the registry is an unverified link in every chain rule.
pub fn grad_coverage(impls: &[LayerImpl], registry: &[String]) -> Vec<Finding> {
    impls
        .iter()
        .filter(|imp| imp.has_forward && !imp.exempt)
        .filter(|imp| !registry.iter().any(|r| r == &imp.type_name))
        .map(|imp| Finding {
            lint: Lint::GradCoverage,
            file: imp.file.clone(),
            line: imp.line,
            message: format!(
                "`{}` implements Layer but has no `grad-check: {}` entry in \
                 tests/gradient_checks.rs (add a finite-difference check, or an audited \
                 `grad-check: exempt` comment above the impl)",
                imp.type_name, imp.type_name
            ),
            line_text: imp.line_text.clone(),
        })
        .collect()
}

/// Bare write entry points denied in checkpoint-adjacent crates. A torn
/// checkpoint is worse than none — a resumed run reads half-written state —
/// so every persistent artifact must go through the temp + fsync + rename
/// protocol of `adr_nn::durable::write_atomic`.
const DURABLE_IO_TOKENS: &[(&str, &str)] = &[
    (
        "File::create",
        "bare File::create in checkpoint-adjacent code; route the write through \
         durable::write_atomic (temp + fsync + rename) so a crash cannot tear the artifact",
    ),
    (
        "fs::write",
        "bare fs::write in checkpoint-adjacent code; route the write through \
         durable::write_atomic (temp + fsync + rename) so a crash cannot tear the artifact",
    ),
];

/// Lint 7: persistent artifacts in checkpoint-adjacent crates must be
/// written through the atomic helper, never with bare `File::create` or
/// `fs::write`. The helper itself (`durable.rs`) is the one sanctioned
/// home for the raw syscalls and is exempt.
pub fn durable_io(file: &str, model: &FileModel) -> Vec<Finding> {
    if file.ends_with("durable.rs") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let cleaned = &model.cleaned;
    for (token, message) in DURABLE_IO_TOKENS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
            i = pos + token.len();
            // Word boundary at the front: `BigFile::create` is a different
            // type, but a path prefix (`std::fs::write`) is still a match.
            if pos > 0 {
                let before = cleaned.as_bytes()[pos - 1];
                if before.is_ascii_alphanumeric() || before == b'_' {
                    continue;
                }
            }
            // Call sites only: `…(`. This also skips longer method names
            // like `fs::write_atomic` re-exports.
            let rest = cleaned[pos + token.len()..].trim_start();
            if !rest.starts_with('(') || model.in_test_code(pos) {
                continue;
            }
            let line = model.line_of(pos);
            findings.push(Finding {
                lint: Lint::DurableIo,
                file: file.to_string(),
                line,
                message: (*message).to_string(),
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(src)
    }

    #[test]
    fn no_panic_flags_unwrap_outside_tests() {
        let m = model("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        let found = no_panic("lib.rs", &m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::NoPanic);
    }

    #[test]
    fn no_panic_ignores_unwrap_or_and_strings() {
        let m = model(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g() -> &'static str { \"don't panic!()\" }",
        );
        assert!(no_panic("lib.rs", &m).is_empty());
    }

    #[test]
    fn no_panic_ignores_test_code() {
        let m = model("#[cfg(test)]\nmod tests {\n fn f() { None::<u8>.unwrap(); panic!(); }\n}");
        assert!(no_panic("lib.rs", &m).is_empty());
    }

    #[test]
    fn flop_coverage_flags_unmetered_gemm() {
        let m = model("fn f(a: &M, b: &M) -> M { a.matmul(b) }");
        let found = flop_coverage("lib.rs", &m);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("matmul"));
    }

    #[test]
    fn flop_coverage_accepts_metered_gemm() {
        let m = model(
            "fn f(&mut self, a: &M, b: &M) -> M { let y = a.matmul(b); self.meter.add_forward(1, 1); y }",
        );
        assert!(flop_coverage("lib.rs", &m).is_empty());
    }

    #[test]
    fn flop_coverage_accepts_flops_counter() {
        let m = model(
            "fn f(a: &M, b: &M, stats: &mut S) -> M { stats.gemm_flops += 1; a.matmul_t_a(b) }",
        );
        assert!(flop_coverage("lib.rs", &m).is_empty());
    }

    #[test]
    fn flop_coverage_skips_definitions() {
        let m = model("pub fn matmul(a: usize, b: usize) -> usize {\n/// # Shape\n a * b }");
        assert!(flop_coverage("lib.rs", &m).is_empty());
    }

    #[test]
    fn shape_docs_requires_section() {
        let m = model("pub fn zeros(rows: usize, cols: usize) -> M { M::new(rows, cols) }");
        let found = shape_docs("lib.rs", &m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::ShapeDocs);
    }

    #[test]
    fn shape_docs_satisfied_by_section() {
        let m = model(
            "/// Zeros.\n///\n/// # Shape\n/// `rows × cols`.\npub fn zeros(rows: usize, cols: usize) -> M { M::new(rows, cols) }",
        );
        assert!(shape_docs("lib.rs", &m).is_empty());
    }

    #[test]
    fn shape_docs_ignores_private_and_single_usize() {
        let m = model(
            "fn zeros(rows: usize, cols: usize) -> M { M::new(rows, cols) }\npub fn row(i: usize) -> usize { i }",
        );
        assert!(shape_docs("lib.rs", &m).is_empty());
    }

    #[test]
    fn shape_docs_ignores_usize_slices() {
        let m = model("pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 { 0.0 }");
        assert!(shape_docs("lib.rs", &m).is_empty());
    }

    #[test]
    fn durable_io_flags_bare_writes() {
        let m = model(
            "fn save(p: &Path, b: &[u8]) -> io::Result<()> { let f = File::create(p)?; Ok(()) }\n\
             fn dump(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }",
        );
        let found = durable_io("crates/nn/src/checkpoint.rs", &m);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.lint == Lint::DurableIo));
    }

    #[test]
    fn durable_io_exempts_the_atomic_helper_and_tests() {
        let src = "fn save(p: &Path) { let f = File::create(p); }";
        let m = model(src);
        assert!(durable_io("crates/nn/src/durable.rs", &m).is_empty());
        let m =
            model("#[cfg(test)]\nmod tests {\n fn f(p: &Path) { std::fs::write(p, b\"x\"); }\n}");
        assert!(durable_io("crates/nn/src/checkpoint.rs", &m).is_empty());
    }

    #[test]
    fn durable_io_in_serve_flags_writes_but_not_checkpoint_reads() {
        // The serving engine reads checkpoints (`fs::read`, `File::open`)
        // constantly; only bare *writes* violate the durability policy.
        let m = model(
            "fn load(p: &Path) -> io::Result<Vec<u8>> { std::fs::read(p) }\n\
             fn peek(p: &Path) { let f = File::open(p); }",
        );
        assert!(durable_io("crates/serve/src/engine.rs", &m).is_empty());
        let m = model("fn persist(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }");
        let found = durable_io("crates/serve/src/engine.rs", &m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::DurableIo);
    }

    #[test]
    fn durable_io_ignores_lookalikes() {
        let m = model(
            "fn a(p: &Path, b: &[u8]) { durable::write_atomic(p, b); }\n\
             fn b(p: &Path) { BigFile::create(p); }\n\
             fn c(p: &Path, b: &[u8]) { my_fs::write(p, b); }\n\
             fn d() { let fs_write = 1; }",
        );
        assert!(durable_io("crates/core/src/state.rs", &m).is_empty());
    }
}
