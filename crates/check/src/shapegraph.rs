//! Static model-graph shape verification (`adr-check shapes`).
//!
//! Every ADR transformation assumes a consistent im2col factorization: the
//! unfolded input is `N × K` (Eq. 5's `K = Ic·kh·kw`), split into `K/L`
//! sub-matrices of width `L`, each clustered under `H ≤ 64` hash bits
//! packed into one `u64` signature. A layer chain whose declared shapes
//! disagree — or whose reuse knobs violate those factorization bounds —
//! would only surface at runtime as a mid-epoch panic or, worse, a silent
//! mis-fold. This module propagates `(N, C, H, W)` symbolically through a
//! [`NetSpec`] and rejects the chain *before* any weight is allocated.
//!
//! Checks, per layer kind:
//!
//! * `conv` — declared `(in_h, in_w, in_c)` must equal the propagated
//!   shape; a declared reuse config must satisfy `L | K`, `L ≤ K`, and
//!   `1 ≤ H ≤ 64` (the packed-signature bit budget of `hashpack`);
//! * `pool` — the window must fit inside the propagated spatial dims;
//! * `batchnorm` — declared channels must equal the propagated `C`;
//! * `dropout` — the rate must lie in `[0, 1)`;
//! * `flatten` — collapses `(C, H, W)` to `C·H·W` features, once;
//! * `dense` — declared `in_features` must equal the propagated feature
//!   count (an implicit flatten is inserted when a dense head directly
//!   follows a spatial layer, mirroring `adr_nn::dense::Dense`).
//!
//! Failures carry the *full* propagated trace up to the offending layer, so
//! the diagnostic shows where the declared and propagated shapes diverged.

use adr_models::{LayerSpec, NetSpec};

/// Everything one verification pass produced: the trace always covers the
/// prefix that propagated cleanly (plus a `!!` line for the failure).
#[derive(Debug)]
pub struct ShapeReport {
    /// Network name.
    pub net: String,
    /// One line per propagated layer, `input` first.
    pub trace: Vec<String>,
    /// The first failure, if any (propagation stops there).
    pub error: Option<ShapeError>,
}

impl ShapeReport {
    /// True when the whole chain propagated without a violation.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// One shape violation, anchored to the layer that caused it.
#[derive(Debug)]
pub struct ShapeError {
    /// Name of the offending layer.
    pub layer: String,
    /// What went wrong.
    pub message: String,
}

/// Propagated activation shape (batch dimension stays symbolic `N`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Spatial activation `(N, C, H, W)`.
    Spatial {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// Flattened activation `(N, features)`.
    Flat {
        /// Feature count.
        features: usize,
    },
}

impl State {
    fn fmt(self) -> String {
        match self {
            State::Spatial { c, h, w } => format!("(N, {c}, {h}, {w})"),
            State::Flat { features } => format!("(N, {features})"),
        }
    }
}

/// Symbolically propagates `(N, C, H, W)` through `spec`, recording a trace
/// line per layer and stopping at the first violation.
pub fn verify(spec: &NetSpec) -> ShapeReport {
    let (in_h, in_w, in_c) = spec.input;
    let mut state = State::Spatial { c: in_c, h: in_h, w: in_w };
    let mut trace = vec![format!("{:<12} {}", "input", state.fmt())];
    for layer in &spec.layers {
        match step(layer, state) {
            Ok((next, note)) => {
                trace.push(format!(
                    "{:<12} {} -> {}{}",
                    layer.name(),
                    state.fmt(),
                    next.fmt(),
                    note
                ));
                state = next;
            }
            Err(message) => {
                trace.push(format!("{:<12} {} -> !! {}", layer.name(), state.fmt(), message));
                return ShapeReport {
                    net: spec.name.clone(),
                    trace,
                    error: Some(ShapeError { layer: layer.name().to_string(), message }),
                };
            }
        }
    }
    ShapeReport { net: spec.name.clone(), trace, error: None }
}

/// Applies one layer to the propagated state; `Ok` carries the next state
/// and an annotation suffix for the trace line.
fn step(layer: &LayerSpec, state: State) -> Result<(State, String), String> {
    match layer {
        LayerSpec::Conv { geom, out_channels, reuse, .. } => {
            let State::Spatial { c, h, w } = state else {
                return Err("convolution after flatten (no spatial dims left)".to_string());
            };
            if (geom.in_h, geom.in_w, geom.in_c) != (h, w, c) {
                return Err(format!(
                    "declared input (C={}, H={}, W={}) disagrees with propagated (C={c}, H={h}, W={w})",
                    geom.in_c, geom.in_h, geom.in_w
                ));
            }
            let k = geom.k();
            let mut note = format!("   [K={k}");
            if let Some(r) = reuse {
                let l = r.sub_vector_len;
                if l == 0 || l > k {
                    return Err(format!("reuse L={l} outside 1..=K (K={k})"));
                }
                if k % l != 0 {
                    return Err(format!(
                        "invalid im2col factorization (Eq. 5): L={l} does not divide K={k}"
                    ));
                }
                if r.num_hashes == 0 || r.num_hashes > 64 {
                    return Err(format!(
                        "reuse H={} exceeds the 64-bit packed-signature budget (need 1..=64)",
                        r.num_hashes
                    ));
                }
                note.push_str(&format!(", L={l}, H={}", r.num_hashes));
            }
            note.push(']');
            Ok((State::Spatial { c: *out_channels, h: geom.out_h(), w: geom.out_w() }, note))
        }
        LayerSpec::Pool { size, stride, .. } => {
            let State::Spatial { c, h, w } = state else {
                return Err("pool after flatten (no spatial dims left)".to_string());
            };
            if *size == 0 || *stride == 0 {
                return Err(format!("pool window {size}x{size} stride {stride} is degenerate"));
            }
            if *size > h || *size > w {
                return Err(format!("pool window {size}x{size} does not fit in {h}x{w}"));
            }
            let oh = (h - size) / stride + 1;
            let ow = (w - size) / stride + 1;
            Ok((State::Spatial { c, h: oh, w: ow }, String::new()))
        }
        LayerSpec::Relu { .. } | LayerSpec::Lrn { .. } => Ok((state, String::new())),
        LayerSpec::BatchNorm { channels, .. } => {
            let State::Spatial { c, .. } = state else {
                return Err("batchnorm after flatten (no channel dim left)".to_string());
            };
            if *channels != c {
                return Err(format!("declared {channels} channels but propagated C={c}"));
            }
            Ok((state, String::new()))
        }
        LayerSpec::Dropout { rate, .. } => {
            if !(0.0..1.0).contains(rate) {
                return Err(format!("dropout rate {rate} outside [0, 1)"));
            }
            Ok((state, String::new()))
        }
        LayerSpec::Flatten => match state {
            State::Spatial { c, h, w } => Ok((State::Flat { features: c * h * w }, String::new())),
            State::Flat { .. } => Err("flatten applied twice".to_string()),
        },
        LayerSpec::Dense { in_features, out_features, .. } => {
            let (features, note) = match state {
                State::Flat { features } => (features, String::new()),
                // Mirror adr_nn::dense::Dense, which flattens implicitly.
                State::Spatial { c, h, w } => (c * h * w, "   (implicit flatten)".to_string()),
            };
            if *in_features != features {
                return Err(format!(
                    "declared in_features={in_features} but propagated features={features}"
                ));
            }
            Ok((State::Flat { features: *out_features }, note))
        }
    }
}

/// Parses the fixture text format into a [`NetSpec`].
///
/// One layer per line; `#` starts a comment. Grammar:
///
/// ```text
/// net <name>
/// input <h> <w> <c>
/// conv <name> <in_h> <in_w> <in_c> <kh> <kw> <stride> <pad> <out_c> [reuse <L> <H>]
/// pool <name> <size> <stride>
/// relu <name>
/// lrn <name>
/// batchnorm <name> <channels>
/// dropout <name> <rate>
/// flatten
/// dense <name> <in_features> <out_features>
/// ```
///
/// # Errors
/// Returns a `line N: ...` message for unknown directives, arity mistakes,
/// unparsable numbers, or a conv geometry with no output pixel.
pub fn parse_spec(text: &str) -> Result<NetSpec, String> {
    use adr_models::ReuseSpec;
    use adr_tensor::im2col::ConvGeom;

    let mut name = String::from("unnamed");
    let mut input = None;
    let mut layers = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let n = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let num = |s: &str| -> Result<usize, String> {
            s.parse::<usize>().map_err(|_| format!("line {n}: `{s}` is not a number"))
        };
        match directive {
            "net" => name = rest.join(" "),
            "input" => {
                let [h, w, c] = arity(n, "input", &rest)?;
                input = Some((num(h)?, num(w)?, num(c)?));
            }
            "conv" => {
                if rest.len() != 9 && rest.len() != 12 {
                    return Err(format!(
                        "line {n}: conv needs 9 fields (or 12 with `reuse L H`), got {}",
                        rest.len()
                    ));
                }
                let geom = ConvGeom::new(
                    num(rest[1])?,
                    num(rest[2])?,
                    num(rest[3])?,
                    num(rest[4])?,
                    num(rest[5])?,
                    num(rest[6])?,
                    num(rest[7])?,
                )
                .ok_or_else(|| format!("line {n}: conv geometry has no output pixel"))?;
                let reuse = if rest.len() == 12 {
                    if rest[9] != "reuse" {
                        return Err(format!("line {n}: expected `reuse L H`, got `{}`", rest[9]));
                    }
                    Some(ReuseSpec { sub_vector_len: num(rest[10])?, num_hashes: num(rest[11])? })
                } else {
                    None
                };
                layers.push(LayerSpec::Conv {
                    name: rest[0].to_string(),
                    geom,
                    out_channels: num(rest[8])?,
                    reuse,
                });
            }
            "pool" => {
                let [lname, size, stride] = arity(n, "pool", &rest)?;
                layers.push(LayerSpec::Pool {
                    name: lname.to_string(),
                    size: num(size)?,
                    stride: num(stride)?,
                });
            }
            "relu" => {
                let [lname] = arity(n, "relu", &rest)?;
                layers.push(LayerSpec::Relu { name: lname.to_string() });
            }
            "lrn" => {
                let [lname] = arity(n, "lrn", &rest)?;
                layers.push(LayerSpec::Lrn { name: lname.to_string() });
            }
            "batchnorm" => {
                let [lname, channels] = arity(n, "batchnorm", &rest)?;
                layers.push(LayerSpec::BatchNorm {
                    name: lname.to_string(),
                    channels: num(channels)?,
                });
            }
            "dropout" => {
                let [lname, rate] = arity(n, "dropout", &rest)?;
                let rate =
                    rate.parse::<f32>().map_err(|_| format!("line {n}: `{rate}` is not a rate"))?;
                layers.push(LayerSpec::Dropout { name: lname.to_string(), rate });
            }
            "flatten" => layers.push(LayerSpec::Flatten),
            "dense" => {
                let [lname, inf, outf] = arity(n, "dense", &rest)?;
                layers.push(LayerSpec::Dense {
                    name: lname.to_string(),
                    in_features: num(inf)?,
                    out_features: num(outf)?,
                });
            }
            other => return Err(format!("line {n}: unknown directive `{other}`")),
        }
    }
    let input = input.ok_or("spec has no `input h w c` line")?;
    Ok(NetSpec { name, input, layers })
}

/// Checks a directive's field count and returns the fields as an array.
fn arity<'a, const A: usize>(
    line: usize,
    directive: &str,
    rest: &[&'a str],
) -> Result<[&'a str; A], String> {
    if rest.len() != A {
        return Err(format!("line {line}: {directive} needs {A} field(s), got {}", rest.len()));
    }
    let mut out = [""; A];
    out.copy_from_slice(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_models::ReuseSpec;
    use adr_tensor::im2col::ConvGeom;

    fn conv(name: &str, geom: ConvGeom, out: usize, reuse: Option<ReuseSpec>) -> LayerSpec {
        LayerSpec::Conv { name: name.to_string(), geom, out_channels: out, reuse }
    }

    #[test]
    fn shipped_net_specs_all_verify() {
        for spec in adr_models::all_net_specs() {
            let report = verify(&spec);
            assert!(report.is_ok(), "{}: {:#?}", spec.name, report.error);
            // Trace covers input + every layer.
            assert_eq!(report.trace.len(), spec.layers.len() + 1, "{}", spec.name);
        }
    }

    #[test]
    fn declared_input_mismatch_is_rejected_with_trace() {
        let spec = NetSpec {
            name: "bad".into(),
            input: (8, 8, 3),
            layers: vec![
                conv("conv1", ConvGeom::new(8, 8, 3, 3, 3, 1, 0).unwrap(), 4, None),
                // conv1 output is 6x6x4; this declares 8x8x4.
                conv("conv2", ConvGeom::new(8, 8, 4, 3, 3, 1, 0).unwrap(), 4, None),
            ],
        };
        let report = verify(&spec);
        let err = report.error.expect("mismatch must be rejected");
        assert_eq!(err.layer, "conv2");
        assert!(err.message.contains("disagrees"), "{}", err.message);
        assert!(report.trace.last().unwrap().contains("!!"));
    }

    #[test]
    fn reuse_l_must_divide_k() {
        let geom = ConvGeom::new(8, 8, 3, 5, 5, 1, 2).unwrap(); // K = 75
        let bad = ReuseSpec { sub_vector_len: 8, num_hashes: 8 };
        let spec = NetSpec {
            name: "bad-l".into(),
            input: (8, 8, 3),
            layers: vec![conv("conv1", geom, 4, Some(bad))],
        };
        let err = verify(&spec).error.expect("L=8 does not divide 75");
        assert!(err.message.contains("Eq. 5"), "{}", err.message);

        let good = ReuseSpec { sub_vector_len: 5, num_hashes: 8 };
        let spec = NetSpec {
            name: "good-l".into(),
            input: (8, 8, 3),
            layers: vec![conv("conv1", geom, 4, Some(good))],
        };
        assert!(verify(&spec).is_ok());
    }

    #[test]
    fn reuse_h_is_capped_at_64_bits() {
        let geom = ConvGeom::new(8, 8, 3, 5, 5, 1, 2).unwrap();
        let bad = ReuseSpec { sub_vector_len: 5, num_hashes: 70 };
        let spec = NetSpec {
            name: "bad-h".into(),
            input: (8, 8, 3),
            layers: vec![conv("conv1", geom, 4, Some(bad))],
        };
        let err = verify(&spec).error.expect("H=70 must be rejected");
        assert!(err.message.contains("64-bit"), "{}", err.message);
    }

    #[test]
    fn pool_window_must_fit() {
        let spec = NetSpec {
            name: "bad-pool".into(),
            input: (4, 4, 2),
            layers: vec![LayerSpec::Pool { name: "pool".into(), size: 5, stride: 2 }],
        };
        let err = verify(&spec).error.expect("5x5 window in 4x4 input");
        assert!(err.message.contains("does not fit"), "{}", err.message);
    }

    #[test]
    fn dense_checks_flattened_features_and_implicit_flatten() {
        let mut layers = vec![
            conv("conv", ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap(), 2, None),
            LayerSpec::Dense { name: "fc".into(), in_features: 4 * 4 * 2, out_features: 3 },
        ];
        let spec = NetSpec { name: "implicit".into(), input: (6, 6, 1), layers: layers.clone() };
        let report = verify(&spec);
        assert!(report.is_ok(), "{:?}", report.error);
        assert!(report.trace.last().unwrap().contains("implicit flatten"));

        layers[1] = LayerSpec::Dense { name: "fc".into(), in_features: 99, out_features: 3 };
        let spec = NetSpec { name: "wrong".into(), input: (6, 6, 1), layers };
        let err = verify(&spec).error.expect("in_features=99 vs 32");
        assert!(err.message.contains("in_features=99"), "{}", err.message);
    }

    #[test]
    fn batchnorm_channel_mismatch_is_rejected() {
        let spec = NetSpec {
            name: "bad-bn".into(),
            input: (4, 4, 3),
            layers: vec![LayerSpec::BatchNorm { name: "bn".into(), channels: 8 }],
        };
        let err = verify(&spec).error.expect("8 != 3 channels");
        assert!(err.message.contains("propagated C=3"), "{}", err.message);
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let text = "\
# a tiny chain
net tiny
input 8 8 3
conv conv1 8 8 3 3 3 1 1 4 reuse 3 8
relu relu1
batchnorm bn1 4
pool pool1 2 2
dropout drop1 0.5
flatten
dense fc 64 10
";
        let spec = parse_spec(text).expect("grammar parses");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.input, (8, 8, 3));
        assert_eq!(spec.layers.len(), 7);
        let report = verify(&spec);
        assert!(report.is_ok(), "{:?}", report.error);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(parse_spec("input 8 8").unwrap_err().contains("3 field(s)"));
        assert!(parse_spec("input 8 8 3\nwarp w").unwrap_err().contains("unknown directive"));
        assert!(parse_spec("conv c 8 8 3 9 9 1 0 4").unwrap_err().contains("no output pixel"));
        assert!(parse_spec("flatten").unwrap_err().contains("no `input"));
    }
}
