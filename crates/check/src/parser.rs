//! Item/expression-level facts on top of the lexical [`crate::scan`] model.
//!
//! The v1 lints were purely token-pairing checks. The dataflow lints
//! (`adr::determinism`, `adr::float_eq`) need slightly more structure:
//! which names a file imports (`use` paths), which locals/fields carry
//! hash-map/-set types, which locals carry floats, and whether a function
//! body accumulates floating-point values. This module extracts those facts
//! from the cleaned source with a hand-rolled scanner — still zero
//! dependencies, still running on the comment/literal-blanked text, but now
//! tracking *names through bindings* instead of bare tokens.
//!
//! Known imprecision (accepted, see DESIGN.md §8): types are propagated one
//! binding deep (params, `let` annotations/initialisers, same-file struct
//! fields), not through function returns or cross-file inference. The lints
//! built on these facts therefore under-approximate; the allowlist covers
//! the audited remainder.

use crate::scan::{is_word_at, FileModel, FnSpan};

/// Unordered-collection type names whose iteration order is a
/// nondeterminism hazard for float accumulation. `SignatureMap`/
/// `SignatureSet` are this workspace's `FxHasher` aliases — deterministic
/// within one build, but their order still shifts with capacity and
/// insertion history, which breaks the cross-run comparability the paper's
/// accuracy-vs-savings curves depend on.
pub const MAP_TYPE_NAMES: &[&str] =
    &["HashMap", "HashSet", "FxHashMap", "FxHashSet", "SignatureMap", "SignatureSet"];

/// One resolved `use` import: the name it binds locally and the full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseEntry {
    /// Local binding (the leaf segment, or the `as` alias).
    pub name: String,
    /// Full `::`-joined path as written.
    pub path: String,
}

/// All `use` imports of a file.
#[derive(Debug, Default)]
pub struct UseMap {
    entries: Vec<UseEntry>,
}

impl UseMap {
    /// Collects `use` items from cleaned source text.
    ///
    /// Handles `use a::b::C;`, `as` renames, and one level of brace groups
    /// (`use a::{B, C as D};`) — the forms this workspace uses.
    pub fn collect(cleaned: &str) -> UseMap {
        let mut entries = Vec::new();
        let bytes = cleaned.as_bytes();
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find("use").map(|p| p + i) {
            i = pos + 3;
            if !is_word_at(cleaned, pos, "use") || !at_item_position(cleaned, pos) {
                continue;
            }
            let Some(end) = cleaned[pos..].find(';').map(|p| p + pos) else {
                break;
            };
            let item = cleaned[pos + 3..end].trim();
            parse_use_item(item, &mut entries);
            i = end + 1;
        }
        let _ = bytes;
        UseMap { entries }
    }

    /// The resolved full path a local `name` was imported from, if any.
    pub fn path_of(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.path.as_str())
    }

    /// All entries, for diagnostics.
    pub fn entries(&self) -> &[UseEntry] {
        &self.entries
    }
}

/// True when the `use` keyword at `pos` starts an item (not e.g. part of a
/// path like `crate::used`).
fn at_item_position(cleaned: &str, pos: usize) -> bool {
    let before = cleaned[..pos].trim_end();
    before.is_empty()
        || before.ends_with(['{', '}', ';', ')'])
        || before.ends_with("pub")
        || before.ends_with("pub(crate)")
}

/// Parses the body of one `use` item (without the `use` keyword or `;`).
fn parse_use_item(item: &str, entries: &mut Vec<UseEntry>) {
    let item = item.trim_start_matches("::").trim();
    if let Some(brace) = item.find('{') {
        let prefix = item[..brace].trim().trim_end_matches("::");
        let inner = item[brace + 1..].trim_end_matches('}');
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() || part == "*" || part == "self" {
                continue;
            }
            push_use_leaf(prefix, part, entries);
        }
    } else if !item.is_empty() && !item.ends_with('*') {
        let (prefix, leaf) = match item.rfind("::") {
            Some(sep) => (&item[..sep], &item[sep + 2..]),
            None => ("", item),
        };
        push_use_leaf(prefix, leaf, entries);
    }
}

/// Records one leaf (possibly `Orig as Alias`) under its import prefix.
fn push_use_leaf(prefix: &str, leaf: &str, entries: &mut Vec<UseEntry>) {
    let (orig, bound) = match leaf.split_once(" as ") {
        Some((o, a)) => (o.trim(), a.trim()),
        None => (leaf, leaf),
    };
    let path = if prefix.is_empty() { orig.to_string() } else { format!("{prefix}::{orig}") };
    entries.push(UseEntry { name: bound.to_string(), path });
}

/// True when local name `name` denotes an unordered hash collection, either
/// directly or through this file's imports.
pub fn is_map_type_name(name: &str, uses: &UseMap) -> bool {
    if MAP_TYPE_NAMES.contains(&name) {
        return true;
    }
    uses.path_of(name).is_some_and(|path| {
        let leaf = path.rsplit("::").next().unwrap_or(path);
        MAP_TYPE_NAMES.contains(&leaf)
    })
}

/// True when type text `ty` mentions an unordered hash collection.
pub fn type_mentions_map(ty: &str, uses: &UseMap) -> bool {
    words_of(ty).any(|w| is_map_type_name(w, uses))
}

/// Iterator over identifier-like words of `text`.
pub(crate) fn words_of(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).filter(|w| !w.is_empty())
}

/// Per-function dataflow facts used by the determinism and float-eq lints.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Names (params, `let` locals) bound to `HashMap`/`HashSet`-like types.
    pub map_locals: Vec<String>,
    /// Names (params, `let` locals) bound to `f32`/`f64`.
    pub float_locals: Vec<String>,
    /// Whether the body performs floating-point accumulation.
    pub accumulates_float: bool,
}

/// Float-carrying workspace types: a function whose signature or body
/// mentions one of these operates on `f32` data even when the token `f32`
/// never appears (e.g. `&Matrix` parameters).
const FLOAT_CARRIERS: &[&str] = &["f32", "f64", "Matrix", "Tensor4"];

/// Computes dataflow facts for one function.
pub fn fn_facts(model: &FileModel, f: &FnSpan, uses: &UseMap) -> FnFacts {
    let mut facts = FnFacts::default();
    collect_typed_names(&f.params, uses, &mut facts);
    let body = &model.cleaned[f.body.clone()];
    collect_let_bindings(body, uses, &mut facts);
    facts.accumulates_float = body_accumulates_float(&f.params, body);
    facts
}

/// True when the function touches floating-point accumulation: it both
/// sees float data (directly or through a float-carrying type) and performs
/// an accumulation operation.
fn body_accumulates_float(params: &str, body: &str) -> bool {
    let sees_float = FLOAT_CARRIERS
        .iter()
        .any(|t| words_of(params).any(|w| w == *t) || words_of(body).any(|w| w == *t))
        || contains_float_literal(body);
    let accumulates = body.contains("+=")
        || body.contains("-=")
        || body.contains(".sum(")
        || body.contains(".sum::")
        || body.contains(".product(")
        || body.contains("mul_add(");
    sees_float && accumulates
}

/// True when `text` contains a floating-point literal (`1.0`, `3.5e-2`,
/// `1f32`). A bare `1.` followed by an identifier (`1.max(..)`) is integer
/// method syntax and does not count.
pub fn contains_float_literal(text: &str) -> bool {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'.' || i == 0 || !bytes[i - 1].is_ascii_digit() {
            continue;
        }
        // digits '.' — float when followed by a digit or a non-identifier.
        match bytes.get(i + 1) {
            Some(n) if n.is_ascii_digit() => return true,
            Some(n) if n.is_ascii_alphabetic() || *n == b'_' || *n == b'.' => {}
            _ => return true,
        }
    }
    text.contains("f32") || text.contains("f64")
}

/// Extracts `name: Type` pairs from a parameter list (or struct-field body)
/// and classifies each binding.
fn collect_typed_names(params: &str, uses: &UseMap, facts: &mut FnFacts) {
    for piece in split_top_level(params, ',') {
        let Some((pat, ty)) = split_top_level_once(piece, ':') else {
            continue;
        };
        let name = pat.trim().trim_start_matches("mut ").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        classify_binding(name, ty, uses, facts);
    }
}

/// Classifies one `name: Type` (or `name = init`) binding into the fact sets.
fn classify_binding(name: &str, ty: &str, uses: &UseMap, facts: &mut FnFacts) {
    let ty = ty.trim().trim_start_matches('&').trim_start_matches("mut ").trim();
    if type_mentions_map(ty, uses) {
        facts.map_locals.push(name.to_string());
    }
    if ty.starts_with("f32") || ty.starts_with("f64") {
        facts.float_locals.push(name.to_string());
    }
}

/// Walks `let` statements in a (cleaned) body, typing each bound name from
/// its annotation or initialiser.
fn collect_let_bindings(body: &str, uses: &UseMap, facts: &mut FnFacts) {
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("let").map(|p| p + i) {
        i = pos + 3;
        if !is_word_at(body, pos, "let") {
            continue;
        }
        let rest = &body[pos + 3..];
        let Some(stmt_end) = find_top_level(rest, b';') else {
            continue;
        };
        let stmt = &rest[..stmt_end];
        // Pattern: a single identifier (possibly `mut x`); destructuring
        // patterns are skipped — the lints under-approximate by design.
        let (pat, after) = match split_top_level_once(stmt, '=') {
            Some((lhs, rhs)) => (lhs, Some(rhs)),
            None => (stmt, None),
        };
        let (pat, annot) = match split_top_level_once(pat, ':') {
            Some((p, t)) => (p, Some(t)),
            None => (pat, None),
        };
        let name = pat.trim().trim_start_matches("mut ").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        if let Some(ty) = annot {
            classify_binding(name, ty, uses, facts);
        }
        if let Some(init) = after {
            let init = init.trim();
            if type_mentions_map(init, uses) && !facts.map_locals.iter().any(|n| n == name) {
                facts.map_locals.push(name.to_string());
            }
            let is_float_init = init
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
                .next()
                .is_some_and(|first| !first.is_empty() && contains_float_literal(first))
                || init.ends_with("as f32")
                || init.ends_with("as f64");
            if is_float_init && !facts.float_locals.iter().any(|n| n == name) {
                facts.float_locals.push(name.to_string());
            }
        }
    }
}

/// Map/set-typed struct fields declared in this file (so `self.cache.iter()`
/// is traceable one file deep).
pub fn map_fields(model: &FileModel, uses: &UseMap) -> Vec<String> {
    let cleaned = &model.cleaned;
    let mut fields = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = cleaned[i..].find("struct").map(|p| p + i) {
        i = pos + 6;
        if !is_word_at(cleaned, pos, "struct") {
            continue;
        }
        let Some(open) = cleaned[pos..].find(['{', ';']).map(|p| p + pos) else {
            break;
        };
        if cleaned.as_bytes()[open] != b'{' {
            continue; // unit/tuple struct
        }
        let Some(close) = find_top_level(&cleaned[open + 1..], b'}').map(|p| p + open + 1) else {
            break;
        };
        let body = &cleaned[open + 1..close];
        let mut facts = FnFacts::default();
        collect_typed_names(body, uses, &mut facts);
        fields.extend(facts.map_locals);
        i = close;
    }
    fields.sort_unstable();
    fields.dedup();
    fields
}

/// Splits `text` at `sep` occurrences that sit at bracket depth 0.
pub(crate) fn split_top_level(text: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&text[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// Splits at the first depth-0 occurrence of `sep`, skipping `::`, `==`,
/// `=>`, `<=`, `>=` and `!=` when `sep` is `:` or `=`.
pub(crate) fn split_top_level_once(text: &str, sep: char) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' | b'>' => depth -= 1,
            _ if depth == 0 && b as char == sep => {
                let prev = i.checked_sub(1).map(|j| bytes[j]);
                let next = bytes.get(i + 1).copied();
                let doubled = prev == Some(b) || next == Some(b);
                let comparison = sep == '='
                    && (prev == Some(b'!')
                        || prev == Some(b'<')
                        || prev == Some(b'>')
                        || next == Some(b'>'));
                if !doubled && !comparison {
                    return Some((&text[..i], &text[i + 1..]));
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds the first depth-0 occurrence of byte `target`. The target check
/// runs before depth tracking so a closing bracket can itself be the target
/// (e.g. the `}` that ends a struct body).
pub(crate) fn find_top_level(text: &str, target: u8) -> Option<usize> {
    let mut depth = 0i32;
    for (i, &b) in text.as_bytes().iter().enumerate() {
        if b == target && depth == 0 {
            return Some(i);
        }
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileModel;

    #[test]
    fn use_map_resolves_leaves_groups_and_aliases() {
        let uses = UseMap::collect(
            "use std::collections::HashMap;\nuse std::collections::{HashSet, BTreeMap as Tree};\nuse crate::hasher::SignatureMap;",
        );
        assert_eq!(uses.path_of("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(uses.path_of("HashSet"), Some("std::collections::HashSet"));
        assert_eq!(uses.path_of("Tree"), Some("std::collections::BTreeMap"));
        assert_eq!(uses.path_of("SignatureMap"), Some("crate::hasher::SignatureMap"));
        assert_eq!(uses.path_of("BTreeMap"), None);
    }

    #[test]
    fn map_type_detection_sees_aliases_and_paths() {
        let uses = UseMap::collect("use std::collections::HashMap as Cache;");
        assert!(is_map_type_name("Cache", &uses));
        assert!(is_map_type_name("SignatureSet", &uses));
        assert!(!is_map_type_name("Vec", &uses));
        assert!(type_mentions_map("std::collections::HashMap<u64, f32>", &uses));
        assert!(!type_mentions_map("Vec<f32>", &uses));
    }

    #[test]
    fn fn_facts_type_params_and_lets() {
        let src = "fn f(weights: &Matrix, rate: f32, seen: &HashMap<u64, u32>) {\n\
                   let mut acc: f32 = 0.0;\n\
                   let table = HashMap::new();\n\
                   let n = 3usize;\n\
                   acc += rate;\n}";
        let model = FileModel::parse(src);
        let uses = UseMap::collect("use std::collections::HashMap;");
        let facts = fn_facts(&model, &model.fns[0], &uses);
        assert_eq!(facts.map_locals, vec!["seen", "table"]);
        assert_eq!(facts.float_locals, vec!["rate", "acc"]);
        assert!(facts.accumulates_float);
    }

    #[test]
    fn accumulation_requires_float_context() {
        let int_only = "fn f(counts: &mut [u32]) { counts[0] += 1; }";
        let model = FileModel::parse(int_only);
        let facts = fn_facts(&model, &model.fns[0], &UseMap::default());
        assert!(!facts.accumulates_float);

        let float = "fn g(m: &Matrix) -> f32 { let mut s = 0.0; s += m.get(0,0); s }";
        let model = FileModel::parse(float);
        let facts = fn_facts(&model, &model.fns[0], &UseMap::default());
        assert!(facts.accumulates_float);
    }

    #[test]
    fn float_literal_detection() {
        assert!(contains_float_literal("x + 1.0"));
        assert!(contains_float_literal("2.5e-3"));
        assert!(contains_float_literal("1f32"));
        assert!(!contains_float_literal("v.len() + 1"));
        assert!(!contains_float_literal("1.max(2)"));
    }

    #[test]
    fn struct_fields_are_tracked() {
        let src = "use std::collections::HashMap;\npub struct Cache {\n  map: HashMap<u64, u32>,\n  rows: Vec<f32>,\n}\npub struct Plain(u32);";
        let model = FileModel::parse(src);
        let uses = UseMap::collect(src);
        assert_eq!(map_fields(&model, &uses), vec!["map"]);
    }
}
