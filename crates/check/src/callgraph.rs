//! Shared call-graph machinery for the inter-procedural passes.
//!
//! Two analyses walk calls across function boundaries: `conc::lock_order`
//! (which locks are reachable through a call chain) and
//! `hotpath` (which allocation/panic/lock sites are reachable from the
//! declared hot roots). Both need the same three pieces, extracted here so
//! neither duplicates them:
//!
//! * [`find_call_sites`] — the lexical call-site scanner (`ident(`), with
//!   the keyword blacklist, plus the `Type::`-qualifier and `.`-receiver
//!   facts the hot-path resolver uses to avoid merging every `new()` in
//!   the workspace into one node.
//! * [`transitive`] — the memoized transitive-fact walk: every fact
//!   reachable from a function through name-resolved calls, each carrying
//!   the call-chain trace that reaches it. `lock_order` instantiates it
//!   with lock acquisitions as the facts; the trace strings come from the
//!   [`CallNode`] impl so the rendered output is byte-identical to the
//!   pre-extraction behavior.
//! * [`reach`] — a plain breadth-first reachable-set walk with parent
//!   links, for analyses (hotpath) that resolve callees themselves and
//!   need the set rather than per-fact traces.
//!
//! Name resolution stays an over-approximation: duplicate function names
//! merge (see `lock_order`'s contract), which can only add edges. The
//! hot-path analyzer narrows this with the qualifier/receiver facts, but
//! that narrowing lives in `hotpath`, not here.

use std::collections::BTreeMap;

use crate::scan::FileModel;

/// A candidate call site (identifier followed by `(`).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// Byte offset.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
    /// Last path segment before `::callee(`, when the call is written as a
    /// qualified path (`Matrix::zeros(` → `Some("Matrix")`). `None` for
    /// bare calls and method calls.
    pub qualifier: Option<String>,
    /// True when the call is a method call (`recv.callee(`), including
    /// chains split across lines.
    pub is_method: bool,
}

/// Rust keywords and lint-internal method names that can precede `(`
/// without being calls we want in the graph.
pub const CALL_BLACKLIST: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "loop", "move", "unsafe", "let", "else", "in",
    "as", "pub", "use", "mod", "impl", "spawn", "lock", "read", "write", "scope", "assert", "Some",
    "Ok", "Err", "None", "Box", "Vec",
];

/// True for bytes that can appear in a Rust identifier.
pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds candidate call sites (`ident(`), later resolved against the set
/// of known workspace functions when building a call graph.
///
/// Turbofish calls (`collect::<Vec<_>>()`) are *not* matched — the byte
/// after the identifier is `:` — which is fine for graph building (no
/// workspace function is called through a turbofish today) and documented
/// as accepted imprecision in DESIGN.md §12/§13. The hot-path allocation
/// scanner has its own token pass that does handle the turbofish.
pub fn find_call_sites(model: &FileModel, base: usize, body: &str) -> Vec<CallSite> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let word = &body[start..i];
        let mut j = i;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(')
            || word.chars().next().is_some_and(|c| c.is_ascii_digit())
            || CALL_BLACKLIST.contains(&word)
        {
            continue;
        }
        out.push(CallSite {
            callee: word.to_string(),
            offset: base + start,
            line: model.line_of(base + start),
            qualifier: qualifier_before(body, start),
            is_method: receiver_before(bytes, start),
        });
    }
    out
}

/// The path segment immediately before `::` preceding `start`, if any.
fn qualifier_before(body: &str, start: usize) -> Option<String> {
    let bytes = body.as_bytes();
    if start < 2 || bytes[start - 1] != b':' || bytes[start - 2] != b':' {
        return None;
    }
    let mut k = start - 2;
    // Skip a generic-argument segment and its own `::` (`Vec::<f32>::new`).
    if k > 0 && bytes[k - 1] == b'>' {
        let mut depth = 0i32;
        while k > 0 {
            k -= 1;
            match bytes[k] {
                b'>' => depth += 1,
                b'<' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if k >= 2 && bytes[k - 1] == b':' && bytes[k - 2] == b':' {
            k -= 2;
        }
    }
    let end = k;
    while k > 0 && is_ident_byte(bytes[k - 1]) {
        k -= 1;
    }
    if k == end {
        return None;
    }
    Some(body[k..end].to_string())
}

/// True when the previous non-whitespace byte before `start` is `.` — a
/// method call, even when the chain is split across lines.
fn receiver_before(bytes: &[u8], start: usize) -> bool {
    let mut k = start;
    while k > 0 && (bytes[k - 1] as char).is_whitespace() {
        k -= 1;
    }
    k > 0 && bytes[k - 1] == b'.'
}

// ---------------------------------------------------------------------------
// The memoized transitive-fact walk
// ---------------------------------------------------------------------------

/// Facts reachable from one function: `(fact key, call-chain trace)`.
pub type FactTraces = Vec<(String, Vec<String>)>;

/// A function node the transitive walk can traverse.
pub trait CallNode {
    /// Resolution name (call sites bind to this by string equality).
    fn name(&self) -> &str;
    /// Candidate call sites in body order.
    fn calls(&self) -> &[CallSite];
    /// Facts introduced directly in this node, each with its one-line
    /// anchor trace (`file:line: fn `f` acquires ...`).
    fn direct_facts(&self) -> Vec<(String, String)>;
    /// Trace line for following `call` out of this node.
    fn call_trace(&self, call: &CallSite) -> String;
}

/// Builds the name → indices resolution index (duplicate names across
/// impls merge conservatively).
pub fn index_by_name<N: CallNode>(fns: &[N]) -> BTreeMap<&str, Vec<usize>> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name()).or_default().push(i);
    }
    by_name
}

/// Every fact reachable from `fns[idx]` — its own direct facts plus those
/// of every (transitively) called node — with the call-chain trace that
/// reaches each. First trace per fact key wins; self-calls are skipped;
/// recursion is cut by the `visiting` guard (callers pass a fresh vec per
/// top-level query, sharing `memo` across queries).
pub fn transitive<N: CallNode>(
    idx: usize,
    fns: &[N],
    by_name: &BTreeMap<&str, Vec<usize>>,
    memo: &mut Vec<Option<FactTraces>>,
    visiting: &mut Vec<usize>,
) -> FactTraces {
    if let Some(done) = &memo[idx] {
        return done.clone();
    }
    if visiting.contains(&idx) {
        return Vec::new(); // recursion guard
    }
    visiting.push(idx);
    let f = &fns[idx];
    let mut out: FactTraces = Vec::new();
    for (fact, anchor) in f.direct_facts() {
        if !out.iter().any(|(l, _)| l == &fact) {
            out.push((fact, vec![anchor]));
        }
    }
    for call in f.calls() {
        let Some(callees) = by_name.get(call.callee.as_str()) else {
            continue;
        };
        for &callee in callees {
            if callee == idx {
                continue;
            }
            for (fact, trace) in transitive(callee, fns, by_name, memo, visiting) {
                if !out.iter().any(|(l, _)| l == &fact) {
                    let mut full = vec![fns[idx].call_trace(call)];
                    full.extend(trace);
                    out.push((fact, full));
                }
            }
        }
    }
    visiting.pop();
    memo[idx] = Some(out.clone());
    out
}

// ---------------------------------------------------------------------------
// Plain reachability
// ---------------------------------------------------------------------------

/// One visited node: `(index, edge that discovered it)`. Roots carry
/// `None`; everything else carries `(caller index, call line)`.
pub type Visit = (usize, Option<(usize, usize)>);

/// Breadth-first reachable set over `n` nodes from `roots`, expanding
/// edges with `callees(idx) -> [(callee idx, call line)]`. Returns visits
/// in discovery order (roots first); each node appears once.
pub fn reach<F>(n: usize, roots: &[usize], mut callees: F) -> Vec<Visit>
where
    F: FnMut(usize) -> Vec<(usize, usize)>,
{
    let mut seen = vec![false; n];
    let mut order: Vec<Visit> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if r < n && !seen[r] {
            seen[r] = true;
            order.push((r, None));
            queue.push_back(r);
        }
    }
    while let Some(idx) = queue.pop_front() {
        for (callee, line) in callees(idx) {
            if callee < n && !seen[callee] {
                seen[callee] = true;
                order.push((callee, Some((idx, line))));
                queue.push_back(callee);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileModel;

    fn sites_of(src: &str) -> Vec<CallSite> {
        let model = FileModel::parse(src);
        find_call_sites(&model, 0, &model.cleaned)
    }

    #[test]
    fn qualified_and_method_calls_carry_their_facts() {
        let sites = sites_of("fn f() { let m = Matrix::zeros(2, 2); helper(m); x.update(1); }");
        let zeros = sites.iter().find(|s| s.callee == "zeros").expect("zeros found");
        assert_eq!(zeros.qualifier.as_deref(), Some("Matrix"));
        assert!(!zeros.is_method);
        let helper = sites.iter().find(|s| s.callee == "helper").expect("helper found");
        assert_eq!(helper.qualifier, None);
        assert!(!helper.is_method);
        let update = sites.iter().find(|s| s.callee == "update").expect("update found");
        assert!(update.is_method);
        assert_eq!(update.qualifier, None);
    }

    #[test]
    fn multiline_chains_and_generic_paths_resolve() {
        let sites =
            sites_of("fn f() { let v = builder\n        .finish();\n    Vec::<f32>::grow(v); }");
        let finish = sites.iter().find(|s| s.callee == "finish").expect("finish found");
        assert!(finish.is_method, "dot on the previous line still marks a method call");
        let grow = sites.iter().find(|s| s.callee == "grow").expect("grow found");
        assert_eq!(grow.qualifier.as_deref(), Some("Vec"), "generic segment is skipped");
    }

    #[test]
    fn turbofish_is_not_a_call_site() {
        // `collect::<...>()` stays invisible here (documented imprecision);
        // the hot-path alloc scanner has its own pass for it.
        let sites = sites_of("fn f() { let v = it.collect::<Vec<_>>(); }");
        assert!(sites.iter().all(|s| s.callee != "collect"), "{sites:?}");
    }

    struct Node {
        name: &'static str,
        calls: Vec<CallSite>,
        facts: Vec<&'static str>,
    }

    impl CallNode for Node {
        fn name(&self) -> &str {
            self.name
        }
        fn calls(&self) -> &[CallSite] {
            &self.calls
        }
        fn direct_facts(&self) -> Vec<(String, String)> {
            self.facts
                .iter()
                .map(|f| ((*f).to_string(), format!("{} has {f}", self.name)))
                .collect()
        }
        fn call_trace(&self, call: &CallSite) -> String {
            format!("{} calls {}", self.name, call.callee)
        }
    }

    fn call(callee: &str) -> CallSite {
        CallSite {
            callee: callee.to_string(),
            offset: 0,
            line: 1,
            qualifier: None,
            is_method: false,
        }
    }

    #[test]
    fn transitive_facts_carry_the_call_chain_and_memoize() {
        let fns = vec![
            Node { name: "a", calls: vec![call("b")], facts: vec![] },
            Node { name: "b", calls: vec![call("c")], facts: vec!["fb"] },
            Node { name: "c", calls: vec![call("a")], facts: vec!["fc"] }, // cycle back
        ];
        let by_name = index_by_name(&fns);
        let mut memo = vec![None; fns.len()];
        let facts = transitive(0, &fns, &by_name, &mut memo, &mut Vec::new());
        let fb = facts.iter().find(|(k, _)| k == "fb").expect("fb reachable");
        assert_eq!(fb.1, vec!["a calls b".to_string(), "b has fb".to_string()]);
        let fc = facts.iter().find(|(k, _)| k == "fc").expect("fc reachable through two hops");
        assert_eq!(fc.1.len(), 3, "{:?}", fc.1);
        assert!(memo.iter().all(Option::is_some), "every visited node memoized");
    }

    #[test]
    fn reach_visits_each_node_once_with_parent_links() {
        // 0 -> 1 -> 2, 0 -> 2 (second discovery ignored), 3 unreachable.
        let edges = [vec![(1usize, 10usize), (2, 11)], vec![(2, 20)], vec![], vec![]];
        let visits = reach(4, &[0], |i| edges[i].clone());
        assert_eq!(visits.len(), 3);
        assert_eq!(visits[0], (0, None));
        assert_eq!(visits[1], (1, Some((0, 10))));
        assert_eq!(visits[2], (2, Some((0, 11))), "BFS discovers 2 from the root first");
    }
}
