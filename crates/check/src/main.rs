//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p adr-check            # check the current workspace
//! cargo run -p adr-check -- --root some/workspace
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or stale allowlist entries),
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
            }
            "--help" | "-h" => {
                println!("usage: adr-check [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match adr_check::run_checks(&root) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("error[{}]: {}", finding.lint.name(), finding.message);
        println!("  --> {}:{}", finding.file, finding.line);
        println!("   | {}", finding.line_text.trim_end());
    }
    for stale in &report.unused_allow {
        println!("warning[adr::stale_allow]: {stale}");
    }
    if report.is_clean() {
        println!("adr-check: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "adr-check: {} finding(s), {} stale allowlist entr(ies) across {} files",
            report.findings.len(),
            report.unused_allow.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
