//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p adr-check                      # lint the current workspace
//! cargo run -p adr-check -- --root some/workspace
//! cargo run -p adr-check -- --format sarif > adr-check.sarif
//! cargo run -p adr-check -- conc              # concurrency lints + lock graph
//! cargo run -p adr-check -- hotpath           # hot-path resource lints + dump
//! cargo run -p adr-check -- shapes            # verify the built-in model specs
//! cargo run -p adr-check -- shapes --spec f.spec   # verify a text spec file
//! ```
//!
//! Exit codes: `0` clean, `1` findings, stale or uncategorized allowlist
//! entries (hard failures — audits that match nothing must be pruned, and
//! every audit must name its category), or shape violations, `2` usage or
//! I/O error.
//!
//! With `--format sarif`, findings (including allowlist staleness) are
//! printed to stdout as a SARIF 2.1.0 document — validated before emission
//! — for CI code-scanning upload; the exit code is unchanged.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("shapes") {
        args.next();
        return run_shapes(args);
    }
    let subcommand = match args.peek().map(String::as_str) {
        Some("conc") => {
            args.next();
            Some("conc")
        }
        Some("hotpath") => {
            args.next();
            Some("hotpath")
        }
        _ => None,
    };

    let mut root = PathBuf::from(".");
    let mut sarif = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
            }
            "--format" => {
                match args.next().as_deref() {
                    Some("sarif") => sarif = true,
                    Some("human") => sarif = false,
                    Some(other) => {
                        eprintln!("error: unknown format `{other}` (human|sarif)");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("error: --format needs a value (human|sarif)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: adr-check [conc|hotpath] [--root <workspace-root>] \
                     [--format human|sarif]"
                );
                println!("       adr-check shapes [--spec <spec-file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let run = match subcommand {
        Some("conc") => adr_check::run_conc,
        Some("hotpath") => adr_check::run_hotpath,
        _ => adr_check::run_checks,
    };
    let report = match run(&root) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    if sarif {
        let doc = adr_check::sarif::to_sarif(&report);
        if let Err(message) = adr_check::sarif::validate_sarif(&doc) {
            eprintln!("error: emitted SARIF failed validation: {message}");
            return ExitCode::from(2);
        }
        print!("{}", doc.render_pretty());
        return if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if subcommand == Some("conc") {
        println!("lock-order graph ({} edge(s)):", report.lock_graph.len());
        for edge in &report.lock_graph {
            println!("  {edge}");
        }
    }
    if subcommand == Some("hotpath") {
        for line in &report.hotpath_dump {
            println!("{line}");
        }
    }
    for finding in &report.findings {
        println!("error[{}]: {}", finding.lint.name(), finding.message);
        println!("  --> {}:{}", finding.file, finding.line);
        println!("   | {}", finding.line_text.trim_end());
    }
    for stale in &report.unused_allow {
        println!("error[adr::stale_allow]: {stale} — prune the entry");
    }
    for bad in &report.bad_category {
        println!("error[adr::allow_category]: {bad}");
    }
    if report.is_clean() {
        println!("adr-check: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "adr-check: {} finding(s), {} stale and {} uncategorized allowlist entr(ies) \
             across {} files",
            report.findings.len(),
            report.unused_allow.len(),
            report.bad_category.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// `adr-check shapes [--spec <file>]`: verifies either the built-in model
/// specs from `adr-models` or one parsed text spec.
fn run_shapes(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut spec_file: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --spec needs a path");
                    return ExitCode::from(2);
                };
                spec_file = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!("usage: adr-check shapes [--spec <spec-file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let specs = match spec_file {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match adr_check::shapegraph::parse_spec(&text) {
                Ok(spec) => vec![spec],
                Err(message) => {
                    eprintln!("error: {}: {message}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => adr_models::all_net_specs(),
    };

    let mut failures = 0usize;
    for spec in &specs {
        let report = adr_check::shapegraph::verify(spec);
        println!("shape-check {}", report.net);
        for line in &report.trace {
            println!("  {line}");
        }
        if let Some(err) = &report.error {
            println!("error[adr::shape_graph]: {}/{}: {}", report.net, err.layer, err.message);
            failures += 1;
        }
    }
    if failures == 0 {
        println!("adr-check shapes: {} spec(s) verified", specs.len());
        ExitCode::SUCCESS
    } else {
        println!("adr-check shapes: {failures} of {} spec(s) failed", specs.len());
        ExitCode::FAILURE
    }
}
