//! `adr-check` — the workspace static-analysis pass.
//!
//! Adaptive Deep Reuse's correctness rests on invariants the type system
//! cannot see: every im2col GEMM must agree on `(N·H_out·W_out) × (K·K·C)`
//! shapes across forward and backward (Eqs. 9/17), every multiply–add must
//! be visible to the FLOP meter for the Eq. 5/6/12/20 cost model to stay
//! trustworthy, and hot paths must not panic mid-epoch. This crate walks
//! the workspace source and enforces those invariants mechanically:
//!
//! * [`lints::no_panic`] — `unwrap()/expect()/panic!`-family constructs are
//!   denied in `tensor`, `nn`, `reuse`, and `clustering` library code
//!   outside `#[cfg(test)]`, with an explicit allowlist (`adr-check.allow`)
//!   for audited sites.
//! * [`lints::flop_coverage`] — every `matmul*` call site in `nn` and
//!   `reuse` must share its function with a FLOP-meter update.
//! * [`lints::shape_docs`] — public `tensor`/`nn` functions taking matrix
//!   dimensions must carry a `# Shape` doc section.
//! * [`lints::determinism`] — OS-entropy sources (`thread_rng`,
//!   `from_entropy`, `SystemTime`) are banned in numeric library code, and
//!   hash-collection iteration is banned inside float-accumulating
//!   functions; the seeded `AdrRng` is the only sanctioned entropy source.
//! * [`lints::float_eq`] — exact `==`/`!=` between float expressions is
//!   denied outside `#[cfg(test)]`.
//! * [`lints::grad_coverage`] — every `Layer` impl in `nn` with a
//!   `forward` must be registered in `tests/gradient_checks.rs`.
//! * [`lints::durable_io`] — bare `File::create`/`fs::write` is denied in
//!   the checkpoint-adjacent crates (`nn`, `core`); every persistent
//!   artifact must go through `durable::write_atomic` (temp + fsync +
//!   atomic rename) so a crash can never tear it.
//! * [`conc::unsafe_contract`] — every `unsafe` site needs its `// SAFETY:`
//!   comment (or `# Safety` doc section); raw-pointer/`get_unchecked` code
//!   is confined to the approved kernel modules.
//! * [`conc::atomic_ordering`] — `Relaxed` atomic reads in
//!   float-accumulating functions are denied; every other explicit
//!   `Ordering` choice needs a categorized `ordering-*` allowlist audit.
//! * [`conc::lock_order`] — the inter-procedural lock-acquisition graph
//!   must be acyclic; cycles are reported as potential deadlocks with the
//!   full acquisition trace.
//! * [`conc::scoped_capture`] — mutable bindings captured across a spawn
//!   boundary must derive from a provably disjoint split
//!   (`split_at_mut`/`chunks_mut`).
//! * [`conc::par_reduction`] — float accumulation into shared state inside
//!   a spawn closure is denied (no fixed reduction order); fold per-thread
//!   partials sequentially after the join.
//!
//! The v1 lints are lexical pairings on the comment/literal-blanked token
//! stream; the v2 lints add binding-level dataflow facts ([`parser`]) on
//! top of the same lexer; the v3 lints add concurrency facts ([`conc`])
//! including a cross-file lock graph. There is still no `syn` dependency —
//! the workspace builds fully offline. See `DESIGN.md` ("Invariants &
//! static checks" and §12) for the contract, including each lint's
//! accepted imprecision.
//!
//! Besides source lints, the crate hosts the static model-graph verifier
//! ([`shapegraph`], exposed as `adr-check shapes`): it propagates
//! `(N, C, H, W)` through every `NetSpec` in `crates/models` and rejects
//! incompatible layer chains, invalid im2col factorizations (Eq. 5 needs
//! `L | K`), and reuse configs whose `H` exceeds the 64-bit signature
//! budget.

// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod allowlist;
pub mod callgraph;
pub mod conc;
pub mod hotpath;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod sarif;
pub mod scan;
pub mod shapegraph;

use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use lints::{Finding, Lint};
use scan::FileModel;

/// Crates whose library code must not panic.
pub const NO_PANIC_CRATES: &[&str] = &["tensor", "nn", "reuse", "clustering"];
/// Crates whose GEMM call sites must be FLOP-metered.
pub const FLOP_CRATES: &[&str] = &["nn", "reuse"];
/// Crates whose public dimension-taking functions need `# Shape` docs.
pub const SHAPE_CRATES: &[&str] = &["tensor", "nn"];
/// Crates whose library code must be run-to-run deterministic.
pub const DETERMINISM_CRATES: &[&str] = &["tensor", "nn", "reuse", "clustering", "core"];
/// Crates where exact float `==`/`!=` is denied outside tests.
pub const FLOAT_EQ_CRATES: &[&str] = &["tensor", "nn", "reuse", "clustering", "core"];
/// Crates whose `Layer` impls must appear in the gradient-check registry.
pub const GRAD_COVERAGE_CRATES: &[&str] = &["nn"];
/// Crates whose file writes must go through the atomic durable helper.
/// `serve` is here for its checkpoint-adjacent loading code: reads are
/// never flagged, but any write it grows must be atomic from day one.
/// `obs` exports metrics and BENCH documents that CI parses right after
/// the writing process exits — a torn write would fail the pipeline.
pub const DURABLE_IO_CRATES: &[&str] = &["nn", "core", "serve", "obs"];
/// Crates subject to the concurrency/unsafe lints — everywhere threads,
/// locks, atomics, or `unsafe` could plausibly appear. The SIMD-kernel and
/// sharded-training work (ROADMAP items 1–2) lands in `tensor`, `reuse`,
/// and `core`; the rest are included so stray concurrency cannot hide.
pub const CONC_CRATES: &[&str] = &["tensor", "nn", "reuse", "clustering", "core", "serve", "obs"];

/// Allowlist categories accepted by `adr::atomic_ordering` suppressions.
const ORDERING_CATEGORIES: &[&str] = &["ordering-counter", "ordering-handoff"];

/// Everything one run produced.
pub struct Report {
    /// Violations that survived the allowlist, ordered by file then line.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale audits).
    pub unused_allow: Vec<String>,
    /// Allowlist entries with a missing or unknown audit category.
    pub bad_category: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Rendered lock-order graph edges (`adr-check conc` output).
    pub lock_graph: Vec<String>,
    /// Rendered hot-path reachable-set/site dump (`adr-check hotpath`
    /// output).
    pub hotpath_dump: Vec<String>,
}

impl Report {
    /// True when the workspace is clean (no findings, no stale or
    /// malformed allows).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_allow.is_empty() && self.bad_category.is_empty()
    }
}

/// Runs all lints over the workspace rooted at `root`.
///
/// `root` must contain a `crates/` directory laid out like this workspace.
/// The allowlist is read from `<root>/adr-check.allow` when present.
///
/// # Errors
/// Returns a message when the root is not a workspace or a source file or
/// the allowlist cannot be read/parsed.
pub fn run_checks(root: &Path) -> Result<Report, String> {
    run_impl(root, Mode::Full)
}

/// Runs only the concurrency lints (`adr-check conc`): the five
/// `conc::*` passes plus the rendered lock-order graph, for local
/// iteration on threaded code without the sequential lints' noise.
///
/// Allowlist staleness is *not* reported here — a conc-only run legitimately
/// leaves every sequential-lint entry unmatched; the full [`run_checks`]
/// pass is the authority on stale entries.
///
/// # Errors
/// Returns a message when the root is not a workspace or a source file or
/// the allowlist cannot be read/parsed.
pub fn run_conc(root: &Path) -> Result<Report, String> {
    let mut report = run_impl(root, Mode::ConcOnly)?;
    report.unused_allow.clear();
    report.bad_category.clear();
    Ok(report)
}

/// Runs only the hot-path resource lints (`adr-check hotpath`): the
/// `hotpath::*` passes plus the rendered reachable-set/site dump, for
/// iterating on the allocation budget without the other lints' noise.
///
/// Like [`run_conc`], allowlist staleness is not reported here — the full
/// [`run_checks`] pass is the authority on stale entries.
///
/// # Errors
/// Returns a message when the root is not a workspace or a source file,
/// the allowlist, or the budget manifest cannot be read/parsed.
pub fn run_hotpath(root: &Path) -> Result<Report, String> {
    let mut report = run_impl(root, Mode::HotpathOnly)?;
    report.unused_allow.clear();
    report.bad_category.clear();
    Ok(report)
}

/// Which lint families one run executes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Everything (`adr-check`).
    Full,
    /// Concurrency lints + lock graph only (`adr-check conc`).
    ConcOnly,
    /// Hot-path resource lints + dump only (`adr-check hotpath`).
    HotpathOnly,
}

fn run_impl(root: &Path, mode: Mode) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{} has no crates/ directory — not a workspace root", root.display()));
    }
    let allow_path = root.join("adr-check.allow");
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::empty()
    };

    // Gradient-check registry: type names listed via `grad-check:` comments
    // in the integration-test suite. Read from the raw text (the cleaned
    // text blanks comments). A missing file yields an empty registry, so
    // every `Layer` impl is flagged — which is what fixture workspaces want.
    let registry_path = root.join("tests").join("gradient_checks.rs");
    let registry = if registry_path.is_file() {
        let text = std::fs::read_to_string(&registry_path)
            .map_err(|e| format!("reading {}: {e}", registry_path.display()))?;
        lints::grad_check_registry(&text)
    } else {
        Vec::new()
    };

    // The hot-path budget manifest is optional (fixture workspaces omit
    // it); when present, the hotpath lints enforce exact per-phase counts.
    let budget_path = root.join("adr-check.budget");
    let budget = if budget_path.is_file() && mode != Mode::ConcOnly {
        let text = std::fs::read_to_string(&budget_path)
            .map_err(|e| format!("reading {}: {e}", budget_path.display()))?;
        Some(hotpath::Budget::parse(&text)?)
    } else {
        None
    };

    let mut findings = Vec::new();
    let mut layer_impls = Vec::new();
    let mut all_fns: Vec<conc::FnConc> = Vec::new();
    let mut hot_fns: Vec<hotpath::HotFn> = Vec::new();
    let mut files_scanned = 0usize;
    let mut lint_crates: Vec<(&str, Vec<Lint>)> = Vec::new();
    let all_crates = NO_PANIC_CRATES
        .iter()
        .chain(FLOP_CRATES)
        .chain(SHAPE_CRATES)
        .chain(DETERMINISM_CRATES)
        .chain(FLOAT_EQ_CRATES)
        .chain(GRAD_COVERAGE_CRATES)
        .chain(DURABLE_IO_CRATES)
        .chain(CONC_CRATES);
    for name in all_crates {
        if !lint_crates.iter().any(|(n, _)| n == name) {
            let mut lints = Vec::new();
            if NO_PANIC_CRATES.contains(name) {
                lints.push(Lint::NoPanic);
            }
            if FLOP_CRATES.contains(name) {
                lints.push(Lint::FlopCoverage);
            }
            if SHAPE_CRATES.contains(name) {
                lints.push(Lint::ShapeDocs);
            }
            if DETERMINISM_CRATES.contains(name) {
                lints.push(Lint::Determinism);
            }
            if FLOAT_EQ_CRATES.contains(name) {
                lints.push(Lint::FloatEq);
            }
            if DURABLE_IO_CRATES.contains(name) {
                lints.push(Lint::DurableIo);
            }
            lint_crates.push((name, lints));
        }
    }

    for (crate_name, lints) in &lint_crates {
        let src = crates_dir.join(crate_name).join("src");
        if !src.is_dir() {
            continue; // fixture workspaces may model only some crates
        }
        let collect_impls = GRAD_COVERAGE_CRATES.contains(crate_name) && mode == Mode::Full;
        let conc_crate = CONC_CRATES.contains(crate_name);
        for path in rust_files(&src)? {
            let rel = rel_path(root, &path);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let model = FileModel::parse(&text);
            files_scanned += 1;
            let mut file_findings = Vec::new();
            if mode == Mode::Full {
                for lint in lints {
                    match lint {
                        Lint::NoPanic => file_findings.extend(lints::no_panic(&rel, &model)),
                        Lint::FlopCoverage => {
                            file_findings.extend(lints::flop_coverage(&rel, &model))
                        }
                        Lint::ShapeDocs => file_findings.extend(lints::shape_docs(&rel, &model)),
                        Lint::Determinism => file_findings.extend(lints::determinism(&rel, &model)),
                        Lint::FloatEq => file_findings.extend(lints::float_eq(&rel, &model)),
                        Lint::DurableIo => file_findings.extend(lints::durable_io(&rel, &model)),
                        _ => {}
                    }
                }
            }
            if conc_crate && mode != Mode::HotpathOnly {
                let uses = parser::UseMap::collect(&model.cleaned);
                let facts = conc::collect(&rel, &model, &uses);
                file_findings.extend(conc::unsafe_contract(&rel, &model, &facts));
                file_findings.extend(conc::scoped_capture(&rel, &model, &facts));
                file_findings.extend(conc::par_reduction(&rel, &model, &facts));
                // `atomic_ordering` suppressions must carry an `ordering-*`
                // category — a generic audit comment is not enough.
                findings.extend(conc::atomic_ordering(&rel, &model, &facts).into_iter().filter(
                    |f| !allow.allows_categorized(&f.file, &f.line_text, ORDERING_CATEGORIES),
                ));
                all_fns.extend(facts.fns);
            }
            if conc_crate && mode != Mode::ConcOnly {
                hot_fns.extend(hotpath::collect(&rel, &model));
            }
            if collect_impls {
                layer_impls.extend(lints::layer_impls(&rel, &model));
            }
            findings
                .extend(file_findings.into_iter().filter(|f| !allow.allows(&f.file, &f.line_text)));
        }
    }

    if mode == Mode::Full {
        findings.extend(
            lints::grad_coverage(&layer_impls, &registry)
                .into_iter()
                .filter(|f| !allow.allows(&f.file, &f.line_text)),
        );
    }

    // The lock-order graph is inter-procedural: it needs every scanned
    // function before edges (and cycles) can be derived.
    let lock_graph = if mode == Mode::HotpathOnly {
        Vec::new()
    } else {
        let (lock_findings, lock_graph) = conc::lock_order(&all_fns);
        findings.extend(lock_findings.into_iter().filter(|f| !allow.allows(&f.file, &f.line_text)));
        lock_graph
    };

    // So is the hot-path analysis: reachability from the declared roots
    // crosses crate boundaries (serve → nn → tensor/reuse). Allowlist
    // filtering happens inside (alloc audits are category-gated, lock
    // audits are plain, panic sites are budget-counted).
    let hotpath_dump = if mode == Mode::ConcOnly {
        Vec::new()
    } else {
        let hot = hotpath::check(&hot_fns, budget.as_ref(), &allow);
        findings.extend(hot.findings);
        hot.dump
    };

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let unused_allow = allow
        .unused()
        .into_iter()
        .map(|e| format!("adr-check.allow:{}: `{}: {}` matched nothing", e.line, e.path, e.pattern))
        .collect();
    let bad_category = allow.category_errors();
    Ok(Report { findings, unused_allow, bad_category, files_scanned, lock_graph, hotpath_dump })
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(|e| format!("reading {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", d.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with forward slashes (stable across platforms).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
