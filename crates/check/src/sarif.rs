//! SARIF 2.1.0 rendering of a [`Report`] (`adr-check --format sarif`).
//!
//! CI uploads the document so findings annotate PR diffs inline. The JSON
//! is built with `adr_obs::Json` — the same dependency-free,
//! byte-deterministic value type the BENCH telemetry uses — and
//! [`validate_sarif`] re-parses and structurally checks every document the
//! tool emits, so a malformed upload fails in `adr-check` itself rather
//! than in the forge's ingestion step.
//!
//! Only the subset of SARIF that code-scanning ingestion requires is
//! emitted: `version`, one `run` with `tool.driver` (name, version, rules)
//! and `results` carrying `ruleId`, `level`, `message.text`, and one
//! physical location each. Stale-allowlist entries and category errors are
//! reported as results too (rule ids `adr::stale_allow` /
//! `adr::allow_category`) anchored at their `adr-check.allow` line, so a
//! rotting allowlist is as visible on the PR as a source finding.

use adr_obs::Json;

use crate::lints::Lint;
use crate::Report;

/// Synthetic rule id for stale allowlist entries.
pub const STALE_ALLOW_RULE: &str = "adr::stale_allow";
/// Synthetic rule id for missing/unknown allowlist categories.
pub const ALLOW_CATEGORY_RULE: &str = "adr::allow_category";

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

/// Renders `report` as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> Json {
    let mut rules: Vec<Json> = Lint::ALL
        .iter()
        .map(|lint| {
            obj(vec![
                ("id", s(lint.name())),
                ("shortDescription", obj(vec![("text", s(lint.description()))])),
            ])
        })
        .collect();
    rules.push(obj(vec![
        ("id", s(STALE_ALLOW_RULE)),
        (
            "shortDescription",
            obj(vec![("text", s("adr-check.allow entry no longer matches any finding"))]),
        ),
    ]));
    rules.push(obj(vec![
        ("id", s(ALLOW_CATEGORY_RULE)),
        (
            "shortDescription",
            obj(vec![("text", s("adr-check.allow entry has a missing or unknown audit category"))]),
        ),
    ]));

    let mut results: Vec<Json> = report
        .findings
        .iter()
        .map(|f| result(f.lint.name(), "error", &f.message, &f.file, f.line))
        .collect();
    for diag in &report.unused_allow {
        let line = allow_line_of(diag);
        results.push(result(STALE_ALLOW_RULE, "error", diag, "adr-check.allow", line));
    }
    for diag in &report.bad_category {
        let line = allow_line_of(diag);
        results.push(result(ALLOW_CATEGORY_RULE, "error", diag, "adr-check.allow", line));
    }

    obj(vec![
        ("version", s("2.1.0")),
        (
            "$schema",
            s("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        ),
        (
            "runs",
            Json::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("adr-check")),
                            ("version", s(env!("CARGO_PKG_VERSION"))),
                            ("informationUri", s("DESIGN.md")),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

/// One SARIF result.
fn result(rule_id: &str, level: &str, message: &str, file: &str, line: usize) -> Json {
    obj(vec![
        ("ruleId", s(rule_id)),
        ("level", s(level)),
        ("message", obj(vec![("text", s(message))])),
        (
            "locations",
            Json::Arr(vec![obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", s(file))])),
                    ("region", obj(vec![("startLine", Json::Uint(line.max(1) as u64))])),
                ]),
            )])]),
        ),
    ])
}

/// Recovers the `adr-check.allow` line number from a staleness diagnostic
/// of the form `adr-check.allow:<line>: ...`; `1` when unparseable.
fn allow_line_of(diag: &str) -> usize {
    diag.strip_prefix("adr-check.allow:")
        .and_then(|rest| rest.split(':').next())
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(1)
}

/// Structurally validates a SARIF document this tool emitted.
///
/// Checks the subset code-scanning ingestion depends on: version string,
/// exactly one run, a named driver whose rules all have ids, and every
/// result carrying a known `ruleId`, a `level`, message text, and one
/// physical location with a `uri` and a positive `startLine`.
///
/// # Errors
/// Returns a description of the first structural violation found.
pub fn validate_sarif(doc: &Json) -> Result<(), String> {
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".to_string());
    }
    let runs = doc.get("runs").and_then(Json::as_arr).ok_or("runs must be an array")?;
    if runs.len() != 1 {
        return Err(format!("expected exactly one run, found {}", runs.len()));
    }
    let run = &runs[0];
    let driver =
        run.get("tool").and_then(|t| t.get("driver")).ok_or("run.tool.driver is missing")?;
    if driver.get("name").and_then(Json::as_str).is_none() {
        return Err("tool.driver.name is missing".to_string());
    }
    let rules = driver.get("rules").and_then(Json::as_arr).ok_or("tool.driver.rules is missing")?;
    let mut rule_ids = Vec::new();
    for rule in rules {
        let id = rule.get("id").and_then(Json::as_str).ok_or("a rule is missing its id")?;
        rule_ids.push(id);
    }
    let results = run.get("results").and_then(Json::as_arr).ok_or("run.results is missing")?;
    for (i, res) in results.iter().enumerate() {
        let rule_id = res
            .get("ruleId")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}].ruleId is missing"))?;
        if !rule_ids.contains(&rule_id) {
            return Err(format!("results[{i}].ruleId `{rule_id}` is not a declared rule"));
        }
        if res.get("level").and_then(Json::as_str).is_none() {
            return Err(format!("results[{i}].level is missing"));
        }
        if res
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("results[{i}].message.text is missing or empty"));
        }
        let locations = res
            .get("locations")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("results[{i}].locations is missing"))?;
        if locations.len() != 1 {
            return Err(format!("results[{i}] must carry exactly one location"));
        }
        let phys = locations[0]
            .get("physicalLocation")
            .ok_or_else(|| format!("results[{i}].locations[0].physicalLocation is missing"))?;
        if phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("results[{i}] artifactLocation.uri is missing or empty"));
        }
        let start = phys.get("region").and_then(|r| r.get("startLine")).and_then(Json::as_u64);
        if start.is_none_or(|n| n == 0) {
            return Err(format!("results[{i}] region.startLine must be a positive integer"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;

    fn sample_report() -> Report {
        Report {
            findings: vec![Finding {
                lint: Lint::AtomicOrdering,
                file: "crates/core/src/lib.rs".to_string(),
                line: 42,
                message: "atomic `load` with Ordering::Relaxed ...".to_string(),
                line_text: "epoch.load(Ordering::Relaxed)".to_string(),
            }],
            unused_allow: vec![
                "adr-check.allow:7: `crates/nn/src/conv.rs: gone(` matched nothing".to_string()
            ],
            bad_category: vec!["adr-check.allow:9: unknown audit category `vibes`".to_string()],
            files_scanned: 1,
            lock_graph: Vec::new(),
            hotpath_dump: Vec::new(),
        }
    }

    #[test]
    fn emitted_sarif_validates_and_round_trips() {
        let doc = to_sarif(&sample_report());
        validate_sarif(&doc).expect("emitted SARIF is structurally valid");
        let text = doc.render_pretty();
        let parsed = Json::parse(&text).expect("emitted SARIF re-parses");
        validate_sarif(&parsed).expect("parsed SARIF is structurally valid");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn allowlist_diagnostics_become_results_with_lines() {
        let doc = to_sarif(&sample_report());
        let results =
            doc.get("runs").unwrap().as_arr().unwrap()[0].get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        let stale = &results[1];
        assert_eq!(stale.get("ruleId").unwrap().as_str(), Some(STALE_ALLOW_RULE));
        let line = stale.get("locations").unwrap().as_arr().unwrap()[0]
            .get("physicalLocation")
            .unwrap()
            .get("region")
            .unwrap()
            .get("startLine")
            .unwrap()
            .as_u64();
        assert_eq!(line, Some(7));
        assert_eq!(results[2].get("ruleId").unwrap().as_str(), Some(ALLOW_CATEGORY_RULE));
    }

    #[test]
    fn validation_rejects_undeclared_rules() {
        let mut report = sample_report();
        report.findings[0].line = 0; // also exercises the line floor
        let mut doc = to_sarif(&report);
        validate_sarif(&doc).expect("line floor keeps startLine positive");
        // Corrupt only the result's ruleId (the rule declarations stay
        // intact) and expect rejection.
        let Json::Obj(top) = &mut doc else { panic!("document is an object") };
        let Json::Arr(runs) = &mut top.iter_mut().find(|(k, _)| k == "runs").unwrap().1 else {
            panic!("runs is an array")
        };
        let Json::Obj(run) = &mut runs[0] else { panic!("run is an object") };
        let Json::Arr(results) = &mut run.iter_mut().find(|(k, _)| k == "results").unwrap().1
        else {
            panic!("results is an array")
        };
        let Json::Obj(res) = &mut results[0] else { panic!("result is an object") };
        res.iter_mut().find(|(k, _)| k == "ruleId").unwrap().1 = Json::Str("adr::mystery".into());
        let err = validate_sarif(&doc).expect_err("undeclared rule must be rejected");
        assert!(err.contains("adr::mystery"), "{err}");
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let report = Report {
            findings: Vec::new(),
            unused_allow: Vec::new(),
            bad_category: Vec::new(),
            files_scanned: 0,
            lock_graph: Vec::new(),
            hotpath_dump: Vec::new(),
        };
        let doc = to_sarif(&report);
        validate_sarif(&doc).expect("empty report renders valid SARIF");
        let results =
            doc.get("runs").unwrap().as_arr().unwrap()[0].get("results").unwrap().as_arr().unwrap();
        assert!(results.is_empty());
    }
}
