//! A minimal Rust lexer: blanks out comments and string/char literals while
//! preserving byte offsets and line structure.
//!
//! The analyzer's lints are lexical (token pairing and span containment), so
//! instead of a full parse the source is first "cleaned": every byte inside
//! a comment, string literal, char literal, or raw string is replaced with a
//! space (newlines are kept), leaving code tokens at their original
//! offsets. Lints then scan the cleaned text and can never be fooled by
//! `panic!` appearing in a doc comment or an error-message string.

/// Returns `source` with comments and literals blanked to spaces.
///
/// Newlines are preserved everywhere (including inside block comments and
/// raw strings), so `line_of` computations agree between the raw and the
/// cleaned text.
pub fn clean_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                i = skip_line_comment(bytes, i);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i = skip_block_comment(bytes, &mut out, i);
            }
            b'"' => {
                i = skip_string(bytes, &mut out, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = skip_raw_string(bytes, &mut out, i);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                out[i] = b'b';
                i = skip_char_literal(bytes, &mut out, i + 1);
            }
            b'\'' => {
                i = skip_char_or_lifetime(bytes, &mut out, i);
            }
            _ => {
                out[i] = b;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

fn skip_line_comment(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

fn skip_block_comment(bytes: &[u8], out: &mut [u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            out[i] = b'\n';
            i += 1;
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                break;
            }
        } else {
            i += 1;
        }
    }
    i
}

fn skip_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    // Keep the delimiters so token boundaries survive cleaning.
    out[start] = b'"';
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'"' => {
                out[i] = b'"';
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Detects `r"`, `r#"`, `br"`, `br#"` etc. at position `i`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn skip_raw_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // the 'r'
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            out[i] = b'\n';
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

fn skip_char_literal(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    out[start] = b'\'';
    let mut i = start + 1;
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
    } else {
        // A char may span multiple bytes (UTF-8); advance to the quote.
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
    }
    while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        out[i] = b'\'';
        i += 1;
    }
    i
}

/// `'` introduces either a char literal or a lifetime; only the former is
/// blanked.
fn skip_char_or_lifetime(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    let j = i + 1;
    // Escaped char ('\n', '\'', '\u{..}') is unambiguous.
    if j < bytes.len() && bytes[j] == b'\\' {
        return skip_char_literal(bytes, out, i);
    }
    // A char literal closes with ' within a few bytes (one scalar, UTF-8);
    // a lifetime never closes ('a, 'static, followed by , > ( etc.).
    let mut k = j;
    let limit = (i + 7).min(bytes.len());
    while k < limit && bytes[k] != b'\'' && bytes[k] != b'\n' {
        k += 1;
    }
    if k > j && k < bytes.len() && bytes[k] == b'\'' {
        return skip_char_literal(bytes, out, i);
    }
    // Lifetime: copy through untouched.
    out[i] = b'\'';
    let mut m = j;
    while m < bytes.len() && (bytes[m].is_ascii_alphanumeric() || bytes[m] == b'_') {
        out[m] = bytes[m];
        m += 1;
    }
    m
}

/// 1-indexed line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments() {
        let cleaned = clean_source("let x = 1; // panic!()\nlet y = 2;");
        assert!(!cleaned.contains("panic"));
        assert!(cleaned.contains("let y = 2;"));
    }

    #[test]
    fn blanks_block_comments_preserving_lines() {
        let src = "a /* panic!\n still comment */ b";
        let cleaned = clean_source(src);
        assert!(!cleaned.contains("panic"));
        assert_eq!(cleaned.matches('\n').count(), 1);
        assert!(cleaned.ends_with(" b"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let cleaned = clean_source(r#"foo("unwrap() inside")"#);
        assert!(!cleaned.contains("unwrap"));
        assert!(cleaned.starts_with("foo(\""));
    }

    #[test]
    fn handles_raw_strings() {
        let cleaned = clean_source("let s = r#\"panic!\"#; bar()");
        assert!(!cleaned.contains("panic"));
        assert!(cleaned.contains("bar()"));
    }

    #[test]
    fn keeps_lifetimes() {
        let cleaned = clean_source("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(cleaned.contains("'a"));
    }

    #[test]
    fn blanks_char_literals() {
        let cleaned = clean_source("let c = 'x'; let d = '\\n'; keep");
        assert!(!cleaned.contains('x'));
        assert!(cleaned.contains("keep"));
    }

    #[test]
    fn nested_block_comments() {
        let cleaned = clean_source("/* outer /* inner */ still */ code");
        assert!(cleaned.trim_start().starts_with("code"));
    }

    #[test]
    fn line_of_counts_from_one() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
