//! Concurrency and unsafe-code facts plus the five lints built on them.
//!
//! ROADMAP items 1 and 2 (SIMD kernels behind a persistent thread pool,
//! data-parallel sharded training over a shared centroid table) will bring
//! `unsafe` blocks, atomics, locks, and cross-thread float accumulation
//! into a codebase whose bitwise kill-and-resume guarantees currently rest
//! on single-threaded reduction order. This module extracts concurrency
//! facts from the cleaned source — `unsafe` sites and their `// SAFETY:`
//! comments, atomic operations with their `Ordering` arguments,
//! `Mutex`/`RwLock` acquisition sites, spawn boundaries and the bindings
//! captured across them — and enforces the discipline statically, the same
//! way the sequential dataflow lints gate the hot path today:
//!
//! * [`unsafe_contract`] — every `unsafe` block needs a `// SAFETY:`
//!   comment (an `unsafe fn` needs a `# Safety` doc section), and
//!   raw-pointer / `get_unchecked`-family use is confined to the approved
//!   kernel-module list ([`APPROVED_KERNEL_MODULES`]).
//! * [`atomic_ordering`] — a `Relaxed` atomic read in a function that also
//!   accumulates floats is denied outright; every other ordering choice
//!   must carry an audited allowlist entry with an `ordering-*` category.
//! * [`lock_order`] — builds the inter-procedural lock-acquisition graph
//!   and reports every cycle as a potential deadlock, with the full
//!   acquisition trace (styled after the shapegraph's full-trace failures).
//! * [`scoped_capture`] — a mutable binding captured across a spawn
//!   boundary must come from a provably disjoint split
//!   (`split_at_mut`/`chunks_mut`) or be allowlisted.
//! * [`par_reduction`] — float accumulation into shared state inside a
//!   spawn closure has no fixed reduction order; it extends
//!   `adr::determinism` to threaded code.
//!
//! Like the sequential facts, everything here is a hand-rolled
//! under-approximation on the comment/literal-blanked text (no `syn`, no
//! network); the accepted imprecision is documented in DESIGN.md §12.

use std::ops::Range;

use crate::callgraph::{self, is_ident_byte, CallNode};
use crate::lints::{Finding, Lint};
use crate::parser::{self, UseMap};
use crate::scan::{is_word_at, match_brace, FileModel, FnSpan};

pub use crate::callgraph::CallSite;

/// Files (or `/`-terminated directory prefixes) where raw-pointer and
/// `get_unchecked`-family code is sanctioned. The SIMD micro-kernel
/// overhaul (ROADMAP item 1) lands its hand-vectorized inner loops here;
/// everywhere else stays index-checked safe Rust.
pub const APPROVED_KERNEL_MODULES: &[&str] =
    &["crates/tensor/src/simd.rs", "crates/tensor/src/kernels/"];

/// True when `file` may contain raw-pointer kernel code.
pub fn is_approved_kernel_module(file: &str) -> bool {
    APPROVED_KERNEL_MODULES.iter().any(|m| {
        if m.ends_with('/') {
            file.starts_with(m)
        } else {
            file == *m
        }
    })
}

/// Lock-guard type names recognised by the acquisition scanner.
pub const LOCK_TYPE_NAMES: &[&str] = &["Mutex", "RwLock"];

/// Slice-splitting calls whose results are provably disjoint, so mutable
/// captures derived from them may cross a spawn boundary.
const DISJOINT_MARKS: &[&str] =
    &["split_at_mut(", "chunks_mut(", "chunks_exact_mut(", "split_first_mut(", "split_last_mut("];

/// Tokens that mint or consume raw pointers / skip bounds checks; outside
/// the approved kernel modules they are a finding.
const RAW_TOKENS: &[&str] = &[
    "get_unchecked",
    "get_unchecked_mut",
    "from_raw_parts",
    "from_raw_parts_mut",
    "transmute",
    "*const ",
    "*mut ",
];

/// The five memory-ordering names of `std::sync::atomic::Ordering`.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic methods that read (loads and read-modify-writes): a `Relaxed`
/// ordering on one of these can observe stale cross-thread state.
const ATOMIC_READS: &[&str] = &[
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// What form an `unsafe` keyword introduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { ... }` block.
    Block,
    /// `unsafe fn` item.
    Fn,
    /// `unsafe impl` / `unsafe trait` item.
    Item,
}

/// One `unsafe` site.
#[derive(Debug)]
pub struct UnsafeSite {
    /// Which form.
    pub kind: UnsafeKind,
    /// Byte offset of the `unsafe` keyword.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
    /// Whether a `// SAFETY:` comment (or, for `unsafe fn`, a `# Safety`
    /// doc section) justifies the site.
    pub justified: bool,
}

/// One atomic operation with an explicit `Ordering` argument.
#[derive(Debug)]
pub struct AtomicSite {
    /// Byte offset of the ordering token.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
    /// The ordering name (`Relaxed`, `Acquire`, ...).
    pub ordering: String,
    /// The atomic method the ordering feeds (`load`, `store`, `fetch_add`,
    /// ...), when recoverable.
    pub method: Option<String>,
}

impl AtomicSite {
    /// True when the operation observes cross-thread state.
    pub fn is_read(&self) -> bool {
        self.method.as_deref().is_some_and(|m| ATOMIC_READS.contains(&m))
    }
}

/// One lock acquisition (`name.lock()` / `name.read()` / `name.write()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: the receiver's final path segment.
    pub lock: String,
    /// Acquisition method.
    pub method: String,
    /// Byte offset of the receiver name.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
    /// Raw text of the line (for allowlist matching and traces).
    pub line_text: String,
}

/// One spawn boundary and its closure body.
#[derive(Debug)]
pub struct SpawnSite {
    /// Byte offset of the `spawn` token.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
    /// Closure-body byte range (cleaned text, file-global offsets).
    pub body: Range<usize>,
}

/// A binding that is (or may be) mutably captured across a spawn boundary.
#[derive(Debug)]
pub struct MutBinding {
    /// Binding name.
    pub name: String,
    /// Declaration byte offset (file-global; params use the fn offset).
    pub offset: usize,
    /// Whether it derives from a provably disjoint slice split.
    pub disjoint: bool,
}

/// Concurrency facts for one function.
#[derive(Debug)]
pub struct FnConc {
    /// Function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Candidate call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Spawn boundaries.
    pub spawns: Vec<SpawnSite>,
    /// Mutable bindings visible in the body (params + lets + for-patterns).
    pub mut_bindings: Vec<MutBinding>,
    /// Names bound to lock guards (`let g = m.lock()` and `if let Ok(g)`).
    pub guards: Vec<String>,
    /// Whether the function accumulates floats (shared with determinism).
    pub accumulates_float: bool,
}

/// Concurrency facts for one file.
#[derive(Debug, Default)]
pub struct ConcFileFacts {
    /// `unsafe` sites outside test code.
    pub unsafes: Vec<UnsafeSite>,
    /// Atomic operations outside test code.
    pub atomics: Vec<AtomicSite>,
    /// Per-function facts (test functions excluded).
    pub fns: Vec<FnConc>,
}

/// Extracts every concurrency fact from one file.
pub fn collect(file: &str, model: &FileModel, uses: &UseMap) -> ConcFileFacts {
    let mut facts = ConcFileFacts {
        unsafes: find_unsafe_sites(model),
        atomics: find_atomic_sites(model, uses),
        fns: Vec::new(),
    };
    let lock_fields = lock_field_names(model, uses);
    for f in &model.fns {
        if model.in_test_code(f.start) || f.body.is_empty() {
            continue;
        }
        facts.fns.push(fn_conc(file, model, f, uses, &lock_fields));
    }
    facts
}

// ---------------------------------------------------------------------------
// Fact extraction
// ---------------------------------------------------------------------------

/// Finds `unsafe` sites and whether each carries its justification.
fn find_unsafe_sites(model: &FileModel) -> Vec<UnsafeSite> {
    let cleaned = &model.cleaned;
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = cleaned[i..].find("unsafe").map(|p| p + i) {
        i = pos + 6;
        if !is_word_at(cleaned, pos, "unsafe") || model.in_test_code(pos) {
            continue;
        }
        // The token after `unsafe` decides the form. Comments between
        // `unsafe` and `{` are already blanked to spaces by the lexer, so
        // skipping whitespace is enough.
        let mut j = pos + 6;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        let line = model.line_of(pos);
        let kind = if bytes.get(j) == Some(&b'{') {
            UnsafeKind::Block
        } else if is_word_at(cleaned, j, "fn") {
            UnsafeKind::Fn
        } else if is_word_at(cleaned, j, "impl")
            || is_word_at(cleaned, j, "trait")
            || is_word_at(cleaned, j, "extern")
        {
            UnsafeKind::Item
        } else {
            continue; // `unsafe` in a type position (`unsafe fn()` pointer)
        };
        let justified = match kind {
            UnsafeKind::Block | UnsafeKind::Item => has_safety_comment(model, line),
            UnsafeKind::Fn => {
                has_safety_comment(model, line)
                    || model
                        .fns
                        .iter()
                        .find(|f| f.start >= pos && f.start <= j + 2)
                        .is_some_and(|f| f.docs.contains("# Safety"))
            }
        };
        out.push(UnsafeSite { kind, offset: pos, line, justified });
    }
    out
}

/// True when a `SAFETY:` comment sits on the site's line or within the
/// three raw lines above it (attributes and comment prose included).
fn has_safety_comment(model: &FileModel, line: usize) -> bool {
    (line.saturating_sub(3)..=line)
        .filter(|&l| l > 0)
        .any(|l| model.line_text(l).contains("SAFETY:"))
}

/// Finds explicit `Ordering` arguments, both `Ordering::X` paths and names
/// imported via `use std::sync::atomic::Ordering::X`.
fn find_atomic_sites(model: &FileModel, uses: &UseMap) -> Vec<AtomicSite> {
    let cleaned = &model.cleaned;
    let mut out = Vec::new();
    for ord in ORDERINGS {
        let mut i = 0usize;
        while let Some(pos) = cleaned[i..].find(ord).map(|p| p + i) {
            i = pos + ord.len();
            if !is_word_at(cleaned, pos, ord) || model.in_test_code(pos) {
                continue;
            }
            // An ordering name inside a `use` item is an import, not an
            // operation: scan back to the statement start and skip if the
            // statement is a `use`.
            let stmt_start = cleaned[..pos].rfind(';').map_or(0, |p| p + 1);
            let stmt_head = cleaned[stmt_start..pos].trim_start();
            if stmt_head.starts_with("use ") || stmt_head.starts_with("pub use ") {
                continue;
            }
            let qualified = cleaned[..pos].ends_with("Ordering::");
            let imported =
                uses.path_of(ord).is_some_and(|p| p.contains("atomic") && p.contains("Ordering"));
            if !qualified && !imported {
                continue;
            }
            let line = model.line_of(pos);
            out.push(AtomicSite {
                offset: pos,
                line,
                ordering: (*ord).to_string(),
                method: atomic_method_of(cleaned, pos),
            });
        }
    }
    out.sort_by_key(|s| s.offset);
    out
}

/// Walks back from an ordering token to the atomic method call it feeds:
/// the `name(` whose argument list contains the token.
fn atomic_method_of(cleaned: &str, pos: usize) -> Option<String> {
    let bytes = cleaned.as_bytes();
    let mut depth = 0i32;
    let mut j = pos;
    while j > 0 {
        j -= 1;
        match bytes[j] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth < 0 {
                    // `j` is the call's opening paren; the ident before it
                    // (skipping `::<Ty>` turbofish is out of scope) is the
                    // method name.
                    let name_end = j;
                    let mut k = name_end;
                    while k > 0 && is_ident_byte(bytes[k - 1]) {
                        k -= 1;
                    }
                    if k < name_end {
                        return Some(cleaned[k..name_end].to_string());
                    }
                    return None;
                }
            }
            b';' | b'{' | b'}' => return None,
            _ => {}
        }
    }
    None
}

/// Struct fields in this file typed `Mutex<...>` / `RwLock<...>`.
fn lock_field_names(model: &FileModel, uses: &UseMap) -> Vec<String> {
    let cleaned = &model.cleaned;
    let mut fields = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = cleaned[i..].find("struct").map(|p| p + i) {
        i = pos + 6;
        if !is_word_at(cleaned, pos, "struct") {
            continue;
        }
        let Some(open) = cleaned[pos..].find(['{', ';']).map(|p| p + pos) else {
            break;
        };
        if cleaned.as_bytes()[open] != b'{' {
            continue;
        }
        let Some(close) = parser::find_top_level(&cleaned[open + 1..], b'}').map(|p| p + open + 1)
        else {
            break;
        };
        for piece in parser::split_top_level(&cleaned[open + 1..close], ',') {
            let Some((pat, ty)) = parser::split_top_level_once(piece, ':') else {
                continue;
            };
            let name = pat.trim().trim_start_matches("pub ").trim();
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && type_mentions_lock(ty, uses)
            {
                fields.push(name.to_string());
            }
        }
        i = close;
    }
    fields.sort_unstable();
    fields.dedup();
    fields
}

/// True when type text `ty` names a lock type, directly or via imports.
fn type_mentions_lock(ty: &str, uses: &UseMap) -> bool {
    parser::words_of(ty).any(|w| {
        LOCK_TYPE_NAMES.contains(&w)
            || uses.path_of(w).is_some_and(|path| {
                let leaf = path.rsplit("::").next().unwrap_or(path);
                LOCK_TYPE_NAMES.contains(&leaf)
            })
    })
}

/// Computes per-function concurrency facts.
fn fn_conc(
    file: &str,
    model: &FileModel,
    f: &FnSpan,
    uses: &UseMap,
    lock_fields: &[String],
) -> FnConc {
    let cleaned = &model.cleaned;
    let body = &cleaned[f.body.clone()];
    let base = f.body.start;

    // Lock-typed names visible in this fn: struct fields plus lock-typed
    // params and lets (one binding deep, like the map-type facts).
    let mut lock_names: Vec<String> = lock_fields.to_vec();
    for piece in parser::split_top_level(&f.params, ',') {
        if let Some((pat, ty)) = parser::split_top_level_once(piece, ':') {
            let name = pat.trim().trim_start_matches("mut ").trim();
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && type_mentions_lock(ty, uses)
            {
                lock_names.push(name.to_string());
            }
        }
    }
    for (name, annot, init) in let_bindings(body) {
        let lockish = annot.as_deref().is_some_and(|t| type_mentions_lock(t, uses))
            || init.as_deref().is_some_and(|t| type_mentions_lock(t, uses));
        if lockish {
            lock_names.push(name);
        }
    }
    lock_names.sort_unstable();
    lock_names.dedup();

    let locks = find_lock_sites(model, base, body, &lock_names);
    let guards = find_guard_names(body);
    let spawns = find_spawn_sites(model, base, body);
    let calls = callgraph::find_call_sites(model, base, body);
    let mut mut_bindings = find_mut_bindings(base, body);
    for piece in parser::split_top_level(&f.params, ',') {
        if let Some((pat, ty)) = parser::split_top_level_once(piece, ':') {
            let name = pat.trim().trim_start_matches("mut ").trim();
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && ty.trim().starts_with("&mut")
            {
                mut_bindings.push(MutBinding {
                    name: name.to_string(),
                    offset: f.start,
                    disjoint: false,
                });
            }
        }
    }
    let facts = parser::fn_facts(model, f, uses);
    FnConc {
        name: f.name.clone(),
        file: file.to_string(),
        line: f.line,
        locks,
        calls,
        spawns,
        mut_bindings,
        guards,
        accumulates_float: facts.accumulates_float,
    }
}

/// Iterates `let` statements of a (cleaned) body as
/// `(name, annotation, initialiser)` for single-identifier patterns.
fn let_bindings(body: &str) -> Vec<(String, Option<String>, Option<String>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("let").map(|p| p + i) {
        i = pos + 3;
        if !is_word_at(body, pos, "let") {
            continue;
        }
        let rest = &body[pos + 3..];
        let Some(stmt_end) = parser::find_top_level(rest, b';') else {
            continue;
        };
        let stmt = &rest[..stmt_end];
        let (pat, init) = match parser::split_top_level_once(stmt, '=') {
            Some((lhs, rhs)) => (lhs, Some(rhs.trim().to_string())),
            None => (stmt, None),
        };
        let (pat, annot) = match parser::split_top_level_once(pat, ':') {
            Some((p, t)) => (p, Some(t.trim().to_string())),
            None => (pat, None),
        };
        let name = pat.trim().trim_start_matches("mut ").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        out.push((name.to_string(), annot, init));
    }
    out
}

/// Finds acquisitions of known lock names: `name.lock()` / `.read()` /
/// `.write()`, including `self.name.lock()` paths.
fn find_lock_sites(
    model: &FileModel,
    base: usize,
    body: &str,
    lock_names: &[String],
) -> Vec<LockSite> {
    let mut out = Vec::new();
    for method in ["lock", "read", "write"] {
        let needle = format!(".{method}(");
        let mut i = 0usize;
        while let Some(pos) = body[i..].find(&needle).map(|p| p + i) {
            i = pos + needle.len();
            // Receiver: the identifier immediately before the dot.
            let bytes = body.as_bytes();
            let mut k = pos;
            while k > 0 && is_ident_byte(bytes[k - 1]) {
                k -= 1;
            }
            let recv = &body[k..pos];
            if recv.is_empty() || !lock_names.iter().any(|n| n == recv) {
                continue;
            }
            let global = base + k;
            let line = model.line_of(global);
            out.push(LockSite {
                lock: recv.to_string(),
                method: method.to_string(),
                offset: global,
                line,
                line_text: model.line_text(line).to_string(),
            });
        }
    }
    out.sort_by_key(|s| s.offset);
    out
}

/// Names bound to lock guards: the `let` pattern of any statement whose
/// initialiser acquires a lock (covers `let g = m.lock()` and
/// `if let Ok(mut g) = m.lock()`).
fn find_guard_names(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    for needle in [".lock(", ".write(", ".read("] {
        let mut i = 0usize;
        while let Some(pos) = body[i..].find(needle).map(|p| p + i) {
            i = pos + needle.len();
            // Statement start: after the previous `;`, `{` or `}`.
            let start = body[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
            let stmt = &body[start..pos];
            let Some(let_pos) = stmt.find("let").filter(|&p| is_word_at(stmt, p, "let")) else {
                continue;
            };
            let Some((pat, _)) = parser::split_top_level_once(&stmt[let_pos + 3..], '=') else {
                continue;
            };
            for word in parser::words_of(pat) {
                if !matches!(word, "Ok" | "Err" | "Some" | "None" | "mut" | "ref")
                    && !word.chars().next().is_some_and(|c| c.is_ascii_digit())
                {
                    out.push(word.to_string());
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Finds `spawn(...)` boundaries and the closure body each carries.
fn find_spawn_sites(model: &FileModel, base: usize, body: &str) -> Vec<SpawnSite> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("spawn").map(|p| p + i) {
        i = pos + 5;
        if !is_word_at(body, pos, "spawn") {
            continue;
        }
        let mut j = pos + 5;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        let open_call = j;
        // Closure: optional `move`, then `|params|`, then a `{` body or a
        // bare expression extending to the call's closing paren.
        let mut k = open_call + 1;
        while k < bytes.len() && (bytes[k] as char).is_whitespace() {
            k += 1;
        }
        if is_word_at(body, k, "move") {
            k += 4;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
        }
        let call_end = close_paren(body, open_call);
        let body_range = if bytes.get(k) == Some(&b'|') {
            let params_end = if bytes.get(k + 1) == Some(&b'|') {
                k + 1
            } else {
                match body[k + 1..].find('|') {
                    Some(p) => k + 1 + p,
                    None => continue,
                }
            };
            let mut m = params_end + 1;
            while m < bytes.len() && (bytes[m] as char).is_whitespace() {
                m += 1;
            }
            if bytes.get(m) == Some(&b'{') {
                let close = match_brace(body, m);
                m..close
            } else {
                m..call_end
            }
        } else {
            // Not a closure literal (fn path, pre-built closure): treat the
            // whole argument list as the capture surface.
            open_call + 1..call_end
        };
        out.push(SpawnSite {
            offset: base + pos,
            line: model.line_of(base + pos),
            body: base + body_range.start..base + body_range.end,
        });
    }
    out
}

/// Byte offset of the `)` matching the `(` at `open` (or text end).
fn close_paren(body: &str, open: usize) -> usize {
    let bytes = body.as_bytes();
    let mut depth = 0i32;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Collects mutable bindings (`let mut x`, destructuring splits, `&mut`
/// initialisers, `for` patterns over `_mut` iterators) with disjointness.
fn find_mut_bindings(base: usize, body: &str) -> Vec<MutBinding> {
    let mut out = Vec::new();
    // `let` statements.
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("let").map(|p| p + i) {
        i = pos + 3;
        if !is_word_at(body, pos, "let") {
            continue;
        }
        let rest = &body[pos + 3..];
        let Some(stmt_end) = parser::find_top_level(rest, b';') else {
            continue;
        };
        let stmt = &rest[..stmt_end];
        let Some((pat, init)) = parser::split_top_level_once(stmt, '=') else {
            continue;
        };
        let init = init.trim();
        // Closure definitions are not data captures.
        if init.starts_with('|') || init.starts_with("move") {
            continue;
        }
        let (pat, _annot) = match parser::split_top_level_once(pat, ':') {
            Some((p, t)) => (p, Some(t)),
            None => (pat, None),
        };
        let pat = pat.trim();
        let disjoint = DISJOINT_MARKS.iter().any(|m| init.contains(m));
        let mutable_init = init.contains("&mut ")
            || init.contains(".as_mut_slice(")
            || init.contains(".as_mut_ptr(")
            || init.contains("_mut(");
        if pat.starts_with('(') {
            if disjoint || mutable_init {
                for word in parser::words_of(pat) {
                    if word != "mut" {
                        out.push(MutBinding {
                            name: word.to_string(),
                            offset: base + pos,
                            disjoint,
                        });
                    }
                }
            }
            continue;
        }
        let name = pat.trim_start_matches("mut ").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        // Only alias-like initialisers are capture-suspect. A plain
        // `let mut n = 0usize` moved (or exclusively borrowed) into one
        // closure is owned state the borrow checker already polices; the
        // lint targets mutable *aliases* into shared buffers.
        if disjoint || mutable_init {
            out.push(MutBinding { name: name.to_string(), offset: base + pos, disjoint });
        }
    }
    // `for PAT in EXPR {` headers over `_mut` iterators.
    let mut i = 0usize;
    while let Some(pos) = body[i..].find("for").map(|p| p + i) {
        i = pos + 3;
        if !is_word_at(body, pos, "for") {
            continue;
        }
        let rest = &body[pos + 3..];
        let Some(brace) = parser::find_top_level(rest, b'{') else {
            continue;
        };
        let header = &rest[..brace];
        let Some(in_pos) =
            header.match_indices("in").map(|(p, _)| p).find(|&p| is_word_at(header, p, "in"))
        else {
            continue;
        };
        let (pat, expr) = (&header[..in_pos], &header[in_pos + 2..]);
        let disjoint = DISJOINT_MARKS.iter().any(|m| expr.contains(m));
        let mutable = disjoint || expr.contains("iter_mut(") || expr.contains("&mut ");
        if !mutable {
            continue;
        }
        for word in parser::words_of(pat) {
            if word != "mut" {
                out.push(MutBinding { name: word.to_string(), offset: base + pos, disjoint });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The per-file lints
// ---------------------------------------------------------------------------

/// `adr::unsafe_contract`: unsafe sites need their justification, and
/// raw-pointer code stays inside the approved kernel modules.
pub fn unsafe_contract(file: &str, model: &FileModel, facts: &ConcFileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in &facts.unsafes {
        if site.justified {
            continue;
        }
        let message = match site.kind {
            UnsafeKind::Block => "unsafe block without a `// SAFETY:` comment; state the \
                                  invariant that makes it sound (or move it out of the hot path)"
                .to_string(),
            UnsafeKind::Fn => "unsafe fn without a `# Safety` doc section or `// SAFETY:` \
                               comment; document the caller contract"
                .to_string(),
            UnsafeKind::Item => "unsafe impl/trait without a `// SAFETY:` comment; state why \
                                 the contract holds"
                .to_string(),
        };
        findings.push(finding_at(Lint::UnsafeContract, file, model, site.offset, message));
    }
    if !is_approved_kernel_module(file) {
        for token in RAW_TOKENS {
            let mut i = 0usize;
            let cleaned = &model.cleaned;
            while let Some(pos) = cleaned[i..].find(token).map(|p| p + i) {
                i = pos + token.len();
                let ident_like = token.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if ident_like && !is_word_at(cleaned, pos, token) {
                    continue;
                }
                if model.in_test_code(pos) {
                    continue;
                }
                findings.push(finding_at(
                    Lint::UnsafeContract,
                    file,
                    model,
                    pos,
                    format!(
                        "`{}` outside the approved kernel modules ({}); raw-pointer and \
                         unchecked access is confined to the SIMD kernel files",
                        token.trim(),
                        APPROVED_KERNEL_MODULES.join(", ")
                    ),
                ));
            }
        }
    }
    findings
}

/// `adr::atomic_ordering`: `Relaxed` reads near float accumulation are
/// denied; every other explicit ordering needs an audited `ordering-*`
/// allowlist entry.
pub fn atomic_ordering(file: &str, model: &FileModel, facts: &ConcFileFacts) -> Vec<Finding> {
    let uses = UseMap::collect(&model.cleaned);
    facts
        .atomics
        .iter()
        .map(|site| {
            let in_float_fn = model
                .enclosing_fn(site.offset)
                .map(|f| parser::fn_facts(model, f, &uses))
                .is_some_and(|facts| facts.accumulates_float);
            let method = site.method.as_deref().unwrap_or("?");
            let message = if site.ordering == "Relaxed" && site.is_read() && in_float_fn {
                format!(
                    "Ordering::Relaxed on atomic `{method}` in a float-accumulating function; \
                     a relaxed read can observe stale cross-thread state and reorder the \
                     reduction — use Acquire (and audit it) or move the read out of the \
                     accumulation"
                )
            } else {
                format!(
                    "atomic `{method}` with Ordering::{} must carry an audited allowlist entry \
                     with an `ordering-*` category naming why this ordering is sufficient",
                    site.ordering
                )
            };
            finding_at(Lint::AtomicOrdering, file, model, site.offset, message)
        })
        .collect()
}

/// `adr::scoped_capture`: mutable bindings crossing a spawn boundary must
/// derive from a provably disjoint split.
pub fn scoped_capture(file: &str, model: &FileModel, facts: &ConcFileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &facts.fns {
        for spawn in &f.spawns {
            let body = &model.cleaned[spawn.body.clone()];
            for binding in &f.mut_bindings {
                if binding.disjoint
                    || spawn.body.contains(&binding.offset)
                    || shadowed_in(&binding.name, spawn, f)
                {
                    continue;
                }
                let Some(pos) = word_position(body, &binding.name) else {
                    continue;
                };
                findings.push(finding_at(
                    Lint::ScopedCapture,
                    file,
                    model,
                    spawn.body.start + pos,
                    format!(
                        "mutable binding `{}` crosses the spawn boundary in fn `{}` without a \
                         provably disjoint split; partition with split_at_mut/chunks_mut (or \
                         allowlist the audited site with `capture-disjoint`)",
                        binding.name, f.name
                    ),
                ));
            }
        }
    }
    findings
}

/// True when the spawn body declares its own binding named `name`, so an
/// occurrence inside the closure refers to the inner (shadowing) binding,
/// not the one declared outside the boundary. Serial-fallback paths reuse
/// the same local names as their parallel twins; without this rule every
/// such pair would be a false capture.
fn shadowed_in(name: &str, spawn: &SpawnSite, f: &FnConc) -> bool {
    f.mut_bindings.iter().any(|b| b.name == name && spawn.body.contains(&b.offset))
}

/// First word-bounded occurrence of `name` in `text`.
fn word_position(text: &str, name: &str) -> Option<usize> {
    let mut i = 0usize;
    while let Some(pos) = text[i..].find(name).map(|p| p + i) {
        i = pos + name.len();
        if is_word_at(text, pos, name) {
            return Some(pos);
        }
    }
    None
}

/// Float-accumulation operators scanned for inside spawn closures.
const ACC_OPS: &[&str] = &["+=", "-=", ".sum(", ".product(", "mul_add("];

/// `adr::par_reduction`: float accumulation into shared state inside a
/// spawn closure (through a lock guard, an atomic RMW, or a non-disjoint
/// captured binding) has no fixed reduction order.
pub fn par_reduction(file: &str, model: &FileModel, facts: &ConcFileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &facts.fns {
        for spawn in &f.spawns {
            let body = &model.cleaned[spawn.body.clone()];
            for op in ACC_OPS {
                let mut i = 0usize;
                while let Some(pos) = body[i..].find(op).map(|p| p + i) {
                    i = pos + op.len();
                    let stmt_start = body[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
                    let stmt = &body[stmt_start..pos];
                    let float_ctx = parser::contains_float_literal(stmt)
                        || f.accumulates_float
                        || parser::contains_float_literal(body);
                    if !float_ctx {
                        continue;
                    }
                    let target = accumulation_target(stmt);
                    let through_lock = stmt.contains(".lock(")
                        || stmt.contains(".write(")
                        || stmt.contains("fetch_")
                        || target.as_deref().is_some_and(|t| f.guards.iter().any(|g| g == t));
                    let through_capture = target.as_deref().is_some_and(|t| {
                        !shadowed_in(t, spawn, f)
                            && f.mut_bindings.iter().any(|b| {
                                b.name == t && !b.disjoint && !spawn.body.contains(&b.offset)
                            })
                    });
                    if !(through_lock || through_capture) {
                        continue;
                    }
                    findings.push(finding_at(
                        Lint::ParReduction,
                        file,
                        model,
                        spawn.body.start + pos,
                        format!(
                            "float accumulation into shared `{}` inside a spawn closure in fn \
                             `{}`: worker arrival order becomes the reduction order, which \
                             breaks bitwise reproducibility — write per-thread partials into \
                             disjoint slots and fold them sequentially after the join (or \
                             allowlist the audited site with `reduction-fixed-order`)",
                            target.as_deref().unwrap_or("state"),
                            f.name
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Root identifier the accumulation statement writes into: the first
/// identifier after any `let`/`mut`/deref prefix.
fn accumulation_target(stmt: &str) -> Option<String> {
    let mut rest = stmt.trim_start();
    loop {
        let trimmed = rest.trim_start_matches(['*', '(', '&']).trim_start();
        let without_kw =
            ["let ", "mut ", "if ", "Ok(", "Some("].iter().find_map(|kw| trimmed.strip_prefix(kw));
        match without_kw {
            Some(t) => rest = t,
            None => {
                rest = trimmed;
                break;
            }
        }
    }
    let word: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if word.is_empty() {
        None
    } else {
        Some(word)
    }
}

// ---------------------------------------------------------------------------
// The inter-procedural lock-order graph
// ---------------------------------------------------------------------------

/// One lock-order edge: `to` can be acquired while `from` is held.
#[derive(Debug)]
struct LockEdge {
    from: String,
    to: String,
    /// Finding anchor: (file, line, raw line text).
    site: (String, usize, String),
    /// Human-readable acquisition trace, one hop per line.
    trace: Vec<String>,
}

/// The lock-order walk's view of a function: the facts are lock names,
/// the trace strings render exactly as the pre-`callgraph` implementation
/// did (pinned by the unit and fixture tests below).
impl CallNode for FnConc {
    fn name(&self) -> &str {
        &self.name
    }

    fn calls(&self) -> &[CallSite] {
        &self.calls
    }

    fn direct_facts(&self) -> Vec<(String, String)> {
        self.locks
            .iter()
            .map(|site| {
                (
                    site.lock.clone(),
                    format!(
                        "{}:{}: fn `{}` acquires `{}` via `.{}()`",
                        self.file, site.line, self.name, site.lock, site.method
                    ),
                )
            })
            .collect()
    }

    fn call_trace(&self, call: &CallSite) -> String {
        format!("{}:{}: fn `{}` calls `{}()`", self.file, call.line, self.name, call.callee)
    }
}

/// `adr::lock_order`: builds the inter-procedural lock-acquisition graph
/// over every scanned function and reports each cycle as a potential
/// deadlock with its full acquisition trace. Lock identity is by receiver
/// name (field or binding), matched across functions — an accepted
/// over-approximation: two fields with the same name on different structs
/// merge, which can only add edges, never hide one.
///
/// Returns the findings plus a rendered edge list for `adr-check conc`.
pub fn lock_order(fns: &[FnConc]) -> (Vec<Finding>, Vec<String>) {
    // fn name → indices (duplicate names across impls merge conservatively).
    let by_name = callgraph::index_by_name(fns);

    // Transitive lock set per fn — every lock acquired in the fn itself or
    // in any (transitively) called fn, with the call-chain trace that
    // reaches it — via the shared memoized walk; the trace strings come
    // from the `CallNode` impl below.
    let mut memo: Vec<Option<callgraph::FactTraces>> = vec![None; fns.len()];
    let mut edges: Vec<LockEdge> = Vec::new();
    for (idx, f) in fns.iter().enumerate() {
        // Direct edges: later acquisitions while earlier ones are held (a
        // guard is assumed held to the end of the function — the common
        // RAII shape; early drops are an accepted over-approximation).
        for (i, held) in f.locks.iter().enumerate() {
            for later in &f.locks[i + 1..] {
                if later.lock == held.lock {
                    continue;
                }
                push_edge(
                    &mut edges,
                    LockEdge {
                        from: held.lock.clone(),
                        to: later.lock.clone(),
                        site: (f.file.clone(), later.line, later.line_text.clone()),
                        trace: vec![format!(
                            "{}:{}: fn `{}` acquires `{}` while holding `{}` (acquired at line {})",
                            f.file, later.line, f.name, later.lock, held.lock, held.line
                        )],
                    },
                );
            }
            // Call-derived edges: locks reachable through calls made after
            // this acquisition.
            for call in f.calls.iter().filter(|c| c.offset > held.offset) {
                let Some(callees) = by_name.get(call.callee.as_str()) else {
                    continue;
                };
                for &callee in callees {
                    if callee == idx {
                        continue;
                    }
                    let mut visiting = Vec::new();
                    for (lock, trace) in
                        callgraph::transitive(callee, fns, &by_name, &mut memo, &mut visiting)
                    {
                        if lock == held.lock {
                            continue;
                        }
                        let mut full = vec![format!(
                            "{}:{}: fn `{}` holds `{}` (acquired at line {}) and calls `{}()`",
                            f.file, call.line, f.name, held.lock, held.line, call.callee
                        )];
                        full.extend(trace);
                        push_edge(
                            &mut edges,
                            LockEdge {
                                from: held.lock.clone(),
                                to: lock,
                                site: (f.file.clone(), held.line, held.line_text.clone()),
                                trace: full,
                            },
                        );
                    }
                }
            }
        }
    }

    let graph_lines: Vec<String> =
        edges.iter().map(|e| format!("{} -> {}   ({})", e.from, e.to, e.trace[0])).collect();

    // Cycle detection: DFS with an explicit stack over the lock-name graph.
    let mut findings = Vec::new();
    let mut reported: Vec<std::collections::BTreeSet<String>> = Vec::new();
    let nodes: std::collections::BTreeSet<&str> =
        edges.iter().flat_map(|e| [e.from.as_str(), e.to.as_str()]).collect();
    for &start in &nodes {
        let mut path: Vec<&LockEdge> = Vec::new();
        if let Some(cycle) = find_cycle(start, start, &edges, &mut path, &mut Vec::new()) {
            let node_set: std::collections::BTreeSet<String> =
                cycle.iter().map(|e| e.from.clone()).collect();
            if reported.contains(&node_set) {
                continue;
            }
            reported.push(node_set);
            let chain: Vec<&str> =
                cycle.iter().map(|e| e.from.as_str()).chain(std::iter::once(start)).collect();
            let mut message = format!(
                "potential deadlock: lock-order cycle `{}` — two threads taking the locks in \
                 these opposing orders block each other forever; pick one global order (or \
                 allowlist the audited site with `lock-order-audited`)\n  acquisition trace:",
                chain.join("` -> `")
            );
            for edge in &cycle {
                for line in &edge.trace {
                    message.push_str("\n    ");
                    message.push_str(line);
                }
            }
            let (file, line, line_text) = cycle[0].site.clone();
            findings.push(Finding { lint: Lint::LockOrder, file, line, message, line_text });
        }
    }
    (findings, graph_lines)
}

/// Appends an edge unless an equivalent `(from, to)` pair is present.
fn push_edge(edges: &mut Vec<LockEdge>, edge: LockEdge) {
    if !edges.iter().any(|e| e.from == edge.from && e.to == edge.to) {
        edges.push(edge);
    }
}

/// DFS from `node` looking for a path back to `target`; returns the edge
/// path of the first cycle found.
fn find_cycle<'a>(
    node: &'a str,
    target: &str,
    edges: &'a [LockEdge],
    path: &mut Vec<&'a LockEdge>,
    visited: &mut Vec<&'a str>,
) -> Option<Vec<&'a LockEdge>> {
    if visited.contains(&node) {
        return None;
    }
    visited.push(node);
    for edge in edges.iter().filter(|e| e.from == node) {
        if edge.to == target {
            let mut cycle = path.clone();
            cycle.push(edge);
            return Some(cycle);
        }
        path.push(edge);
        if let Some(found) = find_cycle(&edge.to, target, edges, path, visited) {
            return Some(found);
        }
        path.pop();
    }
    None
}

/// Builds a finding anchored at a byte offset.
fn finding_at(
    lint: Lint,
    file: &str,
    model: &FileModel,
    offset: usize,
    message: String,
) -> Finding {
    let line = model.line_of(offset);
    Finding {
        lint,
        file: file.to_string(),
        line,
        message,
        line_text: model.line_text(line).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileModel;

    fn facts_of(src: &str) -> (FileModel, ConcFileFacts) {
        let model = FileModel::parse(src);
        let uses = UseMap::collect(&model.cleaned);
        let facts = collect("crates/core/src/lib.rs", &model, &uses);
        (model, facts)
    }

    #[test]
    fn unsafe_block_without_safety_is_flagged() {
        let (model, facts) = facts_of("fn f(v: &[f32]) -> f32 { unsafe { *v.as_ptr() } }");
        let found = unsafe_contract("crates/core/src/lib.rs", &model, &facts);
        assert!(found.iter().any(|f| f.message.contains("SAFETY")), "{found:#?}");
    }

    #[test]
    fn safety_comment_satisfies_the_contract() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: caller checked bounds.\n    unsafe { g(v) }\n}";
        let (_model, facts) = facts_of(src);
        assert_eq!(facts.unsafes.len(), 1);
        assert!(facts.unsafes[0].justified);
    }

    #[test]
    fn block_comment_between_unsafe_and_brace_is_handled() {
        // The lexer blanks the comment but keeps offsets, so the `{` is
        // still found and the site still demands its SAFETY comment.
        let src = "fn f() { unsafe /* fast path */ { g() } }";
        let (_model, facts) = facts_of(src);
        assert_eq!(facts.unsafes.len(), 1);
        assert_eq!(facts.unsafes[0].kind, UnsafeKind::Block);
        assert!(!facts.unsafes[0].justified);
    }

    #[test]
    fn raw_string_containing_unsafe_is_not_a_site() {
        let src = "fn f() -> &'static str { r#\"unsafe { }\"# }";
        let (_, facts) = facts_of(src);
        assert!(facts.unsafes.is_empty());
    }

    #[test]
    fn unsafe_fn_wants_safety_docs() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\npub unsafe fn g() {}\n\npub unsafe fn bad() {}";
        let (_, facts) = facts_of(src);
        assert_eq!(facts.unsafes.len(), 2);
        assert!(facts.unsafes[0].justified);
        assert!(!facts.unsafes[1].justified);
    }

    #[test]
    fn get_unchecked_confined_to_kernel_modules() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: bounds asserted by caller.\n    unsafe { *v.get_unchecked(0) }\n}";
        let model = FileModel::parse(src);
        let uses = UseMap::collect(&model.cleaned);
        let facts = collect("crates/reuse/src/forward.rs", &model, &uses);
        let found = unsafe_contract("crates/reuse/src/forward.rs", &model, &facts);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert!(found[0].message.contains("approved kernel modules"));
        // The same code inside an approved module is fine.
        let facts = collect("crates/tensor/src/simd.rs", &model, &uses);
        assert!(unsafe_contract("crates/tensor/src/simd.rs", &model, &facts).is_empty());
    }

    #[test]
    fn relaxed_read_near_float_accumulation_is_denied() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(e: &AtomicU64, vs: &[f32]) -> f32 {\n\
                       let mut total = 0.0;\n\
                       let epoch = e.load(Ordering::Relaxed) as f32;\n\
                       for v in vs { total += v * epoch; }\n\
                       total\n}";
        let (model, facts) = facts_of(src);
        let found = atomic_ordering("crates/core/src/lib.rs", &model, &facts);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("Relaxed"), "{}", found[0].message);
        assert!(found[0].message.contains("float-accumulating"), "{}", found[0].message);
    }

    #[test]
    fn any_ordering_choice_demands_an_audit() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                   fn bump(c: &AtomicUsize) { c.fetch_add(1, Ordering::SeqCst); }";
        let (model, facts) = facts_of(src);
        let found = atomic_ordering("crates/core/src/lib.rs", &model, &facts);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("ordering-*"), "{}", found[0].message);
        assert!(found[0].message.contains("fetch_add"), "{}", found[0].message);
    }

    #[test]
    fn imported_ordering_names_are_seen() {
        let src = "use std::sync::atomic::Ordering::Relaxed;\n\
                   fn f(c: &AtomicUsize) { c.store(1, Relaxed); }";
        let (_, facts) = facts_of(src);
        assert_eq!(facts.atomics.len(), 1);
        assert_eq!(facts.atomics[0].method.as_deref(), Some("store"));
    }

    #[test]
    fn nested_generics_in_lock_types_are_parsed() {
        // `Mutex<Vec<(u64, f32)>>` nests generics two deep; the word-based
        // type scan must still classify `table` as a lock.
        let src = "use std::sync::Mutex;\n\
                   pub struct S { table: Mutex<Vec<(u64, f32)>>, plain: Vec<u64> }\n\
                   fn f(s: &S) { let _g = s.table.lock(); }";
        let (_, facts) = facts_of(src);
        assert_eq!(facts.fns.len(), 1);
        assert_eq!(facts.fns[0].locks.len(), 1);
        assert_eq!(facts.fns[0].locks[0].lock, "table");
    }

    #[test]
    fn two_lock_cycle_is_reported_with_trace() {
        let src = "use std::sync::Mutex;\n\
                   pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn fwd(s: &S) { let _x = s.a.lock(); let _y = s.b.lock(); }\n\
                   fn rev(s: &S) { let _y = s.b.lock(); let _x = s.a.lock(); }";
        let (_, facts) = facts_of(src);
        let (findings, edges) = lock_order(&facts.fns);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("lock-order cycle"));
        assert!(findings[0].message.contains("acquisition trace"));
        assert!(findings[0].message.contains("fn `fwd`"));
        assert!(findings[0].message.contains("fn `rev`"));
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn interprocedural_cycle_carries_the_call_chain() {
        let src = "use std::sync::Mutex;\n\
                   pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn outer(s: &S) { let _x = s.a.lock(); inner(s); }\n\
                   fn inner(s: &S) { let _y = s.b.lock(); }\n\
                   fn rev(s: &S) { let _y = s.b.lock(); let _x = s.a.lock(); }";
        let (_, facts) = facts_of(src);
        let (findings, _) = lock_order(&facts.fns);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("calls `inner()`"), "{}", findings[0].message);
    }

    #[test]
    fn consistent_lock_order_is_quiet() {
        let src = "use std::sync::Mutex;\n\
                   pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) { let _x = s.a.lock(); let _y = s.b.lock(); }\n\
                   fn g(s: &S) { let _x = s.a.lock(); let _y = s.b.lock(); }";
        let (_, facts) = facts_of(src);
        let (findings, edges) = lock_order(&facts.fns);
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn non_disjoint_capture_is_flagged_and_split_is_not() {
        let src = "fn bad(buf: &mut [f32]) {\n\
                       std::thread::scope(|scope| {\n\
                           scope.spawn(|| { buf[0] = 1.0; });\n\
                       });\n\
                   }\n\
                   fn good(buf: &mut [f32]) {\n\
                       let (lo, hi) = buf.split_at_mut(1);\n\
                       std::thread::scope(|scope| {\n\
                           scope.spawn(move || { lo[0] = 1.0; });\n\
                           scope.spawn(move || { hi[0] = 1.0; });\n\
                       });\n\
                   }";
        let (model, facts) = facts_of(src);
        let found = scoped_capture("crates/core/src/lib.rs", &model, &facts);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert!(found[0].message.contains("`buf`"));
        assert!(found[0].message.contains("fn `bad`"));
    }

    #[test]
    fn closure_passed_to_scope_spawn_is_scanned() {
        // An expression-bodied (brace-less) closure still has its capture
        // surface checked.
        let src = "fn f(buf: &mut [f32]) {\n\
                       std::thread::scope(|scope| { scope.spawn(move || buf[0] = 1.0); });\n\
                   }";
        let (model, facts) = facts_of(src);
        assert_eq!(facts.fns[0].spawns.len(), 1);
        let found = scoped_capture("crates/core/src/lib.rs", &model, &facts);
        assert_eq!(found.len(), 1, "{found:#?}");
    }

    #[test]
    fn lock_guarded_accumulation_in_spawn_is_flagged() {
        let src = "use std::sync::Mutex;\n\
                   fn f(chunks: &[Vec<f32>], total: &Mutex<f32>) {\n\
                       std::thread::scope(|scope| {\n\
                           for chunk in chunks {\n\
                               scope.spawn(move || {\n\
                                   let partial: f32 = chunk.iter().sum();\n\
                                   if let Ok(mut t) = total.lock() { *t += partial; }\n\
                               });\n\
                           }\n\
                       });\n\
                   }";
        let (model, facts) = facts_of(src);
        let found = par_reduction("crates/core/src/lib.rs", &model, &facts);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert!(found[0].message.contains("reduction order"), "{}", found[0].message);
    }

    #[test]
    fn disjoint_slot_reduction_is_quiet() {
        let src = "fn f(chunks: &[Vec<f32>], partials: &mut [f32]) -> f32 {\n\
                       std::thread::scope(|scope| {\n\
                           for (chunk, slot) in chunks.iter().zip(partials.chunks_mut(1)) {\n\
                               scope.spawn(move || { slot[0] = chunk.iter().sum(); });\n\
                           }\n\
                       });\n\
                       let mut total = 0.0;\n\
                       for p in partials.iter() { total += p; }\n\
                       total\n\
                   }";
        let (model, facts) = facts_of(src);
        assert!(par_reduction("crates/core/src/lib.rs", &model, &facts).is_empty());
        assert!(scoped_capture("crates/core/src/lib.rs", &model, &facts).is_empty());
    }
}
