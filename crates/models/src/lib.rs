//! Benchmark network builders (Table II of the paper).
//!
//! Each model comes in two forms:
//!
//! * a [`spec::ModelSpec`] describing the *paper-scale* layer geometry
//!   (kernels, channels, strides), against which the Table II K/M ranges
//!   are asserted by unit tests — no weights are allocated;
//! * a trainable **bench-scale** [`adr_nn::Network`] with reduced spatial
//!   dimensions / channel counts that keeps the same depth and relative
//!   K-growth, so adaptive-deep-reuse behaviour is preserved at CPU-feasible
//!   cost (see DESIGN.md "Substitutions"). CifarNet is small enough that its
//!   paper-scale network is also constructible.
//!
//! Every convolution can be built dense ([`ConvMode::Dense`]) or with deep
//! reuse ([`ConvMode::Reuse`]), so the same topology serves as baseline and
//! optimised network.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod alexnet;
pub mod cifarnet;
pub mod spec;
pub mod vgg19;

use adr_nn::conv::Conv2d;
use adr_nn::Layer;
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;

pub use spec::{ConvSpec, LayerSpec, ModelSpec, NetSpec, ReuseSpec};

/// Every shipped whole-network architecture declaration, in Table II order.
/// The static shape verifier (`adr-check shapes`) iterates exactly this set.
pub fn all_net_specs() -> Vec<NetSpec> {
    vec![cifarnet::net_spec(), alexnet::net_spec(), vgg19::net_spec()]
}

/// Whether convolutions are built dense or with deep reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvMode {
    /// Plain im2col convolution (the paper's baseline).
    Dense,
    /// Deep-reuse convolution with this initial configuration. The adaptive
    /// controller may retune it later.
    Reuse(ReuseConfig),
}

impl ConvMode {
    /// Builds one convolution layer in this mode.
    pub fn build(
        &self,
        name: &str,
        geom: ConvGeom,
        out_channels: usize,
        rng: &mut AdrRng,
    ) -> Box<dyn Layer> {
        match *self {
            ConvMode::Dense => Box::new(Conv2d::new(name, geom, out_channels, rng)),
            ConvMode::Reuse(cfg) => Box::new(ReuseConv2d::new(name, geom, out_channels, cfg, rng)),
        }
    }

    /// A sensible initial reuse mode: the most aggressive Policy-1 setting
    /// is applied later by the controller, so layers start with `L = kw`,
    /// `H = 8`, `CR = 0` merely as placeholders.
    pub fn reuse_default() -> Self {
        ConvMode::Reuse(ReuseConfig::new(8, 8, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_mode_builds_both_kinds() {
        let mut rng = AdrRng::seeded(1);
        let geom = ConvGeom::new(8, 8, 3, 3, 3, 1, 1).unwrap();
        let dense = ConvMode::Dense.build("d", geom, 4, &mut rng);
        assert_eq!(dense.name(), "d");
        let reuse = ConvMode::reuse_default().build("r", geom, 4, &mut rng);
        assert_eq!(reuse.name(), "r");
        assert!(matches!(ConvMode::reuse_default(), ConvMode::Reuse(_)));
    }
}
