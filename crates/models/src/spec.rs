//! Paper-scale model geometry (no weights), for Table II verification.

use adr_tensor::im2col::ConvGeom;

/// Geometry of one convolutional layer.
#[derive(Clone, Debug)]
pub struct ConvSpec {
    /// Layer name (`"conv3"`, `"conv4_2"`, ...).
    pub name: String,
    /// Full convolution geometry.
    pub geom: ConvGeom,
    /// Output channels `M`.
    pub out_channels: usize,
}

impl ConvSpec {
    /// The paper's `K = Ic·kh·kw` for this layer.
    pub fn k(&self) -> usize {
        self.geom.k()
    }
}

/// Geometry of a whole network's convolutional stack.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Network name.
    pub name: &'static str,
    /// Input `(h, w, c)`.
    pub input: (usize, usize, usize),
    /// Convolutional layers in order.
    pub convs: Vec<ConvSpec>,
}

impl ModelSpec {
    /// Number of convolutional layers (Table II's "# convlayers").
    pub fn num_conv_layers(&self) -> usize {
        self.convs.len()
    }

    /// `(min K, max K)` across conv layers.
    ///
    /// # Panics
    /// Panics when the spec has no conv layers (never for the shipped specs).
    pub fn k_range(&self) -> (usize, usize) {
        let ks: Vec<usize> = self.convs.iter().map(ConvSpec::k).collect();
        let min = *ks.iter().min().expect("spec has at least one conv layer");
        let max = *ks.iter().max().expect("spec has at least one conv layer");
        (min, max)
    }

    /// `(min M, max M)` across conv layers.
    ///
    /// # Panics
    /// Panics when the spec has no conv layers (never for the shipped specs).
    pub fn m_range(&self) -> (usize, usize) {
        let ms: Vec<usize> = self.convs.iter().map(|c| c.out_channels).collect();
        let min = *ms.iter().min().expect("spec has at least one conv layer");
        let max = *ms.iter().max().expect("spec has at least one conv layer");
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use crate::{alexnet, cifarnet, vgg19};

    /// Table II, row 1: CifarNet on CIFAR-10 — 2 conv layers, K 75–1600,
    /// M = 64, image 32×32.
    #[test]
    fn cifarnet_matches_table_ii() {
        let s = cifarnet::spec();
        assert_eq!(s.num_conv_layers(), 2);
        assert_eq!(s.input, (32, 32, 3));
        assert_eq!(s.k_range(), (75, 1600));
        assert_eq!(s.m_range(), (64, 64));
    }

    /// Table II, row 2: AlexNet on ImageNet — 5 conv layers, K 363–3456,
    /// M 64–384, image 224×224.
    #[test]
    fn alexnet_matches_table_ii() {
        let s = alexnet::spec();
        assert_eq!(s.num_conv_layers(), 5);
        assert_eq!(s.input, (224, 224, 3));
        assert_eq!(s.k_range(), (363, 3456));
        assert_eq!(s.m_range(), (64, 384));
    }

    /// Table II, row 3: VGG-19 on ImageNet — 16 conv layers, M 64–512,
    /// image 224×224. (The paper prints the K upper bound as 4068; the
    /// actual 3×3×512 kernel gives 4608 — we assert the true value and
    /// note the paper's typo.)
    #[test]
    fn vgg19_matches_table_ii() {
        let s = vgg19::spec();
        assert_eq!(s.num_conv_layers(), 16);
        assert_eq!(s.input, (224, 224, 3));
        assert_eq!(s.k_range(), (27, 4608));
        assert_eq!(s.m_range(), (64, 512));
    }

    /// Spatial dimensions must chain: each conv/pool output feeds the next
    /// layer's declared input.
    #[test]
    fn spec_geometries_are_internally_consistent() {
        for spec in [cifarnet::spec(), alexnet::spec(), vgg19::spec()] {
            for conv in &spec.convs {
                // Every declared geometry must produce at least one output
                // pixel (ConvGeom::new enforces it; re-assert here).
                assert!(conv.geom.out_h() > 0 && conv.geom.out_w() > 0, "{}", conv.name);
                assert!(conv.k() == conv.geom.in_c * conv.geom.kernel_h * conv.geom.kernel_w);
            }
        }
    }
}
