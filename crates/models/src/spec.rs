//! Paper-scale model geometry (no weights), for Table II verification and
//! static shape checking.
//!
//! Two spec levels coexist:
//!
//! * [`ModelSpec`] — the conv-only view Table II talks about (K/M ranges);
//! * [`NetSpec`]/[`LayerSpec`] — the *whole* layer chain including pools,
//!   flatten and dense heads, consumed by `adr-check shapes` to propagate
//!   `(N, C, H, W)` symbolically and reject inconsistent architectures
//!   before any weight is allocated.
//!
//! [`ReuseSpec`] deliberately stores raw `{L, H}` integers rather than a
//! validated `adr_reuse::ReuseConfig`: the static verifier must be able to
//! *represent* an invalid declaration (H > 64, L ∤ K) in order to reject it
//! with a diagnostic instead of panicking at construction time.

use adr_tensor::im2col::ConvGeom;

/// Geometry of one convolutional layer.
#[derive(Clone, Debug)]
pub struct ConvSpec {
    /// Layer name (`"conv3"`, `"conv4_2"`, ...).
    pub name: String,
    /// Full convolution geometry.
    pub geom: ConvGeom,
    /// Output channels `M`.
    pub out_channels: usize,
}

impl ConvSpec {
    /// The paper's `K = Ic·kh·kw` for this layer.
    pub fn k(&self) -> usize {
        self.geom.k()
    }
}

/// Geometry of a whole network's convolutional stack.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Network name.
    pub name: &'static str,
    /// Input `(h, w, c)`.
    pub input: (usize, usize, usize),
    /// Convolutional layers in order.
    pub convs: Vec<ConvSpec>,
}

impl ModelSpec {
    /// Number of convolutional layers (Table II's "# convlayers").
    pub fn num_conv_layers(&self) -> usize {
        self.convs.len()
    }

    /// `(min K, max K)` across conv layers.
    ///
    /// # Panics
    /// Panics when the spec has no conv layers (never for the shipped specs).
    pub fn k_range(&self) -> (usize, usize) {
        let ks: Vec<usize> = self.convs.iter().map(ConvSpec::k).collect();
        let min = *ks.iter().min().expect("spec has at least one conv layer");
        let max = *ks.iter().max().expect("spec has at least one conv layer");
        (min, max)
    }

    /// `(min M, max M)` across conv layers.
    ///
    /// # Panics
    /// Panics when the spec has no conv layers (never for the shipped specs).
    pub fn m_range(&self) -> (usize, usize) {
        let ms: Vec<usize> = self.convs.iter().map(|c| c.out_channels).collect();
        let min = *ms.iter().min().expect("spec has at least one conv layer");
        let max = *ms.iter().max().expect("spec has at least one conv layer");
        (min, max)
    }
}

/// Declared reuse knobs of one conv layer, in unvalidated form.
///
/// The shape verifier checks `L | K` (Eq. 5's sub-matrix factorization) and
/// `1 ≤ H ≤ 64` (one packed `u64` signature per sub-vector).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseSpec {
    /// Sub-vector length `L`.
    pub sub_vector_len: usize,
    /// Number of LSH hash functions `H`.
    pub num_hashes: usize,
}

/// One layer of a whole-network architecture declaration.
#[derive(Clone, Debug)]
pub enum LayerSpec {
    /// Convolution with a declared input geometry and output channel count.
    Conv {
        /// Layer name.
        name: String,
        /// Declared geometry (the verifier cross-checks it against the
        /// propagated shape — a declared input that disagrees with the
        /// previous layer's output is exactly the bug class this catches).
        geom: ConvGeom,
        /// Output channels `M`.
        out_channels: usize,
        /// Deep-reuse knobs, when this conv is declared as a reuse layer.
        reuse: Option<ReuseSpec>,
    },
    /// Square max/avg pooling (kind is shape-irrelevant, so not recorded).
    Pool {
        /// Layer name.
        name: String,
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
    },
    /// Elementwise activation (shape-preserving).
    Relu {
        /// Layer name.
        name: String,
    },
    /// Local response normalization (shape-preserving).
    Lrn {
        /// Layer name.
        name: String,
    },
    /// Per-channel batch normalization.
    BatchNorm {
        /// Layer name.
        name: String,
        /// Declared channel count (must match the propagated `C`).
        channels: usize,
    },
    /// Dropout (shape-preserving; rate must lie in `[0, 1)`).
    Dropout {
        /// Layer name.
        name: String,
        /// Drop probability.
        rate: f32,
    },
    /// Collapse `(C, H, W)` into a feature vector.
    Flatten,
    /// Fully connected layer.
    Dense {
        /// Layer name.
        name: String,
        /// Declared input features (must match the flattened count).
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl LayerSpec {
    /// The layer's name (`"flatten"` for the anonymous flatten marker).
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. }
            | LayerSpec::Pool { name, .. }
            | LayerSpec::Relu { name }
            | LayerSpec::Lrn { name }
            | LayerSpec::BatchNorm { name, .. }
            | LayerSpec::Dropout { name, .. }
            | LayerSpec::Dense { name, .. } => name,
            LayerSpec::Flatten => "flatten",
        }
    }
}

/// A whole network's declared architecture, input to the static verifier.
#[derive(Clone, Debug)]
pub struct NetSpec {
    /// Network name.
    pub name: String,
    /// Input `(h, w, c)`.
    pub input: (usize, usize, usize),
    /// Layers in forward order.
    pub layers: Vec<LayerSpec>,
}

impl NetSpec {
    /// The conv layers of the chain, in order.
    pub fn convs(&self) -> impl Iterator<Item = (&str, &ConvGeom, usize)> {
        self.layers.iter().filter_map(|l| match l {
            LayerSpec::Conv { name, geom, out_channels, .. } => {
                Some((name.as_str(), geom, *out_channels))
            }
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{alexnet, cifarnet, vgg19};

    /// Table II, row 1: CifarNet on CIFAR-10 — 2 conv layers, K 75–1600,
    /// M = 64, image 32×32.
    #[test]
    fn cifarnet_matches_table_ii() {
        let s = cifarnet::spec();
        assert_eq!(s.num_conv_layers(), 2);
        assert_eq!(s.input, (32, 32, 3));
        assert_eq!(s.k_range(), (75, 1600));
        assert_eq!(s.m_range(), (64, 64));
    }

    /// Table II, row 2: AlexNet on ImageNet — 5 conv layers, K 363–3456,
    /// M 64–384, image 224×224.
    #[test]
    fn alexnet_matches_table_ii() {
        let s = alexnet::spec();
        assert_eq!(s.num_conv_layers(), 5);
        assert_eq!(s.input, (224, 224, 3));
        assert_eq!(s.k_range(), (363, 3456));
        assert_eq!(s.m_range(), (64, 384));
    }

    /// Table II, row 3: VGG-19 on ImageNet — 16 conv layers, M 64–512,
    /// image 224×224. (The paper prints the K upper bound as 4068; the
    /// actual 3×3×512 kernel gives 4608 — we assert the true value and
    /// note the paper's typo.)
    #[test]
    fn vgg19_matches_table_ii() {
        let s = vgg19::spec();
        assert_eq!(s.num_conv_layers(), 16);
        assert_eq!(s.input, (224, 224, 3));
        assert_eq!(s.k_range(), (27, 4608));
        assert_eq!(s.m_range(), (64, 512));
    }

    /// The whole-network declarations must agree with the conv-only Table II
    /// specs: same conv names, geometries, and channel counts, in order.
    #[test]
    fn net_specs_agree_with_conv_specs() {
        for (net, model) in [
            (cifarnet::net_spec(), cifarnet::spec()),
            (alexnet::net_spec(), alexnet::spec()),
            (vgg19::net_spec(), vgg19::spec()),
        ] {
            assert_eq!(net.name, model.name);
            let net_convs: Vec<_> = net.convs().collect();
            assert_eq!(net_convs.len(), model.convs.len(), "{}", net.name);
            for ((name, geom, out_c), conv) in net_convs.iter().zip(&model.convs) {
                assert_eq!(*name, conv.name);
                assert_eq!(**geom, conv.geom);
                assert_eq!(*out_c, conv.out_channels);
            }
        }
    }

    /// Every declared reuse knob in the shipped specs must satisfy the
    /// verifier's contract up front: `L | K` and `H ≤ 64`.
    #[test]
    fn shipped_reuse_specs_are_valid() {
        use crate::LayerSpec;
        for net in crate::all_net_specs() {
            for layer in &net.layers {
                if let LayerSpec::Conv { name, geom, reuse: Some(r), .. } = layer {
                    assert_eq!(geom.k() % r.sub_vector_len, 0, "{}/{name}", net.name);
                    assert!((1..=64).contains(&r.num_hashes), "{}/{name}", net.name);
                }
            }
        }
    }

    /// Spatial dimensions must chain: each conv/pool output feeds the next
    /// layer's declared input.
    #[test]
    fn spec_geometries_are_internally_consistent() {
        for spec in [cifarnet::spec(), alexnet::spec(), vgg19::spec()] {
            for conv in &spec.convs {
                // Every declared geometry must produce at least one output
                // pixel (ConvGeom::new enforces it; re-assert here).
                assert!(conv.geom.out_h() > 0 && conv.geom.out_w() > 0, "{}", conv.name);
                assert!(conv.k() == conv.geom.in_c * conv.geom.kernel_h * conv.geom.kernel_w);
            }
        }
    }
}
