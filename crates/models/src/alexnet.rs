//! AlexNet, the paper's mid-size benchmark (5 conv layers).

use adr_nn::dense::Dense;
use adr_nn::pool::Pool2d;
use adr_nn::relu::Relu;
use adr_nn::Network;
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;

use crate::spec::{ConvSpec, LayerSpec, ModelSpec, NetSpec, ReuseSpec};
use crate::ConvMode;

/// Paper-scale geometry: the classic 224×224 AlexNet stack whose `K` runs
/// 363 (conv1: 3·11·11) to 3456 (conv4/5: 384·3·3) with `M` 64–384,
/// matching Table II.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn spec() -> ModelSpec {
    ModelSpec {
        name: "alexnet",
        input: (224, 224, 3),
        convs: vec![
            ConvSpec {
                name: "conv1".into(),
                geom: ConvGeom::new(224, 224, 3, 11, 11, 4, 0)
                    .expect("model geometry constants are valid"),
                out_channels: 64,
            },
            ConvSpec {
                name: "conv2".into(),
                geom: ConvGeom::new(26, 26, 64, 5, 5, 1, 2)
                    .expect("model geometry constants are valid"),
                out_channels: 192,
            },
            ConvSpec {
                name: "conv3".into(),
                geom: ConvGeom::new(12, 12, 192, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: 384,
            },
            ConvSpec {
                name: "conv4".into(),
                geom: ConvGeom::new(12, 12, 384, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: 384,
            },
            ConvSpec {
                name: "conv5".into(),
                geom: ConvGeom::new(12, 12, 384, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: 256,
            },
        ],
    }
}

/// Whole-network architecture declaration for the static shape verifier:
/// the classic stack conv1–5 with LRN after the first two convolutions,
/// three 3×3/2 max pools, and the 4096/4096/1000 dense head behind dropout.
///
/// Reuse knobs follow Policy 1's `L = kw` start: conv1 declares `L = 11`
/// (divides K = 363), the 5×5 and 3×3 convs declare `L = 5` / `L = 3`.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn net_spec() -> NetSpec {
    let r = |l: usize| Some(ReuseSpec { sub_vector_len: l, num_hashes: 8 });
    NetSpec {
        name: "alexnet".into(),
        input: (224, 224, 3),
        layers: vec![
            LayerSpec::Conv {
                name: "conv1".into(),
                geom: ConvGeom::new(224, 224, 3, 11, 11, 4, 0)
                    .expect("model geometry constants are valid"),
                out_channels: 64,
                reuse: r(11),
            },
            LayerSpec::Relu { name: "relu1".into() },
            LayerSpec::Lrn { name: "lrn1".into() },
            LayerSpec::Pool { name: "pool1".into(), size: 3, stride: 2 }, // 54 -> 26
            LayerSpec::Conv {
                name: "conv2".into(),
                geom: ConvGeom::new(26, 26, 64, 5, 5, 1, 2)
                    .expect("model geometry constants are valid"),
                out_channels: 192,
                reuse: r(5),
            },
            LayerSpec::Relu { name: "relu2".into() },
            LayerSpec::Lrn { name: "lrn2".into() },
            LayerSpec::Pool { name: "pool2".into(), size: 3, stride: 2 }, // 26 -> 12
            LayerSpec::Conv {
                name: "conv3".into(),
                geom: ConvGeom::new(12, 12, 192, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: 384,
                reuse: r(3),
            },
            LayerSpec::Relu { name: "relu3".into() },
            LayerSpec::Conv {
                name: "conv4".into(),
                geom: ConvGeom::new(12, 12, 384, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: 384,
                reuse: r(3),
            },
            LayerSpec::Relu { name: "relu4".into() },
            LayerSpec::Conv {
                name: "conv5".into(),
                geom: ConvGeom::new(12, 12, 384, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: 256,
                reuse: r(3),
            },
            LayerSpec::Relu { name: "relu5".into() },
            LayerSpec::Pool { name: "pool5".into(), size: 3, stride: 2 }, // 12 -> 5
            LayerSpec::Flatten,
            LayerSpec::Dense { name: "fc6".into(), in_features: 5 * 5 * 256, out_features: 4096 },
            LayerSpec::Relu { name: "relu6".into() },
            LayerSpec::Dropout { name: "drop6".into(), rate: 0.5 },
            LayerSpec::Dense { name: "fc7".into(), in_features: 4096, out_features: 4096 },
            LayerSpec::Relu { name: "relu7".into() },
            LayerSpec::Dropout { name: "drop7".into(), rate: 0.5 },
            LayerSpec::Dense { name: "fc8".into(), in_features: 4096, out_features: 1000 },
        ],
    }
}

/// A reduced 64×64 AlexNet keeping the 5-conv depth and the K-growth shape.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn bench_scale(num_classes: usize, mode: ConvMode, rng: &mut AdrRng) -> Network {
    let mut net = Network::new((64, 64, 3));
    let g1 = ConvGeom::new(64, 64, 3, 7, 7, 2, 0).expect("model geometry constants are valid"); // 64 -> 29
    net.push(mode.build("conv1", g1, 32, rng));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Pool2d::max("pool1", 3, 2))); // 29 -> 14
    let g2 = ConvGeom::new(14, 14, 32, 5, 5, 1, 2).expect("model geometry constants are valid");
    net.push(mode.build("conv2", g2, 64, rng));
    net.push(Box::new(Relu::new("relu2")));
    net.push(Box::new(Pool2d::max("pool2", 3, 2))); // 14 -> 6
    let g3 = ConvGeom::new(6, 6, 64, 3, 3, 1, 1).expect("model geometry constants are valid");
    net.push(mode.build("conv3", g3, 96, rng));
    net.push(Box::new(Relu::new("relu3")));
    let g4 = ConvGeom::new(6, 6, 96, 3, 3, 1, 1).expect("model geometry constants are valid");
    net.push(mode.build("conv4", g4, 96, rng));
    net.push(Box::new(Relu::new("relu4")));
    let g5 = ConvGeom::new(6, 6, 96, 3, 3, 1, 1).expect("model geometry constants are valid");
    net.push(mode.build("conv5", g5, 64, rng));
    net.push(Box::new(Relu::new("relu5")));
    net.push(Box::new(Pool2d::max("pool5", 3, 2))); // 6 -> 2
    net.push(Box::new(Dense::new("fc6", 2 * 2 * 64, 128, rng)));
    net.push(Box::new(Relu::new("relu6")));
    net.push(Box::new(Dense::new("logits", 128, num_classes, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::Mode;
    use adr_tensor::Tensor4;

    #[test]
    fn paper_spec_k_values() {
        let s = spec();
        let ks: Vec<usize> = s.convs.iter().map(|c| c.k()).collect();
        assert_eq!(ks, vec![363, 1600, 1728, 3456, 3456]);
    }

    #[test]
    fn paper_spec_spatial_chain() {
        let s = spec();
        // conv1 output feeds pool (3,2): 54 -> 26 = conv2 declared input.
        assert_eq!(s.convs[0].geom.out_h(), 54);
        assert_eq!((54 - 3) / 2 + 1, 26);
        assert_eq!(s.convs[1].geom.in_h, 26);
        // conv2 keeps 26, pool -> 12 = conv3 input.
        assert_eq!(s.convs[1].geom.out_h(), 26);
        assert_eq!((26 - 3) / 2 + 1, 12);
        assert_eq!(s.convs[2].geom.in_h, 12);
    }

    #[test]
    fn bench_scale_forward_shape() {
        let mut rng = AdrRng::seeded(1);
        for mode in [ConvMode::Dense, ConvMode::reuse_default()] {
            let mut net = bench_scale(5, mode, &mut rng);
            let y = net.forward(&Tensor4::zeros(1, 64, 64, 3), Mode::Eval);
            assert_eq!(y.shape(), (1, 1, 1, 5));
        }
    }
}
