//! CifarNet (TensorFlow-slim style), the paper's smallest benchmark.
//!
//! Two 5×5/64 convolutions with max-pooling, then 384/192/10 dense layers.
//! `K` runs from 75 (conv1: 3·5·5) to 1600 (conv2: 64·5·5), matching
//! Table II.

use adr_nn::dense::Dense;
use adr_nn::pool::Pool2d;
use adr_nn::relu::Relu;
use adr_nn::Network;
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;

use crate::spec::{ConvSpec, LayerSpec, ModelSpec, NetSpec, ReuseSpec};
use crate::ConvMode;

/// Paper-scale geometry (for Table II verification).
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn spec() -> ModelSpec {
    ModelSpec {
        name: "cifarnet",
        input: (32, 32, 3),
        convs: vec![
            ConvSpec {
                name: "conv1".into(),
                geom: ConvGeom::new(32, 32, 3, 5, 5, 1, 2)
                    .expect("model geometry constants are valid"),
                out_channels: 64,
            },
            ConvSpec {
                name: "conv2".into(),
                geom: ConvGeom::new(15, 15, 64, 5, 5, 1, 2)
                    .expect("model geometry constants are valid"),
                out_channels: 64,
            },
        ],
    }
}

/// Whole-network architecture declaration for the static shape verifier.
///
/// Both convolutions declare the paper's Policy-1 starting point `L = kw`
/// (= 5, which divides K = 75 and K = 1600 as Eq. 5 requires) and `H = 8`.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn net_spec() -> NetSpec {
    let reuse = Some(ReuseSpec { sub_vector_len: 5, num_hashes: 8 });
    NetSpec {
        name: "cifarnet".into(),
        input: (32, 32, 3),
        layers: vec![
            LayerSpec::Conv {
                name: "conv1".into(),
                geom: ConvGeom::new(32, 32, 3, 5, 5, 1, 2)
                    .expect("model geometry constants are valid"),
                out_channels: 64,
                reuse,
            },
            LayerSpec::Relu { name: "relu1".into() },
            LayerSpec::Pool { name: "pool1".into(), size: 3, stride: 2 }, // 32 -> 15
            LayerSpec::Conv {
                name: "conv2".into(),
                geom: ConvGeom::new(15, 15, 64, 5, 5, 1, 2)
                    .expect("model geometry constants are valid"),
                out_channels: 64,
                reuse,
            },
            LayerSpec::Relu { name: "relu2".into() },
            LayerSpec::Pool { name: "pool2".into(), size: 3, stride: 2 }, // 15 -> 7
            LayerSpec::Flatten,
            LayerSpec::Dense { name: "fc3".into(), in_features: 7 * 7 * 64, out_features: 384 },
            LayerSpec::Relu { name: "relu3".into() },
            LayerSpec::Dense { name: "fc4".into(), in_features: 384, out_features: 192 },
            LayerSpec::Relu { name: "relu4".into() },
            LayerSpec::Dense { name: "logits".into(), in_features: 192, out_features: 10 },
        ],
    }
}

/// Builds the full 32×32 CifarNet. `num_classes` is 10 for the CIFAR-10
/// setup of the paper.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn paper_scale(num_classes: usize, mode: ConvMode, rng: &mut AdrRng) -> Network {
    let mut net = Network::new((32, 32, 3));
    let g1 = ConvGeom::new(32, 32, 3, 5, 5, 1, 2).expect("model geometry constants are valid");
    net.push(mode.build("conv1", g1, 64, rng));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Pool2d::max("pool1", 3, 2))); // 32 -> 15
    let g2 = ConvGeom::new(15, 15, 64, 5, 5, 1, 2).expect("model geometry constants are valid");
    net.push(mode.build("conv2", g2, 64, rng));
    net.push(Box::new(Relu::new("relu2")));
    net.push(Box::new(Pool2d::max("pool2", 3, 2))); // 15 -> 7
    net.push(Box::new(Dense::new("fc3", 7 * 7 * 64, 384, rng)));
    net.push(Box::new(Relu::new("relu3")));
    net.push(Box::new(Dense::new("fc4", 384, 192, rng)));
    net.push(Box::new(Relu::new("relu4")));
    net.push(Box::new(Dense::new("logits", 192, num_classes, rng)));
    net
}

/// A reduced 16×16 CifarNet for fast harness runs: same two-conv topology
/// and the paper's 64 filters (so conv2's K = 1600 matches Table II).
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn bench_scale(num_classes: usize, mode: ConvMode, rng: &mut AdrRng) -> Network {
    let mut net = Network::new((16, 16, 3));
    let g1 = ConvGeom::new(16, 16, 3, 5, 5, 1, 2).expect("model geometry constants are valid");
    net.push(mode.build("conv1", g1, 64, rng));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Pool2d::max("pool1", 3, 2))); // 16 -> 7
    let g2 = ConvGeom::new(7, 7, 64, 5, 5, 1, 2).expect("model geometry constants are valid");
    net.push(mode.build("conv2", g2, 64, rng));
    net.push(Box::new(Relu::new("relu2")));
    net.push(Box::new(Pool2d::max("pool2", 3, 2))); // 7 -> 3
    net.push(Box::new(Dense::new("fc3", 3 * 3 * 64, 96, rng)));
    net.push(Box::new(Relu::new("relu3")));
    net.push(Box::new(Dense::new("logits", 96, num_classes, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::Mode;
    use adr_tensor::Tensor4;

    #[test]
    fn paper_scale_forward_shape() {
        let mut rng = AdrRng::seeded(1);
        let mut net = paper_scale(10, ConvMode::Dense, &mut rng);
        assert_eq!(net.output_shape(), (1, 1, 10));
        let y = net.forward(&Tensor4::zeros(1, 32, 32, 3), Mode::Eval);
        assert_eq!(y.shape(), (1, 1, 1, 10));
    }

    #[test]
    fn bench_scale_forward_shape_dense_and_reuse() {
        let mut rng = AdrRng::seeded(2);
        for mode in [ConvMode::Dense, ConvMode::reuse_default()] {
            let mut net = bench_scale(4, mode, &mut rng);
            let y = net.forward(&Tensor4::zeros(2, 16, 16, 3), Mode::Eval);
            assert_eq!(y.shape(), (2, 1, 1, 4));
        }
    }

    #[test]
    fn bench_scale_keeps_paper_k_for_conv2() {
        // The bench-scale model keeps 64 filters so conv2's K stays at the
        // paper's 1600 even though the spatial dims shrink.
        let mut rng = AdrRng::seeded(3);
        let mut net = bench_scale(10, ConvMode::Dense, &mut rng);
        let conv2 = net.layers_mut()[3]
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<adr_nn::conv::Conv2d>())
            .expect("layer 3 is conv2");
        assert_eq!(conv2.geom().k(), 1600);
        assert_eq!(conv2.out_channels(), 64);
    }

    #[test]
    fn conv_k_values_match_table_ii() {
        let s = spec();
        assert_eq!(s.convs[0].k(), 75);
        assert_eq!(s.convs[1].k(), 1600);
    }
}
