//! VGG-19, the paper's deepest benchmark (16 conv layers).

use adr_nn::dense::Dense;
use adr_nn::pool::Pool2d;
use adr_nn::relu::Relu;
use adr_nn::Network;
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;

use crate::spec::{ConvSpec, LayerSpec, ModelSpec, NetSpec, ReuseSpec};
use crate::ConvMode;

/// VGG-19 block structure: (convs in block, output channels).
const BLOCKS: [(usize, usize); 5] = [(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)];

/// Paper-scale geometry: sixteen 3×3 convolutions in five blocks, input
/// 224×224. `K` runs 27 (3·3·3) to 4608 (512·3·3); the paper's Table II
/// prints 4068, an apparent typo for 4608.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn spec() -> ModelSpec {
    let mut convs = Vec::new();
    let mut size = 224usize;
    let mut in_c = 3usize;
    for (b, &(count, channels)) in BLOCKS.iter().enumerate() {
        for i in 0..count {
            convs.push(ConvSpec {
                name: format!("conv{}_{}", b + 1, i + 1),
                geom: ConvGeom::new(size, size, in_c, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: channels,
            });
            in_c = channels;
        }
        size /= 2; // 2x2 stride-2 max pool after each block
    }
    ModelSpec { name: "vgg19", input: (224, 224, 3), convs }
}

/// Whole-network architecture declaration for the static shape verifier:
/// all sixteen convolutions (each declaring Policy 1's `L = kw = 3`, which
/// divides every `K = Ic·9`), a 2×2/2 max pool per block, and the
/// 4096/4096/1000 dense head behind dropout.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn net_spec() -> NetSpec {
    let reuse = Some(ReuseSpec { sub_vector_len: 3, num_hashes: 8 });
    let mut layers = Vec::new();
    let mut size = 224usize;
    let mut in_c = 3usize;
    for (b, &(count, channels)) in BLOCKS.iter().enumerate() {
        for i in 0..count {
            layers.push(LayerSpec::Conv {
                name: format!("conv{}_{}", b + 1, i + 1),
                geom: ConvGeom::new(size, size, in_c, 3, 3, 1, 1)
                    .expect("model geometry constants are valid"),
                out_channels: channels,
                reuse,
            });
            layers.push(LayerSpec::Relu { name: format!("relu{}_{}", b + 1, i + 1) });
            in_c = channels;
        }
        layers.push(LayerSpec::Pool { name: format!("pool{}", b + 1), size: 2, stride: 2 });
        size /= 2;
    }
    layers.push(LayerSpec::Flatten); // 7·7·512 = 25088
    layers.push(LayerSpec::Dense {
        name: "fc6".into(),
        in_features: size * size * in_c,
        out_features: 4096,
    });
    layers.push(LayerSpec::Relu { name: "relu6".into() });
    layers.push(LayerSpec::Dropout { name: "drop6".into(), rate: 0.5 });
    layers.push(LayerSpec::Dense { name: "fc7".into(), in_features: 4096, out_features: 4096 });
    layers.push(LayerSpec::Relu { name: "relu7".into() });
    layers.push(LayerSpec::Dropout { name: "drop7".into(), rate: 0.5 });
    layers.push(LayerSpec::Dense { name: "fc8".into(), in_features: 4096, out_features: 1000 });
    NetSpec { name: "vgg19".into(), input: (224, 224, 3), layers }
}

/// A reduced 32×32 VGG-19 keeping all sixteen convolutions and the
/// five-block pooling schedule, with channel counts scaled down.
///
/// # Panics
/// Never in practice: the geometry constants are validated at build time.
pub fn bench_scale(num_classes: usize, mode: ConvMode, rng: &mut AdrRng) -> Network {
    const SMALL_BLOCKS: [(usize, usize); 5] = [(2, 16), (2, 32), (4, 48), (4, 64), (4, 64)];
    let mut net = Network::new((32, 32, 3));
    let mut size = 32usize;
    let mut in_c = 3usize;
    for (b, &(count, channels)) in SMALL_BLOCKS.iter().enumerate() {
        for i in 0..count {
            let name = format!("conv{}_{}", b + 1, i + 1);
            let geom = ConvGeom::new(size, size, in_c, 3, 3, 1, 1)
                .expect("model geometry constants are valid");
            net.push(mode.build(&name, geom, channels, rng));
            net.push(Box::new(Relu::new(format!("relu{}_{}", b + 1, i + 1))));
            in_c = channels;
        }
        net.push(Box::new(Pool2d::max(format!("pool{}", b + 1), 2, 2)));
        size /= 2;
    }
    // size is now 1; flatten 1*1*32.
    net.push(Box::new(Dense::new("fc6", in_c, 64, rng)));
    net.push(Box::new(Relu::new("relu6")));
    net.push(Box::new(Dense::new("logits", 64, num_classes, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::Mode;
    use adr_tensor::Tensor4;

    #[test]
    fn spec_has_sixteen_convs_with_correct_k_extremes() {
        let s = spec();
        assert_eq!(s.num_conv_layers(), 16);
        assert_eq!(s.convs[0].k(), 27);
        assert_eq!(s.convs.last().unwrap().k(), 4608);
    }

    #[test]
    fn spec_spatial_sizes_halve_per_block() {
        let s = spec();
        let sizes: Vec<usize> = s.convs.iter().map(|c| c.geom.in_h).collect();
        assert_eq!(sizes[0], 224);
        assert_eq!(sizes[2], 112); // block 2 starts after one pool
        assert_eq!(sizes[4], 56); // block 3
        assert_eq!(sizes[8], 28); // block 4
        assert_eq!(sizes[12], 14); // block 5
    }

    #[test]
    fn bench_scale_forward_shape() {
        let mut rng = AdrRng::seeded(1);
        let mut net = bench_scale(3, ConvMode::Dense, &mut rng);
        let y = net.forward(&Tensor4::zeros(1, 32, 32, 3), Mode::Eval);
        assert_eq!(y.shape(), (1, 1, 1, 3));
    }

    #[test]
    fn bench_scale_k_grows_with_depth_like_the_paper() {
        let mut rng = AdrRng::seeded(5);
        let mut net = bench_scale(4, ConvMode::Dense, &mut rng);
        // Collect K per conv layer in order; it must be non-decreasing
        // within the pattern the paper's Table II describes (K grows as
        // channels deepen).
        let mut ks = Vec::new();
        for layer in net.layers_mut() {
            if let Some(any) = layer.as_any_mut() {
                if let Some(conv) = any.downcast_mut::<adr_nn::conv::Conv2d>() {
                    ks.push(conv.geom().k());
                }
            }
        }
        assert_eq!(ks.len(), 16);
        assert_eq!(ks[0], 27); // 3·3·3, same as the paper's first layer
        assert!(ks.windows(2).all(|w| w[1] >= w[0] || w[1] * 4 >= w[0]));
        assert_eq!(*ks.last().unwrap(), 64 * 9);
    }

    #[test]
    fn bench_scale_reuse_variant_builds() {
        let mut rng = AdrRng::seeded(2);
        let mut net = bench_scale(3, ConvMode::reuse_default(), &mut rng);
        let y = net.forward(&Tensor4::zeros(1, 32, 32, 3), Mode::Eval);
        assert_eq!(y.shape(), (1, 1, 1, 3));
        // 16 reuse convs + 16 relus + 5 pools + 2 dense + 1 relu = 40 layers.
        assert_eq!(net.len(), 40);
    }
}
