//! The serving engine: admission, micro-batching, deadlines, degradation.
//!
//! [`Engine`] wraps a frozen [`Network`] (every forward pass runs with
//! `Mode::Eval` semantics via [`Network::infer`]) behind a bounded request
//! queue. Each [`Engine::poll`] drains up to one micro-batch, applies the
//! degradation ladder's current reuse policy to the network's reuse layers,
//! runs the batch, sanitises the output, and answers every request in the
//! batch with either logits or a typed [`RequestError`].
//!
//! The engine is synchronous and single-threaded by design: determinism is
//! a workspace invariant, and a deterministic queue discipline (FIFO
//! admission, FIFO batching) plus an injectable [`ServeClock`] is what lets
//! `tests/determinism.rs` replay a request stream bitwise.

use std::fs;
use std::path::Path;
use std::time::Duration;

use adr_core::faults::{ServeFaultKind, ServeFaultPlan};
use adr_core::state::TrainState;
use adr_nn::checkpoint::{Checkpoint, CheckpointError};
use adr_nn::network::Network;
use adr_nn::sgd::Sgd;
use adr_reuse::ReuseConv2d;
use adr_tensor::sanitize::first_non_finite;
use adr_tensor::Tensor4;

use crate::clock::{MonotonicClock, ServeClock};
use crate::error::{EngineError, RequestError};
use crate::ladder::{DegradationLadder, LadderConfig, LadderMove, StagePolicy};
use crate::report::{EngineReport, ServeEvent, ServeEventKind};

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Maximum requests buffered before further submissions are shed.
    pub queue_capacity: usize,
    /// Maximum requests folded into one micro-batch.
    pub max_batch: usize,
    /// Latency budget assigned to requests submitted without one.
    pub default_deadline: Duration,
    /// Batch latency the ladder's pressure signal is normalised against.
    pub target_batch_latency: Duration,
    /// Degradation ladder shape and thresholds.
    pub ladder: LadderConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 32,
            max_batch: 8,
            default_deadline: Duration::from_millis(250),
            target_batch_latency: Duration::from_millis(50),
            ladder: LadderConfig::default(),
        }
    }
}

/// One admitted, not-yet-served request.
struct Pending {
    id: u64,
    image: Tensor4,
    admitted_at: Duration,
    deadline: Duration,
}

/// A successfully served request.
#[derive(Clone, Debug, PartialEq)]
pub struct InferResponse {
    /// Request id returned by [`Engine::submit`].
    pub id: u64,
    /// Argmax class index.
    pub class: usize,
    /// Raw per-class logits.
    pub logits: Vec<f32>,
    /// Ladder stage the request's batch ran at (0 = exact).
    pub stage: usize,
    /// Admission-to-completion latency.
    pub latency: Duration,
}

/// The deadline-aware, load-shedding inference engine.
pub struct Engine {
    net: Network,
    cfg: EngineConfig,
    ladder: DegradationLadder,
    clock: Box<dyn ServeClock>,
    queue: std::collections::VecDeque<Pending>,
    faults: ServeFaultPlan,
    report: EngineReport,
    next_id: u64,
    batch_index: usize,
    /// The stage policy currently applied to the network's reuse layers;
    /// `None` forces a re-apply on the next batch. Tracked by *value* so a
    /// gateway driving per-tenant ladders through this engine never serves
    /// one tenant's batch under another tenant's reuse configuration.
    applied: Option<StagePolicy>,
    /// Latest observed per-batch drain time; seeds the `retry_after` hint
    /// on [`RequestError::Overloaded`]. Starts at the configured latency
    /// target until a real batch has been measured.
    drain_estimate: Duration,
    consecutive_poisoned: u32,
}

impl Engine {
    /// Wraps an already-built (and already-restored) network.
    ///
    /// # Errors
    /// Rejects a structurally invalid config (zero queue capacity, zero
    /// micro-batch size, zero latency target) or an invalid ladder.
    pub fn new(net: Network, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::with_clock(net, cfg, Box::new(MonotonicClock::new()))
    }

    /// [`Engine::new`] with an injected time source (tests use
    /// [`crate::clock::ManualClock`] for reproducible deadlines).
    ///
    /// # Errors
    /// Same contract as [`Engine::new`].
    pub fn with_clock(
        net: Network,
        cfg: EngineConfig,
        clock: Box<dyn ServeClock>,
    ) -> Result<Self, EngineError> {
        if cfg.queue_capacity == 0 {
            return Err(EngineError::BadConfig("queue capacity must be positive".into()));
        }
        if cfg.max_batch == 0 {
            return Err(EngineError::BadConfig("micro-batch size must be positive".into()));
        }
        if cfg.target_batch_latency.is_zero() {
            return Err(EngineError::BadConfig("target batch latency must be positive".into()));
        }
        let ladder = DegradationLadder::new(cfg.ladder.clone())?;
        let report = EngineReport {
            requests_per_stage: vec![0; ladder.num_stages()],
            ..EngineReport::default()
        };
        let drain_estimate = cfg.target_batch_latency;
        Ok(Self {
            net,
            cfg,
            ladder,
            clock,
            queue: std::collections::VecDeque::new(),
            faults: ServeFaultPlan::new(),
            report,
            next_id: 0,
            batch_index: 0,
            applied: None,
            drain_estimate,
            consecutive_poisoned: 0,
        })
    }

    /// Restores an `ADR1` parameter checkpoint into `net`, then wraps it.
    ///
    /// # Errors
    /// Propagates I/O and parse failures as [`EngineError::Checkpoint`],
    /// plus [`Engine::new`]'s config contract.
    pub fn load_checkpoint(
        path: impl AsRef<Path>,
        net: Network,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::load_checkpoint_with_faults(path, net, cfg, ServeFaultPlan::new())
    }

    /// [`Engine::load_checkpoint`] with a fault plan active during the load
    /// itself, so an armed [`ServeFaultPlan::corrupt_checkpoint_load`] can
    /// hit the bytes before parsing.
    ///
    /// # Errors
    /// Same contract as [`Engine::load_checkpoint`].
    pub fn load_checkpoint_with_faults(
        path: impl AsRef<Path>,
        mut net: Network,
        cfg: EngineConfig,
        mut faults: ServeFaultPlan,
    ) -> Result<Self, EngineError> {
        let mut bytes = fs::read(path.as_ref()).map_err(CheckpointError::from)?;
        faults.corrupt_load(&mut bytes);
        let checkpoint = Checkpoint::from_bytes(&bytes)?;
        checkpoint.restore(&mut net)?;
        let mut engine = Self::new(net, cfg)?;
        engine.faults = faults;
        Ok(engine)
    }

    /// Restores the model half of an `ADRS` train-state snapshot into
    /// `net`, then wraps it. Optimiser state in the snapshot is ignored —
    /// serving is frozen.
    ///
    /// # Errors
    /// Propagates I/O and parse failures as [`EngineError::State`], plus
    /// [`Engine::new`]'s config contract.
    pub fn load_train_state(
        path: impl AsRef<Path>,
        mut net: Network,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        let state = TrainState::load(path)?;
        let mut throwaway = Sgd::constant(0.0);
        state.restore_model(&mut net, &mut throwaway)?;
        Self::new(net, cfg)
    }

    /// Installs a fault plan for subsequent submissions and batches.
    pub fn set_fault_plan(&mut self, plan: ServeFaultPlan) {
        self.faults = plan;
    }

    /// Submits one image with the configured default deadline.
    ///
    /// # Errors
    /// See [`Engine::submit_with_deadline`].
    pub fn submit(&mut self, image: &Tensor4) -> Result<u64, RequestError> {
        self.submit_with_deadline(image, self.cfg.default_deadline)
    }

    /// Submits one image with an explicit latency budget, returning its
    /// request id.
    ///
    /// Validation order is deliberate: malformed requests (wrong batch,
    /// wrong shape, non-finite pixels) are rejected *before* the queue
    /// check, so garbage cannot occupy capacity that healthy traffic needs.
    ///
    /// # Errors
    /// [`RequestError::NotSingleImage`] / [`RequestError::ShapeMismatch`] /
    /// [`RequestError::NonFiniteInput`] for malformed requests,
    /// [`RequestError::Overloaded`] when the queue is full.
    pub fn submit_with_deadline(
        &mut self,
        image: &Tensor4,
        deadline: Duration,
    ) -> Result<u64, RequestError> {
        let mut image = image.clone();
        if self.faults.take_request_poison() {
            if let Some(first) = image.as_mut_slice().first_mut() {
                *first = f32::NAN;
            }
            self.event(ServeEventKind::PoisonFault, "request poisoned with NaN pixel".into());
        }
        let (n, h, w, c) = image.shape();
        if n != 1 {
            self.report.rejected_shape += 1;
            self.event(ServeEventKind::RejectedInput, format!("batch of {n} is not one image"));
            return Err(RequestError::NotSingleImage { batch: n });
        }
        let expected = self.net.input_shape();
        if (h, w, c) != expected {
            self.report.rejected_shape += 1;
            self.event(
                ServeEventKind::RejectedInput,
                format!("shape {h}x{w}x{c} rejected at admission"),
            );
            return Err(RequestError::ShapeMismatch { expected, found: (h, w, c) });
        }
        if let Some((index, value)) = first_non_finite(image.as_slice()) {
            self.report.rejected_non_finite += 1;
            self.event(
                ServeEventKind::RejectedInput,
                format!("non-finite pixel {value} at flat index {index}"),
            );
            return Err(RequestError::NonFiniteInput { index, value });
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.report.shed_overloaded += 1;
            self.event(
                ServeEventKind::Overloaded,
                format!(
                    "queue {}/{} full, request shed",
                    self.queue.len(),
                    self.cfg.queue_capacity
                ),
            );
            return Err(RequestError::Overloaded {
                depth: self.queue.len(),
                capacity: self.cfg.queue_capacity,
                retry_after: self.retry_after_hint(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let admitted_at = self.clock.now();
        self.queue.push_back(Pending { id, image, admitted_at, deadline });
        self.report.admitted += 1;
        Ok(id)
    }

    /// Serves the next micro-batch, answering each request in it.
    ///
    /// Returns `(request id, outcome)` pairs in admission order; an empty
    /// vec when the queue is idle.
    pub fn poll(&mut self) -> Vec<(u64, Result<InferResponse, RequestError>)> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let batch_index = self.batch_index;
        self.batch_index += 1;
        let t0 = self.clock.now();

        let mut poison_output = false;
        for fault in self.faults.take_due(batch_index) {
            match fault {
                ServeFaultKind::SlowBatch { stall_ms } => {
                    self.event(
                        ServeEventKind::SlowBatchFault,
                        format!("injected {stall_ms} ms stall"),
                    );
                    self.clock.stall(Duration::from_millis(stall_ms));
                }
                ServeFaultKind::PoisonOutput => {
                    self.event(ServeEventKind::PoisonFault, "batch output will be poisoned".into());
                    poison_output = true;
                }
            }
        }

        let take = self.cfg.max_batch.min(self.queue.len());
        let pending: Vec<Pending> = self.queue.drain(..take).collect();
        let (h, w, c) = self.net.input_shape();
        let mut batch = Tensor4::zeros(pending.len(), h, w, c);
        {
            let image_len = h * w * c;
            let dst = batch.as_mut_slice();
            for (i, p) in pending.iter().enumerate() {
                dst[i * image_len..(i + 1) * image_len].copy_from_slice(p.image.as_slice());
            }
        }

        let stage_at_batch = self.ladder.stage();
        let policy = self.ladder.policy();
        if self.applied != Some(policy) {
            self.apply_policy(policy);
            self.applied = Some(policy);
        }

        let mut outcome = self.run_sanitized(&batch, poison_output, stage_at_batch);

        let t1 = self.clock.now();
        let batch_latency = t1.checked_sub(t0).unwrap_or_default();
        if !batch_latency.is_zero() {
            self.drain_estimate = batch_latency;
        }
        self.report.batches += 1;
        self.report.flops_actual = self.net.flops().forward;
        self.report.flops_exact = self.net.baseline_flops().forward;

        let latency_frac =
            batch_latency.as_secs_f32() / self.cfg.target_batch_latency.as_secs_f32();
        let queue_frac = self.queue.len() as f32 / self.cfg.queue_capacity as f32;
        match self.ladder.observe(latency_frac, queue_frac) {
            Some(LadderMove::Degraded { from, to }) => {
                self.report.degraded_steps += 1;
                self.event(
                    ServeEventKind::Degraded,
                    format!("stage {from} -> {to} (pressure {:.2})", self.ladder.pressure()),
                );
            }
            Some(LadderMove::Recovered { from, to }) => {
                self.report.recovered_steps += 1;
                self.event(
                    ServeEventKind::Recovered,
                    format!("stage {from} -> {to} (pressure {:.2})", self.ladder.pressure()),
                );
            }
            None => {}
        }

        if let Some(count) = self.report.requests_per_stage.get_mut(stage_at_batch) {
            *count += u64::try_from(pending.len()).unwrap_or(u64::MAX);
        }

        let classes = {
            let (oh, ow, oc) = self.net.output_shape();
            oh * ow * oc
        };
        let mut results = Vec::with_capacity(pending.len());
        for (i, p) in pending.iter().enumerate() {
            let elapsed = t1.checked_sub(p.admitted_at).unwrap_or_default();
            self.report.latency.record(elapsed);
            let answer = match &mut outcome {
                Ok(logits) => {
                    if elapsed > p.deadline {
                        self.report.deadline_missed += 1;
                        let budget_ms = duration_ms(p.deadline);
                        let elapsed_ms = duration_ms(elapsed);
                        self.event(
                            ServeEventKind::DeadlineMissed,
                            format!("request {} budget {budget_ms} ms, took {elapsed_ms} ms", p.id),
                        );
                        Err(RequestError::DeadlineExceeded { budget_ms, elapsed_ms })
                    } else {
                        let row = logits.as_slice()[i * classes..(i + 1) * classes].to_vec();
                        let class = row
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(idx, _)| idx)
                            .unwrap_or(0);
                        self.report.completed += 1;
                        Ok(InferResponse {
                            id: p.id,
                            class,
                            logits: row,
                            stage: stage_at_batch,
                            latency: elapsed,
                        })
                    }
                }
                Err(e) => Err(e.clone()),
            };
            results.push((p.id, answer));
        }
        results
    }

    /// Runs the batch forward, quarantining and retrying a poisoned output
    /// on the exact GEMM path. Returns logits or the error every request in
    /// the batch is failed with.
    fn run_sanitized(
        &mut self,
        batch: &Tensor4,
        poison_output: bool,
        stage_at_batch: usize,
    ) -> Result<Tensor4, RequestError> {
        let mut logits = match self.net.infer(batch) {
            Ok(t) => t,
            // Unreachable: admission pinned every image to the input shape.
            Err(e) => {
                return Err(RequestError::ShapeMismatch { expected: e.expected, found: e.found })
            }
        };
        if poison_output {
            if let Some(first) = logits.as_mut_slice().first_mut() {
                *first = f32::NAN;
            }
        }
        let Some((index, value)) = first_non_finite(logits.as_slice()) else {
            self.consecutive_poisoned = 0;
            return Ok(logits);
        };
        self.report.quarantined_batches += 1;
        self.event(
            ServeEventKind::QuarantinedBatch,
            format!("stage {stage_at_batch} output {value} at flat index {index}"),
        );
        // Retry once on the exact path: if the poison came from aggressive
        // clustering state, the exact GEMM clears it.
        self.report.retried_batches += 1;
        self.event(ServeEventKind::RetriedExact, "re-running batch on exact GEMM".into());
        self.apply_policy(StagePolicy::Exact);
        self.applied = None;
        let retried = match self.net.infer(batch) {
            Ok(t) => t,
            Err(e) => {
                return Err(RequestError::ShapeMismatch { expected: e.expected, found: e.found })
            }
        };
        match first_non_finite(retried.as_slice()) {
            None => {
                self.consecutive_poisoned = 0;
                Ok(retried)
            }
            Some((index, _)) => {
                // Still poisoned on the exact path: the poison is in the
                // inputs or weights, not the reuse approximation. Fail the
                // batch rather than surface NaN.
                self.consecutive_poisoned += 1;
                self.report.failed_non_finite += u64::try_from(batch.shape().0).unwrap_or(u64::MAX);
                Err(RequestError::NonFiniteOutput { index })
            }
        }
    }

    /// Serves every queued request to completion.
    pub fn drain(&mut self) -> Vec<(u64, Result<InferResponse, RequestError>)> {
        let mut all = Vec::new();
        while !self.queue.is_empty() {
            all.extend(self.poll());
        }
        all
    }

    /// Convenience: submit a whole request stream and serve it, returning
    /// one outcome per input in input order.
    pub fn serve_all(&mut self, images: &[Tensor4]) -> Vec<Result<InferResponse, RequestError>> {
        // Placeholder overwritten for every input below: each image either
        // fails at submit or is answered by drain().
        let mut out: Vec<Result<InferResponse, RequestError>> = vec![
            Err(RequestError::Overloaded {
                depth: 0,
                capacity: 0,
                retry_after: Duration::ZERO
            });
            images.len()
        ];
        let mut id_to_index: Vec<(u64, usize)> = Vec::with_capacity(images.len());
        for (i, image) in images.iter().enumerate() {
            match self.submit(image) {
                Ok(id) => id_to_index.push((id, i)),
                Err(e) => {
                    if let Some(slot) = out.get_mut(i) {
                        *slot = Err(e);
                    }
                }
            }
        }
        for (id, result) in self.drain() {
            if let Some(&(_, i)) = id_to_index.iter().find(|(known, _)| *known == id) {
                if let Some(slot) = out.get_mut(i) {
                    *slot = result;
                }
            }
        }
        out
    }

    /// Backoff hint for shed requests: batches left to drain the queue
    /// times the last observed (or configured) per-batch latency.
    fn retry_after_hint(&self) -> Duration {
        let batches_left = self.queue.len().div_ceil(self.cfg.max_batch).max(1);
        self.drain_estimate * u32::try_from(batches_left).unwrap_or(u32::MAX)
    }

    /// Runs one externally assembled batch under an externally chosen
    /// policy. This is the gateway's execution hook: the gateway owns
    /// admission, queueing, and the per-tenant ladders, and uses the engine
    /// purely as a replica executor — policy application, NaN quarantine
    /// with exact retry, and FLOP/batch accounting all behave exactly as in
    /// [`Engine::poll`].
    ///
    /// # Errors
    /// [`RequestError::NonFiniteOutput`] when the batch stays poisoned even
    /// on the exact retry; [`RequestError::ShapeMismatch`] if the batch
    /// disagrees with the network (unreachable when the gateway validates
    /// at admission).
    pub(crate) fn run_gateway_batch(
        &mut self,
        batch: &Tensor4,
        policy: StagePolicy,
        stage: usize,
        poison_output: bool,
    ) -> Result<Tensor4, RequestError> {
        self.batch_index += 1;
        if self.applied != Some(policy) {
            self.apply_policy(policy);
            self.applied = Some(policy);
        }
        let outcome = self.run_sanitized(batch, poison_output, stage);
        self.report.batches += 1;
        self.report.flops_actual = self.net.flops().forward;
        self.report.flops_exact = self.net.baseline_flops().forward;
        if let Some(count) = self.report.requests_per_stage.get_mut(stage) {
            *count += u64::try_from(batch.shape().0).unwrap_or(u64::MAX);
        }
        outcome
    }

    /// Applies a stage policy to every reuse layer in the network. Dense
    /// layers are unaffected — a dense-only network simply has no dial.
    fn apply_policy(&mut self, policy: StagePolicy) {
        for layer in self.net.layers_mut() {
            if let Some(any) = layer.as_any_mut() {
                if let Some(reuse) = any.downcast_mut::<ReuseConv2d>() {
                    match policy {
                        StagePolicy::Exact => reuse.exact_fallback(),
                        StagePolicy::Reuse { sub_vector_len, num_hashes, cluster_reuse } => {
                            reuse.set_reuse_params(sub_vector_len, num_hashes, cluster_reuse);
                        }
                    }
                }
            }
        }
    }

    /// Readiness probe: the engine holds a restored network and can accept
    /// traffic. Construction already validated everything, so this is
    /// `true` for any live engine — the probe exists for the serving loop.
    pub fn ready(&self) -> bool {
        true
    }

    /// Liveness/health probe: `false` once repeated batches stayed
    /// non-finite even on the exact path (poison is upstream of reuse, the
    /// instance needs its checkpoint investigated).
    pub fn healthy(&self) -> bool {
        self.consecutive_poisoned < 3
    }

    /// Current ladder stage (0 = exact/best quality).
    pub fn stage(&self) -> usize {
        self.ladder.stage()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated telemetry.
    pub fn report(&self) -> &EngineReport {
        &self.report
    }

    /// Consumes the engine, returning its telemetry.
    pub fn into_report(self) -> EngineReport {
        self.report
    }

    /// The frozen network's expected per-image input shape.
    pub fn input_shape(&self) -> adr_nn::layer::Shape3 {
        self.net.input_shape()
    }

    /// The frozen network's per-image output shape.
    pub fn output_shape(&self) -> adr_nn::layer::Shape3 {
        self.net.output_shape()
    }

    fn event(&mut self, kind: ServeEventKind, detail: String) {
        self.report.events.push(ServeEvent { batch: self.batch_index, kind, detail });
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use adr_nn::conv::Conv2d;
    use adr_nn::dense::Dense;
    use adr_nn::relu::Relu;
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let geom = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(Conv2d::new("conv1", geom, 4, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 4, 3, &mut rng)));
        net
    }

    fn manual_engine(cfg: EngineConfig) -> Engine {
        Engine::with_clock(tiny_net(9), cfg, Box::new(ManualClock::new())).unwrap()
    }

    fn image(seed: f32) -> Tensor4 {
        Tensor4::from_fn(1, 6, 6, 1, |_, y, x, _| seed + (y * 6 + x) as f32 * 0.01)
    }

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        let cfg = EngineConfig { queue_capacity: 0, ..EngineConfig::default() };
        assert!(matches!(
            Engine::new(tiny_net(1), cfg),
            Err(EngineError::BadConfig(msg)) if msg.contains("queue")
        ));
        let cfg = EngineConfig { max_batch: 0, ..EngineConfig::default() };
        assert!(matches!(Engine::new(tiny_net(1), cfg), Err(EngineError::BadConfig(_))));
        let cfg = EngineConfig { target_batch_latency: Duration::ZERO, ..EngineConfig::default() };
        assert!(matches!(Engine::new(tiny_net(1), cfg), Err(EngineError::BadConfig(_))));
    }

    #[test]
    fn admission_rejects_malformed_requests_before_the_queue() {
        let mut engine = manual_engine(EngineConfig::default());
        let two_images = Tensor4::zeros(2, 6, 6, 1);
        assert_eq!(engine.submit(&two_images), Err(RequestError::NotSingleImage { batch: 2 }));
        let wrong_shape = Tensor4::zeros(1, 4, 4, 1);
        assert!(matches!(
            engine.submit(&wrong_shape),
            Err(RequestError::ShapeMismatch { expected: (6, 6, 1), found: (4, 4, 1) })
        ));
        let mut nan = image(0.0);
        nan.as_mut_slice()[7] = f32::NAN;
        assert!(matches!(engine.submit(&nan), Err(RequestError::NonFiniteInput { index: 7, .. })));
        assert_eq!(engine.report().admitted, 0);
        assert_eq!(engine.report().rejected_shape, 2);
        assert_eq!(engine.report().rejected_non_finite, 1);
        assert_eq!(engine.report().events_of(ServeEventKind::RejectedInput), 3);
    }

    #[test]
    fn full_queue_sheds_with_typed_backpressure() {
        let cfg = EngineConfig { queue_capacity: 2, ..EngineConfig::default() };
        let mut engine = manual_engine(cfg);
        assert!(engine.submit(&image(0.1)).is_ok());
        assert!(engine.submit(&image(0.2)).is_ok());
        match engine.submit(&image(0.3)) {
            Err(RequestError::Overloaded { depth: 2, capacity: 2, retry_after }) => {
                // No batch has run yet, so the drain estimate is the
                // configured target latency; 2 queued / max_batch 8 = one
                // batch left to drain.
                assert_eq!(retry_after, EngineConfig::default().target_batch_latency);
            }
            other => panic!("expected typed shed, got {other:?}"),
        }
        assert_eq!(engine.report().shed_overloaded, 1);
        assert_eq!(engine.queue_depth(), 2);
    }

    #[test]
    fn poll_micro_batches_fifo_and_answers_every_request() {
        let cfg = EngineConfig { max_batch: 2, ..EngineConfig::default() };
        let mut engine = manual_engine(cfg);
        let ids: Vec<u64> =
            (0..3).map(|i| engine.submit(&image(i as f32 * 0.1)).unwrap()).collect();
        let first = engine.poll();
        assert_eq!(first.len(), 2, "micro-batch caps at max_batch");
        assert_eq!(first[0].0, ids[0]);
        assert_eq!(first[1].0, ids[1]);
        let second = engine.poll();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].0, ids[2]);
        assert!(engine.poll().is_empty(), "idle engine serves nothing");
        for (_, r) in first.iter().chain(second.iter()) {
            let resp = r.as_ref().unwrap();
            assert!(resp.logits.iter().all(|v| v.is_finite()));
            assert_eq!(resp.logits.len(), 3);
            assert_eq!(resp.stage, 0);
        }
        assert_eq!(engine.report().completed, 3);
        assert_eq!(engine.report().batches, 2);
        assert_eq!(engine.report().requests_per_stage[0], 3);
    }

    #[test]
    fn deadlines_are_enforced_from_admission_time() {
        let mut engine = manual_engine(EngineConfig::default());
        let id = engine.submit_with_deadline(&image(0.5), Duration::from_millis(10)).unwrap();
        // A fault stalls the batch past the request's budget.
        engine.set_fault_plan(
            ServeFaultPlan::new().inject_at_batch(0, ServeFaultKind::SlowBatch { stall_ms: 40 }),
        );
        let results = engine.poll();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, id);
        assert_eq!(
            results[0].1,
            Err(RequestError::DeadlineExceeded { budget_ms: 10, elapsed_ms: 40 })
        );
        assert_eq!(engine.report().deadline_missed, 1);
        assert_eq!(engine.report().events_of(ServeEventKind::SlowBatchFault), 1);
        assert_eq!(engine.report().events_of(ServeEventKind::DeadlineMissed), 1);
    }

    #[test]
    fn poisoned_output_is_quarantined_and_never_surfaces() {
        let mut engine = manual_engine(EngineConfig::default());
        engine
            .set_fault_plan(ServeFaultPlan::new().inject_at_batch(0, ServeFaultKind::PoisonOutput));
        engine.submit(&image(0.3)).unwrap();
        let results = engine.poll();
        // The poison is re-injected only once (one-shot); the exact retry
        // comes back clean, so the caller still gets finite logits... but
        // the quarantine + retry are on the record.
        // Note: PoisonOutput fires pre-forward as a flag and poisons the
        // first forward's logits; the retry forward is clean.
        let resp = results[0].1.as_ref().unwrap();
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        assert_eq!(engine.report().quarantined_batches, 1);
        assert_eq!(engine.report().retried_batches, 1);
        assert_eq!(engine.report().events_of(ServeEventKind::QuarantinedBatch), 1);
        assert_eq!(engine.report().events_of(ServeEventKind::RetriedExact), 1);
        assert!(engine.healthy());
    }

    #[test]
    fn serve_all_preserves_input_order() {
        let cfg = EngineConfig { queue_capacity: 2, max_batch: 2, ..EngineConfig::default() };
        let mut engine = manual_engine(cfg);
        let images = vec![image(0.1), image(0.2), image(0.3)];
        let results = engine.serve_all(&images);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        // Third submission arrives while two are queued: shed.
        assert!(matches!(results[2], Err(RequestError::Overloaded { .. })));
    }

    #[test]
    fn probes_report_ready_and_healthy() {
        let engine = manual_engine(EngineConfig::default());
        assert!(engine.ready());
        assert!(engine.healthy());
        assert_eq!(engine.stage(), 0);
        assert_eq!(engine.input_shape(), (6, 6, 1));
    }
}
