//! The multi-tenant serving gateway: registry, admission, fair scheduling.
//!
//! A [`Gateway`] fronts a [`ModelRegistry`] of independent engine replicas
//! with per-tenant admission and *isolated* degradation:
//!
//! * **Admission order** — `UnknownModel` / `UnknownTenant` first, then
//!   request validation (shape, finiteness), then the tenant's token
//!   bucket ([`RequestError::RateLimited`] with an exact `retry_after`),
//!   then the tenant's fair share of the queue
//!   ([`RequestError::Overloaded`], also with `retry_after`). Malformed
//!   requests never spend a token; rate-limited requests never occupy
//!   queue capacity.
//! * **Fair share** — the configured queue capacity is divided evenly
//!   across tenants (`capacity.div_ceil(tenants)` per lane), so one
//!   bursting tenant can exhaust only its own slice.
//! * **Lanes** — requests queue per `(model, tenant)` lane, and each lane
//!   owns its own [`DegradationLadder`]. [`Gateway::poll`] serves one lane
//!   per call, visiting non-empty lanes round-robin in key order; the
//!   replica runs the batch under *that lane's* ladder policy. A bursting
//!   tenant therefore walks only its own ladder down while a quiet
//!   tenant's requests keep running the exact path — bitwise equal to a
//!   dense forward (`tests/gateway.rs` pins this).
//! * **Hot swap** — [`Gateway::swap`] delegates to the registry's
//!   load-new → warm-verify → atomic-flip state machine. In-flight
//!   requests live in the gateway's lanes, never inside a replica, so a
//!   generation flip cannot drop them: zero-downtime by construction.
//!
//! Determinism mirrors the engine: all time flows through one injected
//! [`ServeClock`], all per-tenant state lives in `BTreeMap`s, and
//! scheduling is a pure function of the queue contents — the same request
//! stream against the same artifacts replays bitwise under `ManualClock`.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::time::Duration;

use adr_core::faults::{ServeFaultKind, ServeFaultPlan};
use adr_tensor::sanitize::first_non_finite;
use adr_tensor::Tensor4;

use crate::clock::{MonotonicClock, ServeClock};
use crate::engine::{EngineConfig, InferResponse};
use crate::error::{EngineError, RequestError, SwapError};
use crate::ladder::DegradationLadder;
use crate::ladder::LadderMove;
use crate::registry::{ArtifactKind, ModelRegistry, NetFactory};
use crate::report::{
    EngineReport, GatewayReport, ModelCounters, ServeEvent, ServeEventKind, TenantCounters,
};
use crate::tenant::{TenantConfig, TokenBucket};

/// Gateway-level knobs; per-tenant policy lives in [`TenantConfig`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Total queued requests per model, divided fairly across tenants.
    pub queue_capacity: usize,
    /// Maximum requests folded into one micro-batch.
    pub max_batch: usize,
    /// Batch latency the per-lane pressure signals are normalised against.
    pub target_batch_latency: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self { queue_capacity: 32, max_batch: 8, target_batch_latency: Duration::from_millis(50) }
    }
}

/// One admitted, not-yet-served gateway request.
struct GwPending {
    id: u64,
    image: Tensor4,
    admitted_at: Duration,
    deadline: Duration,
}

/// One `(model, tenant)` queue with its own degradation ladder.
struct Lane {
    queue: VecDeque<GwPending>,
    ladder: DegradationLadder,
}

/// One tenant's live admission state.
struct TenantState {
    cfg: TenantConfig,
    bucket: TokenBucket,
}

/// The multi-tenant gateway over a model registry.
pub struct Gateway {
    cfg: GatewayConfig,
    registry: ModelRegistry,
    tenants: BTreeMap<String, TenantState>,
    /// `model -> tenant -> lane`; nested (rather than tuple-keyed) so hot
    /// lookups borrow `&str` without allocating a key.
    lanes: BTreeMap<String, BTreeMap<String, Lane>>,
    clock: Box<dyn ServeClock>,
    faults: ServeFaultPlan,
    report: GatewayReport,
    next_id: u64,
    batch_index: usize,
    /// Last lane served, for deterministic round-robin across lanes.
    last_served: Option<(String, String)>,
    /// Latest observed per-batch drain time, seeding `retry_after` hints.
    drain_estimate: Duration,
}

impl Gateway {
    /// A gateway on the monotonic wall clock.
    ///
    /// # Errors
    /// Rejects a structurally invalid config (zero queue capacity, zero
    /// micro-batch size, zero latency target).
    pub fn new(cfg: GatewayConfig) -> Result<Self, EngineError> {
        Self::with_clock(cfg, Box::new(MonotonicClock::new()))
    }

    /// [`Gateway::new`] with an injected time source (tests use
    /// [`crate::clock::ManualClock`] for bitwise-reproducible scheduling).
    ///
    /// # Errors
    /// Same contract as [`Gateway::new`].
    pub fn with_clock(cfg: GatewayConfig, clock: Box<dyn ServeClock>) -> Result<Self, EngineError> {
        if cfg.queue_capacity == 0 {
            return Err(EngineError::BadConfig("queue capacity must be positive".into()));
        }
        if cfg.max_batch == 0 {
            return Err(EngineError::BadConfig("micro-batch size must be positive".into()));
        }
        if cfg.target_batch_latency.is_zero() {
            return Err(EngineError::BadConfig("target batch latency must be positive".into()));
        }
        let drain_estimate = cfg.target_batch_latency;
        Ok(Self {
            cfg,
            registry: ModelRegistry::new(),
            tenants: BTreeMap::new(),
            lanes: BTreeMap::new(),
            clock,
            faults: ServeFaultPlan::new(),
            report: GatewayReport::default(),
            next_id: 0,
            batch_index: 0,
            last_served: None,
            drain_estimate,
        })
    }

    /// Loads `path` as `kind` into a network built by `factory` and
    /// registers it under `name`, creating a lane for every known tenant.
    ///
    /// # Errors
    /// Duplicate names and load failures, per
    /// [`ModelRegistry::register`][crate::registry::ModelRegistry].
    pub fn register_model(
        &mut self,
        name: &str,
        kind: ArtifactKind,
        path: impl AsRef<Path>,
        factory: NetFactory,
    ) -> Result<(), EngineError> {
        let engine_cfg = EngineConfig {
            queue_capacity: self.cfg.queue_capacity,
            max_batch: self.cfg.max_batch,
            target_batch_latency: self.cfg.target_batch_latency,
            ..EngineConfig::default()
        };
        self.registry.register(name, kind, path, factory, engine_cfg)?;
        let mut lanes = BTreeMap::new();
        for (tenant, state) in &self.tenants {
            lanes.insert(
                tenant.clone(),
                Lane {
                    queue: VecDeque::new(),
                    ladder: DegradationLadder::new(state.cfg.ladder.clone())?,
                },
            );
        }
        self.lanes.insert(name.to_string(), lanes);
        self.report.models.insert(name.to_string(), ModelCounters::default());
        Ok(())
    }

    /// Registers a tenant, creating its token bucket (full, as of the
    /// current clock) and one lane per registered model.
    ///
    /// # Errors
    /// [`EngineError::BadConfig`] for duplicate names, a zero rate or
    /// burst, or an invalid ladder configuration.
    pub fn add_tenant(&mut self, name: &str, cfg: TenantConfig) -> Result<(), EngineError> {
        if self.tenants.contains_key(name) {
            return Err(EngineError::BadConfig(format!("tenant '{name}' already registered")));
        }
        if cfg.rate_per_sec == 0 {
            return Err(EngineError::BadConfig("tenant rate must be positive".into()));
        }
        if cfg.burst == 0 {
            return Err(EngineError::BadConfig("tenant burst must be positive".into()));
        }
        // Validates the ladder config once; per-model lanes clone it.
        let ladder = DegradationLadder::new(cfg.ladder.clone())?;
        for lanes in self.lanes.values_mut() {
            lanes.insert(
                name.to_string(),
                Lane {
                    queue: VecDeque::new(),
                    ladder: DegradationLadder::new(cfg.ladder.clone())?,
                },
            );
        }
        self.report.tenants.insert(
            name.to_string(),
            TenantCounters {
                requests_per_stage: vec![0; ladder.num_stages()],
                ..TenantCounters::default()
            },
        );
        let bucket = TokenBucket::new(cfg.rate_per_sec, cfg.burst, self.clock.now());
        self.tenants.insert(name.to_string(), TenantState { cfg, bucket });
        Ok(())
    }

    /// Installs a fault plan for subsequent submissions, batches and swaps.
    pub fn set_fault_plan(&mut self, plan: ServeFaultPlan) {
        self.faults = plan;
    }

    /// Submits one image for `tenant` against `model` with the tenant's
    /// default deadline.
    ///
    /// # Errors
    /// See [`Gateway::submit_with_deadline`].
    pub fn submit(
        &mut self,
        model: &str,
        tenant: &str,
        image: &Tensor4,
    ) -> Result<u64, RequestError> {
        let deadline = match self.tenants.get(tenant) {
            Some(state) => state.cfg.default_deadline,
            // Rejected as UnknownTenant below; the value is never used.
            None => Duration::ZERO,
        };
        self.submit_with_deadline(model, tenant, image, deadline)
    }

    /// Submits one image with an explicit latency budget, returning its
    /// request id.
    ///
    /// # Errors
    /// [`RequestError::UnknownModel`] / [`RequestError::UnknownTenant`]
    /// for unregistered names; [`RequestError::NotSingleImage`] /
    /// [`RequestError::ShapeMismatch`] / [`RequestError::NonFiniteInput`]
    /// for malformed requests; [`RequestError::RateLimited`] when the
    /// tenant's bucket is empty; [`RequestError::Overloaded`] when the
    /// tenant's fair queue share is full.
    pub fn submit_with_deadline(
        &mut self,
        model: &str,
        tenant: &str,
        image: &Tensor4,
        deadline: Duration,
    ) -> Result<u64, RequestError> {
        let expected = match self.registry.engine(model) {
            Some(engine) => engine.input_shape(),
            None => {
                self.event(ServeEventKind::RejectedInput, format!("unknown model '{model}'"));
                return Err(RequestError::UnknownModel { model: model.to_string() });
            }
        };
        if !self.tenants.contains_key(tenant) {
            self.event(ServeEventKind::RejectedInput, format!("unknown tenant '{tenant}'"));
            return Err(RequestError::UnknownTenant { tenant: tenant.to_string() });
        }
        let mut image = image.clone();
        if self.faults.take_request_poison() {
            if let Some(first) = image.as_mut_slice().first_mut() {
                *first = f32::NAN;
            }
            self.event(ServeEventKind::PoisonFault, "request poisoned with NaN pixel".into());
        }
        let (n, h, w, c) = image.shape();
        if n != 1 {
            if let Some(counters) = self.report.tenants.get_mut(tenant) {
                counters.rejected_shape += 1;
            }
            self.event(ServeEventKind::RejectedInput, format!("batch of {n} is not one image"));
            return Err(RequestError::NotSingleImage { batch: n });
        }
        if (h, w, c) != expected {
            if let Some(counters) = self.report.tenants.get_mut(tenant) {
                counters.rejected_shape += 1;
            }
            self.event(
                ServeEventKind::RejectedInput,
                format!("shape {h}x{w}x{c} rejected at admission"),
            );
            return Err(RequestError::ShapeMismatch { expected, found: (h, w, c) });
        }
        if let Some((index, value)) = first_non_finite(image.as_slice()) {
            if let Some(counters) = self.report.tenants.get_mut(tenant) {
                counters.rejected_non_finite += 1;
            }
            self.event(
                ServeEventKind::RejectedInput,
                format!("non-finite pixel {value} at flat index {index}"),
            );
            return Err(RequestError::NonFiniteInput { index, value });
        }
        let now = self.clock.now();
        if let Some(state) = self.tenants.get_mut(tenant) {
            if let Err(retry_after) = state.bucket.try_take(now) {
                if let Some(counters) = self.report.tenants.get_mut(tenant) {
                    counters.rate_limited += 1;
                }
                self.event(
                    ServeEventKind::RateLimited,
                    format!(
                        "tenant '{tenant}' bucket empty, retry in {} ms",
                        retry_after.as_millis()
                    ),
                );
                return Err(RequestError::RateLimited { retry_after });
            }
        }
        let cap = self.per_tenant_cap();
        let retry_after = self.retry_after_hint();
        let Some(lane) = self.lanes.get_mut(model).and_then(|m| m.get_mut(tenant)) else {
            // Unreachable: both names were validated above.
            return Err(RequestError::UnknownModel { model: model.to_string() });
        };
        if lane.queue.len() >= cap {
            let depth = lane.queue.len();
            if let Some(counters) = self.report.tenants.get_mut(tenant) {
                counters.shed_overloaded += 1;
            }
            self.event(
                ServeEventKind::Overloaded,
                format!("tenant '{tenant}' lane {depth}/{cap} full, request shed"),
            );
            return Err(RequestError::Overloaded { depth, capacity: cap, retry_after });
        }
        let id = self.next_id;
        self.next_id += 1;
        lane.queue.push_back(GwPending { id, image, admitted_at: now, deadline });
        if let Some(counters) = self.report.tenants.get_mut(tenant) {
            counters.admitted += 1;
        }
        Ok(id)
    }

    /// Serves one micro-batch from the next non-empty lane (round-robin in
    /// `(model, tenant)` key order), answering each request in it.
    ///
    /// Returns `(request id, outcome)` pairs in admission order; an empty
    /// vec when every lane is idle.
    pub fn poll(&mut self) -> Vec<(u64, Result<InferResponse, RequestError>)> {
        let Some((model, tenant)) = self.next_lane() else {
            return Vec::new();
        };
        let batch_index = self.batch_index;
        self.batch_index += 1;
        let t0 = self.clock.now();

        let mut poison_output = false;
        for fault in self.faults.take_due(batch_index) {
            match fault {
                ServeFaultKind::SlowBatch { stall_ms } => {
                    self.event(
                        ServeEventKind::SlowBatchFault,
                        format!("injected {stall_ms} ms stall"),
                    );
                    self.clock.stall(Duration::from_millis(stall_ms));
                }
                ServeFaultKind::PoisonOutput => {
                    self.event(ServeEventKind::PoisonFault, "batch output will be poisoned".into());
                    poison_output = true;
                }
            }
        }
        if self.faults.take_tenant_poison(&tenant) {
            self.event(
                ServeEventKind::PoisonFault,
                format!("tenant '{tenant}' batch output will be poisoned"),
            );
            poison_output = true;
        }

        let max_batch = self.cfg.max_batch;
        let (pending, stage, policy) = match self.lane_mut(&model, &tenant) {
            Some(lane) => {
                let take = max_batch.min(lane.queue.len());
                let pending: Vec<GwPending> = lane.queue.drain(..take).collect();
                (pending, lane.ladder.stage(), lane.ladder.policy())
            }
            None => return Vec::new(),
        };

        let Some(entry) = self.registry.entry_mut(&model) else {
            return Vec::new();
        };
        let (h, w, c) = entry.engine.input_shape();
        let mut batch = Tensor4::zeros(pending.len(), h, w, c);
        {
            let image_len = h * w * c;
            let dst = batch.as_mut_slice();
            for (i, p) in pending.iter().enumerate() {
                dst[i * image_len..(i + 1) * image_len].copy_from_slice(p.image.as_slice());
            }
        }
        let mut outcome = entry.engine.run_gateway_batch(&batch, policy, stage, poison_output);
        let classes = {
            let (oh, ow, oc) = entry.engine.output_shape();
            oh * ow * oc
        };
        let generation = entry.generation;
        let engine_report = entry.engine.report();
        let (flops_actual, flops_exact) = (engine_report.flops_actual, engine_report.flops_exact);

        let t1 = self.clock.now();
        let batch_latency = t1.checked_sub(t0).unwrap_or_default();
        if !batch_latency.is_zero() {
            self.drain_estimate = batch_latency;
        }
        self.report.batches += 1;
        if let Some(m) = self.report.models.get_mut(&model) {
            m.batches += 1;
            m.generation = generation;
            m.flops_actual = flops_actual;
            m.flops_exact = flops_exact;
        }

        let cap = self.per_tenant_cap();
        let latency_frac =
            batch_latency.as_secs_f32() / self.cfg.target_batch_latency.as_secs_f32();
        let ladder_move = match self.lane_mut(&model, &tenant) {
            Some(lane) => {
                let queue_frac = lane.queue.len() as f32 / cap as f32;
                lane.ladder.observe(latency_frac, queue_frac)
            }
            None => None,
        };
        match ladder_move {
            Some(LadderMove::Degraded { from, to }) => {
                self.event(
                    ServeEventKind::Degraded,
                    format!("tenant '{tenant}' on '{model}': stage {from} -> {to}"),
                );
            }
            Some(LadderMove::Recovered { from, to }) => {
                self.event(
                    ServeEventKind::Recovered,
                    format!("tenant '{tenant}' on '{model}': stage {from} -> {to}"),
                );
            }
            None => {}
        }

        let mut results = Vec::with_capacity(pending.len());
        for (i, p) in pending.iter().enumerate() {
            let elapsed = t1.checked_sub(p.admitted_at).unwrap_or_default();
            self.report.latency.record(elapsed);
            let answer = match &mut outcome {
                Ok(logits) => {
                    if elapsed > p.deadline {
                        let budget_ms = duration_ms(p.deadline);
                        let elapsed_ms = duration_ms(elapsed);
                        if let Some(counters) = self.report.tenants.get_mut(&tenant) {
                            counters.deadline_missed += 1;
                        }
                        self.event(
                            ServeEventKind::DeadlineMissed,
                            format!("request {} budget {budget_ms} ms, took {elapsed_ms} ms", p.id),
                        );
                        Err(RequestError::DeadlineExceeded { budget_ms, elapsed_ms })
                    } else {
                        let row = logits.as_slice()[i * classes..(i + 1) * classes].to_vec();
                        let class = row
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(idx, _)| idx)
                            .unwrap_or(0);
                        if let Some(counters) = self.report.tenants.get_mut(&tenant) {
                            counters.completed += 1;
                            if let Some(count) = counters.requests_per_stage.get_mut(stage) {
                                *count += 1;
                            }
                        }
                        Ok(InferResponse { id: p.id, class, logits: row, stage, latency: elapsed })
                    }
                }
                Err(e) => {
                    if let Some(counters) = self.report.tenants.get_mut(&tenant) {
                        if matches!(e, RequestError::NonFiniteOutput { .. }) {
                            counters.failed_non_finite += 1;
                        }
                    }
                    Err(e.clone())
                }
            };
            results.push((p.id, answer));
        }
        results
    }

    /// Serves every queued request in every lane to completion.
    pub fn drain(&mut self) -> Vec<(u64, Result<InferResponse, RequestError>)> {
        let mut all = Vec::new();
        while self.queued_total() > 0 {
            all.extend(self.poll());
        }
        all
    }

    /// Hot-swaps `model` to the artifact at `path`; see
    /// [`crate::registry`] for the swap state machine. In-flight requests
    /// stay queued in the gateway's lanes throughout, so neither a
    /// successful flip nor a rollback can drop them.
    ///
    /// # Errors
    /// Typed [`SwapError`]; the previous generation keeps serving on any
    /// error.
    pub fn swap(&mut self, model: &str, path: impl AsRef<Path>) -> Result<u64, SwapError> {
        self.event(ServeEventKind::SwapStarted, format!("model '{model}' swap requested"));
        match self.registry.swap(model, path, &mut self.faults) {
            Ok(generation) => {
                if let Some(m) = self.report.models.get_mut(model) {
                    m.swaps_completed += 1;
                    m.generation = generation;
                }
                self.event(
                    ServeEventKind::SwapCompleted,
                    format!("model '{model}' now at generation {generation}"),
                );
                Ok(generation)
            }
            Err(e) => {
                if let Some(m) = self.report.models.get_mut(model) {
                    m.swaps_rolled_back += 1;
                }
                self.event(ServeEventKind::SwapRolledBack, format!("model '{model}': {e}"));
                Err(e)
            }
        }
    }

    /// Each tenant's slice of a model's queue capacity.
    fn per_tenant_cap(&self) -> usize {
        self.cfg.queue_capacity.div_ceil(self.tenants.len().max(1))
    }

    /// Backoff hint: batches left to drain everything queued, times the
    /// last observed (or configured) per-batch latency.
    fn retry_after_hint(&self) -> Duration {
        let batches_left = self.queued_total().div_ceil(self.cfg.max_batch).max(1);
        self.drain_estimate * u32::try_from(batches_left).unwrap_or(u32::MAX)
    }

    /// Requests queued across every lane.
    fn queued_total(&self) -> usize {
        self.lanes.values().flat_map(|m| m.values()).map(|lane| lane.queue.len()).sum()
    }

    fn lane_mut(&mut self, model: &str, tenant: &str) -> Option<&mut Lane> {
        self.lanes.get_mut(model).and_then(|m| m.get_mut(tenant))
    }

    /// The next non-empty lane strictly after the last one served (in
    /// `(model, tenant)` key order), wrapping to the first — deterministic
    /// round-robin over whatever lanes currently hold work.
    fn next_lane(&mut self) -> Option<(String, String)> {
        let mut first: Option<(&str, &str)> = None;
        let mut after: Option<(&str, &str)> = None;
        let last = self.last_served.as_ref().map(|(m, t)| (m.as_str(), t.as_str()));
        for (model, tenants) in &self.lanes {
            for (tenant, lane) in tenants {
                if lane.queue.is_empty() {
                    continue;
                }
                let key = (model.as_str(), tenant.as_str());
                if first.is_none() {
                    first = Some(key);
                }
                if after.is_none() {
                    if let Some(last) = last {
                        if key > last {
                            after = Some(key);
                        }
                    }
                }
            }
        }
        let (model, tenant) = after.or(first)?;
        let owned = (model.to_string(), tenant.to_string());
        self.last_served = Some(owned.clone());
        Some(owned)
    }

    /// Accumulated gateway telemetry.
    pub fn report(&self) -> &GatewayReport {
        &self.report
    }

    /// Consumes the gateway, returning its telemetry.
    pub fn into_report(self) -> GatewayReport {
        self.report
    }

    /// The replica-level report of one model (batches, FLOPs, quarantine
    /// and retry counts for that model's engine).
    pub fn model_report(&self, model: &str) -> Option<&EngineReport> {
        self.registry.engine(model).map(|e| e.report())
    }

    /// The live generation of `model` (0 until the first swap).
    pub fn generation(&self, model: &str) -> Option<u64> {
        self.registry.generation(model)
    }

    /// The `(h, w, c)` input shape `model` serves, if registered.
    pub fn input_shape(&self, model: &str) -> Option<(usize, usize, usize)> {
        self.registry.engine(model).map(|e| e.input_shape())
    }

    /// The current ladder stage of one `(model, tenant)` lane.
    pub fn stage(&self, model: &str, tenant: &str) -> Option<usize> {
        self.lanes.get(model).and_then(|m| m.get(tenant)).map(|lane| lane.ladder.stage())
    }

    /// Requests currently queued in one `(model, tenant)` lane.
    pub fn queue_depth(&self, model: &str, tenant: &str) -> Option<usize> {
        self.lanes.get(model).and_then(|m| m.get(tenant)).map(|lane| lane.queue.len())
    }

    /// Registered model names, sorted.
    pub fn models(&self) -> Vec<&str> {
        self.registry.names()
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Readiness probe: at least one model is registered and serving.
    pub fn ready(&self) -> bool {
        !self.registry.names().is_empty()
    }

    /// Liveness probe: every registered replica is healthy.
    pub fn healthy(&self) -> bool {
        self.registry
            .names()
            .iter()
            .all(|name| self.registry.engine(name).is_none_or(|e| e.healthy()))
    }

    fn event(&mut self, kind: ServeEventKind, detail: String) {
        self.report.events.push(ServeEvent { batch: self.batch_index, kind, detail });
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        let cfg = GatewayConfig { queue_capacity: 0, ..GatewayConfig::default() };
        assert!(matches!(
            Gateway::new(cfg),
            Err(EngineError::BadConfig(msg)) if msg.contains("queue")
        ));
        let cfg = GatewayConfig { max_batch: 0, ..GatewayConfig::default() };
        assert!(matches!(Gateway::new(cfg), Err(EngineError::BadConfig(_))));
        let cfg =
            GatewayConfig { target_batch_latency: Duration::ZERO, ..GatewayConfig::default() };
        assert!(matches!(Gateway::new(cfg), Err(EngineError::BadConfig(_))));
    }

    #[test]
    fn unknown_names_are_rejected_before_anything_else() {
        let mut gw =
            Gateway::with_clock(GatewayConfig::default(), Box::new(ManualClock::new())).unwrap();
        let image = Tensor4::zeros(1, 6, 6, 1);
        assert_eq!(
            gw.submit("ghost", "alpha", &image),
            Err(RequestError::UnknownModel { model: "ghost".into() })
        );
        assert!(gw.poll().is_empty(), "an empty gateway serves nothing");
        assert!(!gw.ready(), "no registered models: not ready");
        assert!(gw.healthy(), "vacuously healthy");
        assert!(matches!(gw.swap("ghost", "/nonexistent"), Err(SwapError::UnknownModel { .. })));
        assert_eq!(gw.report().events_of(ServeEventKind::SwapRolledBack), 1);
    }

    #[test]
    fn tenant_validation_rejects_bad_policies() {
        let mut gw =
            Gateway::with_clock(GatewayConfig::default(), Box::new(ManualClock::new())).unwrap();
        let bad_rate = TenantConfig { rate_per_sec: 0, ..TenantConfig::default() };
        assert!(matches!(gw.add_tenant("a", bad_rate), Err(EngineError::BadConfig(_))));
        let bad_burst = TenantConfig { burst: 0, ..TenantConfig::default() };
        assert!(matches!(gw.add_tenant("a", bad_burst), Err(EngineError::BadConfig(_))));
        assert!(gw.add_tenant("a", TenantConfig::default()).is_ok());
        assert!(
            matches!(gw.add_tenant("a", TenantConfig::default()), Err(EngineError::BadConfig(_))),
            "duplicate tenant"
        );
        assert_eq!(gw.tenant_names(), vec!["a"]);
    }

    #[test]
    fn fair_share_divides_capacity_across_tenants() {
        let cfg = GatewayConfig { queue_capacity: 8, ..GatewayConfig::default() };
        let mut gw = Gateway::with_clock(cfg, Box::new(ManualClock::new())).unwrap();
        assert_eq!(gw.per_tenant_cap(), 8, "no tenants yet: full capacity");
        gw.add_tenant("a", TenantConfig::default()).unwrap();
        gw.add_tenant("b", TenantConfig::default()).unwrap();
        assert_eq!(gw.per_tenant_cap(), 4);
        gw.add_tenant("c", TenantConfig::default()).unwrap();
        assert_eq!(gw.per_tenant_cap(), 3, "ceil(8/3)");
    }
}
