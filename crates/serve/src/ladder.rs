//! The degradation ladder: load-driven stepping between reuse stages.
//!
//! The trainer's guardrails tighten reuse when training health degrades;
//! serving runs the same staircase in the other direction. Stage 0 is the
//! highest-quality configuration (by convention the exact im2col GEMM) and
//! each later stage trades accuracy for FLOPs by relaxing `{L, H, CR}`.
//! A smoothed pressure signal — the max of normalised batch latency and
//! queue occupancy, folded through the same `RunningMean` EMA the trainer
//! uses for loss smoothing — decides when to step:
//!
//! * pressure above `degrade_above` → step one stage toward aggressive
//!   reuse (cheaper batches, the queue drains faster),
//! * pressure below `recover_below` → step one stage back toward exact.
//!
//! `min_dwell` batches must pass between moves so one slow batch cannot
//! slam the ladder to the bottom — mirroring the plateau detector's
//! patience on the training side.

use adr_nn::metrics::RunningMean;

use crate::error::EngineError;

/// One rung of the ladder: how the reuse layers should be configured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagePolicy {
    /// The exact im2col GEMM path (`L = K`, `H = 64`): every row is its own
    /// cluster, outputs match a dense convolution bitwise.
    Exact,
    /// A reuse configuration; larger `L` / smaller `H` is more aggressive.
    Reuse {
        /// Sub-vector length `L` (clamped to `K` per layer).
        sub_vector_len: usize,
        /// Hash count `H` (1..=64).
        num_hashes: usize,
        /// Across-batch cluster reuse (`CR`).
        cluster_reuse: bool,
    },
}

/// Ladder shape and stepping thresholds.
#[derive(Clone, Debug)]
pub struct LadderConfig {
    /// Stages ordered best-quality first; index 0 is where a healthy
    /// engine serves from.
    pub stages: Vec<StagePolicy>,
    /// EMA smoothing factor for the pressure signal, in `(0, 1]`.
    pub alpha: f32,
    /// Degrade one stage when smoothed pressure exceeds this.
    pub degrade_above: f32,
    /// Recover one stage when smoothed pressure falls below this.
    pub recover_below: f32,
    /// Minimum batches between stage moves.
    pub min_dwell: usize,
}

/// The default four-stage ladder walks `H` down and then turns on
/// across-batch cluster reuse. The bottom rung is chosen for *graceful*
/// degradation: on the seeded synthetic eval split it costs at most 0.2
/// accuracy against the exact stage (pinned by `tests/serving.rs`).
impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            stages: vec![
                StagePolicy::Exact,
                StagePolicy::Reuse { sub_vector_len: 8, num_hashes: 12, cluster_reuse: false },
                StagePolicy::Reuse { sub_vector_len: 8, num_hashes: 8, cluster_reuse: false },
                StagePolicy::Reuse { sub_vector_len: 8, num_hashes: 8, cluster_reuse: true },
            ],
            alpha: 0.5,
            degrade_above: 1.0,
            recover_below: 0.4,
            min_dwell: 2,
        }
    }
}

/// A stage transition the ladder decided on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LadderMove {
    /// Stepped toward more aggressive reuse (load shedding by quality).
    Degraded {
        /// Stage before the move.
        from: usize,
        /// Stage after the move.
        to: usize,
    },
    /// Stepped back toward the exact path (pressure subsided).
    Recovered {
        /// Stage before the move.
        from: usize,
        /// Stage after the move.
        to: usize,
    },
}

/// The load-driven stage controller.
#[derive(Debug)]
pub struct DegradationLadder {
    cfg: LadderConfig,
    stage: usize,
    pressure: RunningMean,
    since_move: usize,
}

impl DegradationLadder {
    /// Builds a ladder starting at stage 0.
    ///
    /// # Errors
    /// Rejects an empty stage list, invalid reuse knobs (`L == 0`,
    /// `H ∉ 1..=64`), and an out-of-range `alpha`.
    pub fn new(cfg: LadderConfig) -> Result<Self, EngineError> {
        if cfg.stages.is_empty() {
            return Err(EngineError::EmptyLadder);
        }
        for (i, stage) in cfg.stages.iter().enumerate() {
            if let StagePolicy::Reuse { sub_vector_len, num_hashes, .. } = stage {
                if *sub_vector_len == 0 {
                    return Err(EngineError::BadStage {
                        stage: i,
                        reason: "sub-vector length must be positive".into(),
                    });
                }
                if *num_hashes == 0 || *num_hashes > 64 {
                    return Err(EngineError::BadStage {
                        stage: i,
                        reason: format!("hash count {num_hashes} outside 1..=64"),
                    });
                }
            }
        }
        if !(cfg.alpha > 0.0 && cfg.alpha <= 1.0) {
            return Err(EngineError::BadConfig(format!(
                "ladder alpha {} outside (0, 1]",
                cfg.alpha
            )));
        }
        let alpha = cfg.alpha;
        Ok(Self { cfg, stage: 0, pressure: RunningMean::new(alpha), since_move: 0 })
    }

    /// Current stage index (0 = best quality).
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.cfg.stages.len()
    }

    /// The policy of the current stage.
    pub fn policy(&self) -> StagePolicy {
        // `stage < stages.len()` is a constructor + stepping invariant; the
        // fallback is unreachable but keeps this panic-free.
        self.cfg.stages.get(self.stage).copied().unwrap_or(StagePolicy::Exact)
    }

    /// The policy of an arbitrary stage, if it exists.
    pub fn policy_at(&self, stage: usize) -> Option<StagePolicy> {
        self.cfg.stages.get(stage).copied()
    }

    /// The smoothed pressure signal (0 until the first observation).
    pub fn pressure(&self) -> f32 {
        self.pressure.get().unwrap_or(0.0)
    }

    /// Feeds one batch observation and possibly steps the ladder.
    ///
    /// `latency_frac` is batch latency over the configured target;
    /// `queue_frac` is queue depth over capacity. Pressure is the max of
    /// the two: either signal alone is enough to justify degrading.
    pub fn observe(&mut self, latency_frac: f32, queue_frac: f32) -> Option<LadderMove> {
        self.pressure.update(latency_frac.max(queue_frac));
        self.since_move += 1;
        if self.since_move < self.cfg.min_dwell {
            return None;
        }
        let p = self.pressure.get().unwrap_or(0.0);
        if p > self.cfg.degrade_above && self.stage + 1 < self.cfg.stages.len() {
            let from = self.stage;
            self.stage += 1;
            self.since_move = 0;
            return Some(LadderMove::Degraded { from, to: self.stage });
        }
        if p < self.cfg.recover_below && self.stage > 0 {
            let from = self.stage;
            self.stage -= 1;
            self.since_move = 0;
            return Some(LadderMove::Recovered { from, to: self.stage });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> LadderConfig {
        LadderConfig { min_dwell: 1, alpha: 1.0, ..LadderConfig::default() }
    }

    #[test]
    fn sustained_pressure_walks_down_then_recovery_walks_back() {
        let mut ladder = DegradationLadder::new(quick_cfg()).unwrap();
        assert_eq!(ladder.stage(), 0);
        assert_eq!(ladder.policy(), StagePolicy::Exact);
        // Three hot batches: degrade one stage each.
        for expect in 1..=3 {
            let mv = ladder.observe(4.0, 0.9);
            assert_eq!(mv, Some(LadderMove::Degraded { from: expect - 1, to: expect }));
        }
        // Bottom of the ladder: stays put under pressure.
        assert_eq!(ladder.observe(4.0, 1.0), None);
        assert_eq!(ladder.stage(), 3);
        // Calm traffic: recover step by step.
        for expect in (0..3).rev() {
            let mv = ladder.observe(0.0, 0.0);
            assert_eq!(mv, Some(LadderMove::Recovered { from: expect + 1, to: expect }));
        }
        assert_eq!(ladder.observe(0.0, 0.0), None, "already at the exact stage");
    }

    #[test]
    fn dwell_time_rate_limits_moves() {
        let cfg = LadderConfig { min_dwell: 3, alpha: 1.0, ..LadderConfig::default() };
        let mut ladder = DegradationLadder::new(cfg).unwrap();
        assert_eq!(ladder.observe(5.0, 0.0), None);
        assert_eq!(ladder.observe(5.0, 0.0), None);
        assert!(matches!(ladder.observe(5.0, 0.0), Some(LadderMove::Degraded { .. })));
        // Counter resets after a move.
        assert_eq!(ladder.observe(5.0, 0.0), None);
    }

    #[test]
    fn ema_smooths_single_spikes_away() {
        let cfg = LadderConfig { min_dwell: 1, alpha: 0.2, ..LadderConfig::default() };
        let mut ladder = DegradationLadder::new(cfg).unwrap();
        // One huge spike into a calm stream: smoothed pressure crosses the
        // threshold on the spike itself (EMA seeds at the first value), but
        // calm batches pull it straight back down without a second move.
        ladder.observe(0.1, 0.0);
        let first = ladder.observe(6.0, 0.0);
        for _ in 0..10 {
            ladder.observe(0.1, 0.0);
        }
        assert!(ladder.stage() <= 1, "stage {} after one spike", ladder.stage());
        let _ = first;
        assert!(ladder.pressure() < 1.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let empty = LadderConfig { stages: vec![], ..LadderConfig::default() };
        assert!(matches!(DegradationLadder::new(empty), Err(EngineError::EmptyLadder)));
        let bad_h = LadderConfig {
            stages: vec![StagePolicy::Reuse {
                sub_vector_len: 4,
                num_hashes: 65,
                cluster_reuse: false,
            }],
            ..LadderConfig::default()
        };
        assert!(matches!(
            DegradationLadder::new(bad_h),
            Err(EngineError::BadStage { stage: 0, .. })
        ));
        let bad_alpha = LadderConfig { alpha: 0.0, ..LadderConfig::default() };
        assert!(matches!(DegradationLadder::new(bad_alpha), Err(EngineError::BadConfig(_))));
    }
}
