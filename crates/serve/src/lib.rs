//! Robust inference serving for adaptive deep reuse.
//!
//! The training side of this workspace tightens reuse when the model needs
//! more precision; serving runs the same dial in reverse. ADR's knobs
//! `{L, H, CR}` form a built-in quality/latency trade (Eqs. 5/6 of the
//! paper): under load the server *relaxes* reuse — coarser clusters, fewer
//! GEMM rows — instead of dropping requests, and recovers back toward the
//! exact im2col GEMM when pressure subsides.
//!
//! The crate is organised around one type, [`engine::Engine`]:
//!
//! * **Admission** — requests enter through a bounded queue. Non-finite
//!   pixels and shape mismatches are rejected with a typed
//!   [`error::RequestError`] before they can touch the network; once the
//!   queue is full, further requests are shed with
//!   [`error::RequestError::Overloaded`] (backpressure, not buffering).
//! * **Micro-batching** — admitted requests are compatible by construction
//!   (admission pinned them to the network's input shape), so the engine
//!   drains the queue FIFO into batches of at most `max_batch`.
//! * **Deadlines** — every request carries a latency budget measured from
//!   admission. A response that would arrive late is converted into a typed
//!   [`error::RequestError::DeadlineExceeded`] instead of silently served.
//! * **Degradation ladder** — a latency/queue-depth EMA
//!   ([`ladder::DegradationLadder`]) steps the reuse strategy between
//!   stages, from the exact GEMM through increasingly aggressive reuse —
//!   the trainer's guardrail tightening, mirrored.
//! * **Output sanitation** — every batch output is scanned with
//!   `adr_tensor::sanitize::first_non_finite`; a poisoned batch is
//!   quarantined, retried once on the exact GEMM path, and recorded. A
//!   caller never observes a non-finite value.
//! * **Observability** — [`report::EngineReport`] accumulates per-stage
//!   request counts, shed/degraded/retried totals, a latency histogram and
//!   FLOPs saved versus the exact path; `Engine::{ready, healthy}` are the
//!   probe surface.
//!
//! Above the single engine sits the multi-tenant layer:
//!
//! * **Registry** — [`registry::ModelRegistry`] holds named engine
//!   replicas loaded from `ADR1`/`ADRS` artifacts, each with a generation
//!   counter and a zero-downtime hot-swap state machine (load-new →
//!   warm-verify → atomic flip, typed [`error::SwapError`] rollback).
//! * **Gateway** — [`gateway::Gateway`] fronts the registry with
//!   per-tenant token buckets ([`error::RequestError::RateLimited`]),
//!   fair-share queue slices, and one degradation ladder per
//!   `(model, tenant)` lane, so one tenant's burst degrades only its own
//!   quality while other tenants stay on the exact path.
//!
//! Determinism mirrors the training loop: with the [`clock::ManualClock`]
//! and no injected faults, the same request stream against the same
//! checkpoint produces bitwise-identical outputs and an identical report
//! (`tests/determinism.rs` pins this); the gateway adds no nondeterminism —
//! scheduling is round-robin over `BTreeMap`-ordered lanes.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod clock;
pub mod engine;
pub mod error;
pub mod gateway;
pub mod ladder;
pub mod registry;
pub mod report;
pub mod tenant;

pub use clock::{ManualClock, MonotonicClock, ServeClock};
pub use engine::{Engine, EngineConfig, InferResponse};
pub use error::{EngineError, RequestError, SwapError};
pub use gateway::{Gateway, GatewayConfig};
pub use ladder::{DegradationLadder, LadderConfig, LadderMove, StagePolicy};
pub use registry::{ArtifactKind, ModelRegistry, NetFactory};
pub use report::{
    EngineReport, GatewayReport, LatencyHistogram, ModelCounters, ServeEvent, ServeEventKind,
    TenantCounters,
};
pub use tenant::TenantConfig;
