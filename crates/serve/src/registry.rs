//! The model registry: named, hot-swappable engine replicas.
//!
//! A [`ModelRegistry`] maps model names to independent [`Engine`] replicas,
//! each loaded from a named `ADR1` checkpoint or `ADRS` train-state
//! artifact. Every entry carries a *generation* counter and the factory
//! that rebuilds its network architecture, which is what makes zero-downtime
//! hot swap possible:
//!
//! 1. **load-new** — read the replacement artifact and restore it into a
//!    freshly built network (the live engine is untouched);
//! 2. **warm-verify** — run the candidate network on the entry's probe
//!    batch and require finite logits of the right shape;
//! 3. **atomic flip** — replace the engine and bump the generation in one
//!    assignment (requests never observe a half-swapped model);
//! 4. **drain-old** — the previous engine holds no requests (the gateway
//!    owns all queues), so dropping it completes the drain trivially.
//!
//! Any failure before the flip returns a typed [`SwapError`] and leaves
//! the previous generation serving — rollback is the absence of the flip.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use adr_core::faults::ServeFaultPlan;
use adr_core::state::TrainState;
use adr_nn::checkpoint::{Checkpoint, CheckpointError};
use adr_nn::network::Network;
use adr_nn::sgd::Sgd;
use adr_tensor::sanitize::first_non_finite;
use adr_tensor::Tensor4;

use crate::clock::ManualClock;
use crate::engine::{Engine, EngineConfig};
use crate::error::{EngineError, SwapError};

/// Which artifact format a registry entry loads its weights from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// An `ADR1` parameter checkpoint ([`Checkpoint`]).
    Adr1,
    /// An `ADRS` full train-state snapshot ([`TrainState`]); serving
    /// restores the model half and ignores the optimiser.
    Adrs,
}

/// Rebuilds a model's (untrained) network architecture. Called once at
/// registration and once per hot swap, so a swap restores into a clean
/// network rather than mutating the live one.
pub type NetFactory = Box<dyn Fn() -> Network + Send>;

/// One registered model: its live engine, generation, and rebuild recipe.
pub(crate) struct ModelEntry {
    pub(crate) engine: Engine,
    pub(crate) generation: u64,
    kind: ArtifactKind,
    factory: NetFactory,
    cfg: EngineConfig,
    probe: Tensor4,
}

/// Named model catalogue with per-entry hot swap.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `path` as `kind` into a network built by `factory` and
    /// registers it under `name` at generation 0.
    ///
    /// # Errors
    /// [`EngineError::BadConfig`] for a duplicate name; load/restore
    /// failures as [`EngineError::Checkpoint`] / [`EngineError::State`].
    pub fn register(
        &mut self,
        name: &str,
        kind: ArtifactKind,
        path: impl AsRef<Path>,
        factory: NetFactory,
        cfg: EngineConfig,
    ) -> Result<(), EngineError> {
        if self.models.contains_key(name) {
            return Err(EngineError::BadConfig(format!("model '{name}' already registered")));
        }
        let bytes = fs::read(path.as_ref()).map_err(CheckpointError::from)?;
        let net = restore_into(factory(), kind, &bytes)?;
        let (h, w, c) = net.input_shape();
        // Deterministic finite probe batch for warm-verifying future swaps.
        let probe =
            Tensor4::from_fn(1, h, w, c, |_, y, x, ch| ((y * w + x) * c + ch) as f32 % 17.0 * 0.05);
        // Replica engines never see requests directly — the gateway owns
        // admission, queues, and time — so the engine clock is inert.
        let engine = Engine::with_clock(net, cfg.clone(), Box::new(ManualClock::new()))?;
        self.models.insert(
            name.to_string(),
            ModelEntry { engine, generation: 0, kind, factory, cfg, probe },
        );
        Ok(())
    }

    /// Hot-swaps `name` to the artifact at `path`: load-new → warm-verify
    /// → atomic flip. Returns the new generation number.
    ///
    /// `faults` is consulted for an armed
    /// [`ServeFaultPlan::corrupt_swap_artifact`], which flips a byte of the
    /// artifact *as read by this swap* — the chaos path for pinning
    /// rollback.
    ///
    /// # Errors
    /// Typed [`SwapError`]; on any error the previous generation is still
    /// registered and serving.
    pub(crate) fn swap(
        &mut self,
        name: &str,
        path: impl AsRef<Path>,
        faults: &mut ServeFaultPlan,
    ) -> Result<u64, SwapError> {
        let Some(entry) = self.models.get_mut(name) else {
            return Err(SwapError::UnknownModel { model: name.to_string() });
        };
        // load-new: everything below operates on a candidate network; the
        // live engine in `entry` is not touched until the flip.
        let mut bytes =
            fs::read(path.as_ref()).map_err(|e| EngineError::from(CheckpointError::from(e)))?;
        faults.corrupt_swap(&mut bytes);
        let net = restore_into((entry.factory)(), entry.kind, &bytes)?;
        // warm-verify: the candidate must serve the probe batch the live
        // generation serves, with finite logits.
        let expected = entry.engine.input_shape();
        if net.input_shape() != expected {
            return Err(SwapError::ProbeShape { expected, found: net.input_shape() });
        }
        let mut net = net;
        let logits = match net.infer(&entry.probe) {
            Ok(t) => t,
            Err(e) => return Err(SwapError::ProbeShape { expected: e.expected, found: e.found }),
        };
        if let Some((index, _)) = first_non_finite(logits.as_slice()) {
            return Err(SwapError::ProbeNonFinite { index });
        }
        let engine = Engine::with_clock(net, entry.cfg.clone(), Box::new(ManualClock::new()))?;
        // atomic flip + drain-old: one assignment replaces the replica; the
        // old engine holds no queued requests (the gateway does), so
        // dropping it is the drain.
        entry.engine = engine;
        entry.generation += 1;
        Ok(entry.generation)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.models.contains_key(name)
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// The live generation of `name` (0 until the first swap).
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.models.get(name).map(|e| e.generation)
    }

    /// Shared access to a model's live engine.
    pub fn engine(&self, name: &str) -> Option<&Engine> {
        self.models.get(name).map(|e| &e.engine)
    }

    pub(crate) fn entry_mut(&mut self, name: &str) -> Option<&mut ModelEntry> {
        self.models.get_mut(name)
    }
}

/// Restores `bytes` (parsed as `kind`) into `net`.
fn restore_into(
    mut net: Network,
    kind: ArtifactKind,
    bytes: &[u8],
) -> Result<Network, EngineError> {
    match kind {
        ArtifactKind::Adr1 => {
            let checkpoint = Checkpoint::from_bytes(bytes)?;
            checkpoint.restore(&mut net)?;
        }
        ArtifactKind::Adrs => {
            let state = TrainState::from_bytes(bytes)?;
            let mut throwaway = Sgd::constant(0.0);
            state.restore_model(&mut net, &mut throwaway)?;
        }
    }
    Ok(net)
}
