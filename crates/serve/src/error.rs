//! Typed failure surface of the serving engine.
//!
//! Serving failures split along the same line as the checkpoint formats'
//! errors: [`RequestError`] is the per-request contract with a caller
//! (reject, shed, miss a deadline), [`EngineError`] is the engine's own
//! construction/loading contract. Neither ever panics a caller — overload
//! and poisoned inputs are ordinary, typed outcomes.

use std::fmt;
use std::time::Duration;

use adr_core::state::StateError;
use adr_nn::checkpoint::CheckpointError;
use adr_nn::layer::Shape3;

/// Why one inference request was rejected or failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestError {
    /// The bounded admission queue is full: the request is shed rather
    /// than buffered without bound (backpressure).
    Overloaded {
        /// Requests already queued.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
        /// Backoff hint: estimated time until the queue drains, computed
        /// from the current depth and the observed per-batch drain rate.
        /// Clients that honour it stop hammering a hot engine.
        retry_after: Duration,
    },
    /// The tenant's token bucket is empty: the request is rejected before
    /// it can occupy queue capacity, with a deterministic refill hint.
    RateLimited {
        /// Time until the bucket holds one whole token again.
        retry_after: Duration,
    },
    /// The request named a model the registry does not hold.
    UnknownModel {
        /// The model name the request carried.
        model: String,
    },
    /// The request named a tenant the gateway has no configuration for.
    UnknownTenant {
        /// The tenant name the request carried.
        tenant: String,
    },
    /// The request tensor is not a single image (`batch != 1`).
    NotSingleImage {
        /// Batch dimension of the submitted tensor.
        batch: usize,
    },
    /// The per-image shape disagrees with the network input.
    ShapeMismatch {
        /// Shape the frozen network expects.
        expected: Shape3,
        /// Shape the request carried.
        found: Shape3,
    },
    /// A NaN/Inf pixel was found at admission.
    NonFiniteInput {
        /// Flat index of the first non-finite value.
        index: usize,
        /// The offending value.
        value: f32,
    },
    /// The batch output stayed non-finite even after the exact-GEMM retry;
    /// the whole batch is failed rather than surfacing poison.
    NonFiniteOutput {
        /// Flat index of the first non-finite logit in the batch output.
        index: usize,
    },
    /// The response would have arrived after the request's latency budget.
    DeadlineExceeded {
        /// Budget the request was admitted with, in milliseconds.
        budget_ms: u64,
        /// Admission-to-completion latency actually observed.
        elapsed_ms: u64,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { depth, capacity, retry_after } => {
                write!(
                    f,
                    "overloaded: admission queue holds {depth}/{capacity} requests, retry after \
                     {} ms",
                    retry_after.as_millis()
                )
            }
            Self::RateLimited { retry_after } => {
                write!(
                    f,
                    "rate limited: token bucket empty, retry after {} ms",
                    retry_after.as_millis()
                )
            }
            Self::UnknownModel { model } => {
                write!(f, "unknown model '{model}': not in the registry")
            }
            Self::UnknownTenant { tenant } => {
                write!(f, "unknown tenant '{tenant}': no gateway configuration")
            }
            Self::NotSingleImage { batch } => {
                write!(f, "request must be a single image, got a batch of {batch}")
            }
            Self::ShapeMismatch { expected, found } => write!(
                f,
                "input shape {}x{}x{} does not match the network's {}x{}x{}",
                found.0, found.1, found.2, expected.0, expected.1, expected.2
            ),
            Self::NonFiniteInput { index, value } => {
                write!(f, "non-finite input value {value} at flat index {index}")
            }
            Self::NonFiniteOutput { index } => {
                write!(f, "batch output non-finite at flat index {index} even after exact retry")
            }
            Self::DeadlineExceeded { budget_ms, elapsed_ms } => {
                write!(f, "deadline exceeded: budget {budget_ms} ms, elapsed {elapsed_ms} ms")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Why the engine could not be built or a checkpoint could not be loaded.
#[derive(Debug)]
pub enum EngineError {
    /// The parameter checkpoint (`ADR1`) failed to load or restore.
    Checkpoint(CheckpointError),
    /// The full train-state snapshot (`ADRS`) failed to load or restore.
    State(StateError),
    /// The degradation ladder has no stages.
    EmptyLadder,
    /// A ladder stage carries an invalid reuse configuration.
    BadStage {
        /// Index of the offending stage.
        stage: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A structurally invalid engine configuration (zero queue capacity,
    /// zero micro-batch size, or a zero latency target).
    BadConfig(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint load failed: {e}"),
            Self::State(e) => write!(f, "train-state load failed: {e}"),
            Self::EmptyLadder => write!(f, "degradation ladder has no stages"),
            Self::BadStage { stage, reason } => write!(f, "ladder stage {stage}: {reason}"),
            Self::BadConfig(msg) => write!(f, "invalid engine config: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            Self::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<StateError> for EngineError {
    fn from(e: StateError) -> Self {
        Self::State(e)
    }
}

/// Why a zero-downtime hot swap was rejected and rolled back.
///
/// Every variant leaves the previous generation serving: the swap state
/// machine only flips the generation pointer after the new artifact has
/// loaded, restored, and answered a finite probe batch.
#[derive(Debug)]
pub enum SwapError {
    /// The swap named a model the registry does not hold.
    UnknownModel {
        /// The model name the swap carried.
        model: String,
    },
    /// The new artifact failed to read, parse, or restore. The rollback
    /// happened before any serving state was touched.
    Load(EngineError),
    /// The new generation produced a non-finite logit on the warm-verify
    /// probe batch — it never went live.
    ProbeNonFinite {
        /// Flat index of the first non-finite probe logit.
        index: usize,
    },
    /// The new generation's network disagrees with the serving input
    /// shape — a mis-built factory or a checkpoint for another model.
    ProbeShape {
        /// Shape the live generation serves.
        expected: Shape3,
        /// Shape the candidate network expects.
        found: Shape3,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel { model } => {
                write!(f, "swap rejected: unknown model '{model}'")
            }
            Self::Load(e) => write!(f, "swap rolled back: new artifact failed to load: {e}"),
            Self::ProbeNonFinite { index } => write!(
                f,
                "swap rolled back: warm-verify probe produced a non-finite logit at flat index \
                 {index}"
            ),
            Self::ProbeShape { expected, found } => write!(
                f,
                "swap rolled back: candidate expects {}x{}x{}, live generation serves {}x{}x{}",
                found.0, found.1, found.2, expected.0, expected.1, expected.2
            ),
        }
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for SwapError {
    fn from(e: EngineError) -> Self {
        Self::Load(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_errors_render_their_parameters() {
        let shed = RequestError::Overloaded {
            depth: 8,
            capacity: 8,
            retry_after: Duration::from_millis(120),
        };
        assert!(shed.to_string().contains("8/8"));
        assert!(shed.to_string().contains("retry after 120 ms"), "{shed}");
        let limited = RequestError::RateLimited { retry_after: Duration::from_millis(500) };
        assert!(limited.to_string().contains("500 ms"));
        let model = RequestError::UnknownModel { model: "resnet".into() };
        assert!(model.to_string().contains("resnet"));
        let tenant = RequestError::UnknownTenant { tenant: "ghost".into() };
        assert!(tenant.to_string().contains("ghost"));
        let shape = RequestError::ShapeMismatch { expected: (16, 16, 3), found: (8, 8, 1) };
        assert!(shape.to_string().contains("8x8x1"));
        assert!(shape.to_string().contains("16x16x3"));
        let late = RequestError::DeadlineExceeded { budget_ms: 10, elapsed_ms: 250 };
        assert!(late.to_string().contains("250"));
    }

    #[test]
    fn swap_errors_render_and_chain_their_sources() {
        let rolled = SwapError::Load(EngineError::Checkpoint(CheckpointError::BadMagic));
        assert!(rolled.to_string().contains("rolled back"));
        assert!(std::error::Error::source(&rolled).is_some());
        let probe = SwapError::ProbeNonFinite { index: 3 };
        assert!(probe.to_string().contains("flat index 3"));
        let shape = SwapError::ProbeShape { expected: (16, 16, 3), found: (8, 8, 3) };
        assert!(shape.to_string().contains("8x8x3"));
        assert!(SwapError::UnknownModel { model: "m".into() }.to_string().contains("'m'"));
    }

    #[test]
    fn engine_errors_wrap_their_sources() {
        let e = EngineError::from(CheckpointError::BadMagic);
        assert!(matches!(e, EngineError::Checkpoint(CheckpointError::BadMagic)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(EngineError::EmptyLadder.to_string().contains("no stages"));
    }
}
