//! Serving observability: counters, events, and the latency histogram.
//!
//! The serving counterpart of `adr_core::report::TrainReport`. Every
//! robustness decision the engine makes — shedding, degrading, quarantining
//! a poisoned batch, retrying on the exact path, failing a deadline — lands
//! here as both a counter and an ordered [`ServeEvent`], so a fault-injected
//! test (and an operator) can reconstruct exactly what happened and when.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Upper bounds (milliseconds, inclusive) of the latency histogram buckets;
/// one overflow bucket follows.
pub const LATENCY_BUCKET_BOUNDS_MS: [u64; 10] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

/// A fixed-bucket histogram of admission-to-completion latencies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKET_BOUNDS_MS.len() + 1],
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BUCKET_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_MS.len());
        self.counts[bucket] += 1;
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Compact `<=1ms:3 <=5ms:1 ...` rendering of the non-empty buckets.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            match LATENCY_BUCKET_BOUNDS_MS.get(i) {
                Some(bound) => {
                    let _ = write!(out, "<={bound}ms:{count}");
                }
                None => {
                    let _ = write!(out, ">1000ms:{count}");
                }
            }
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// What kind of robustness event the engine recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeEventKind {
    /// The ladder stepped toward more aggressive reuse.
    Degraded,
    /// The ladder stepped back toward the exact path.
    Recovered,
    /// A request was shed because the admission queue was full.
    Overloaded,
    /// A request was rejected at admission (shape or non-finite input).
    RejectedInput,
    /// A batch output failed the NaN/Inf scan and was quarantined.
    QuarantinedBatch,
    /// A quarantined batch was re-run on the exact GEMM path.
    RetriedExact,
    /// A request's response missed its deadline budget.
    DeadlineMissed,
    /// An injected slow-batch stall fired (fault harness).
    SlowBatchFault,
    /// An injected poison fired (fault harness).
    PoisonFault,
    /// A request was rejected by its tenant's token bucket.
    RateLimited,
    /// A hot swap started loading a new artifact.
    SwapStarted,
    /// A hot swap verified and atomically flipped to a new generation.
    SwapCompleted,
    /// A hot swap failed verification and rolled back; the previous
    /// generation kept serving throughout.
    SwapRolledBack,
}

/// One recorded event, in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeEvent {
    /// Micro-batch index the event belongs to (admission-time events carry
    /// the index of the *next* batch).
    pub batch: usize,
    /// Event class.
    pub kind: ServeEventKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// Aggregated serving telemetry; the serving mirror of `TrainReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineReport {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// Requests rejected for a wrong shape.
    pub rejected_shape: u64,
    /// Requests rejected for non-finite input values.
    pub rejected_non_finite: u64,
    /// Requests shed with `Overloaded`.
    pub shed_overloaded: u64,
    /// Requests whose response missed its deadline.
    pub deadline_missed: u64,
    /// Requests failed because the output stayed non-finite after retry.
    pub failed_non_finite: u64,
    /// Micro-batches processed.
    pub batches: u64,
    /// Ladder steps toward aggressive reuse.
    pub degraded_steps: u64,
    /// Ladder steps back toward exact.
    pub recovered_steps: u64,
    /// Batches quarantined by the output sanitizer.
    pub quarantined_batches: u64,
    /// Batches re-run on the exact GEMM path.
    pub retried_batches: u64,
    /// Requests processed per ladder stage (index = stage).
    pub requests_per_stage: Vec<u64>,
    /// Admission-to-completion latency distribution.
    pub latency: LatencyHistogram,
    /// Forward multiply–adds actually performed by the frozen network.
    pub flops_actual: u64,
    /// Forward multiply–adds the exact path would have performed.
    pub flops_exact: u64,
    /// Ordered robustness events.
    pub events: Vec<ServeEvent>,
}

impl EngineReport {
    /// Fraction of forward FLOPs saved versus the exact path, in `[0, 1]`.
    pub fn flop_savings(&self) -> f64 {
        if self.flops_exact == 0 {
            return 0.0;
        }
        1.0 - self.flops_actual as f64 / self.flops_exact as f64
    }

    /// Number of recorded events of `kind`.
    pub fn events_of(&self, kind: ServeEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// The counters as stable `(name, value)` pairs — what the determinism
    /// suite compares across runs.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("admitted", self.admitted),
            ("completed", self.completed),
            ("rejected_shape", self.rejected_shape),
            ("rejected_non_finite", self.rejected_non_finite),
            ("shed_overloaded", self.shed_overloaded),
            ("deadline_missed", self.deadline_missed),
            ("failed_non_finite", self.failed_non_finite),
            ("batches", self.batches),
            ("degraded_steps", self.degraded_steps),
            ("recovered_steps", self.recovered_steps),
            ("quarantined_batches", self.quarantined_batches),
            ("retried_batches", self.retried_batches),
        ]
    }

    /// Re-exports this report through the unified telemetry schema
    /// (DESIGN.md §11): every [`EngineReport::counters`] entry becomes an
    /// `adr_serve_<name>` counter, plus per-stage request attribution,
    /// cumulative latency buckets, and the FLOP actual/exact pair.
    ///
    /// Counters are *added* to the installed sink, so call this once per
    /// report against a fresh recorder (as `adr bench` does); calling it
    /// twice double-counts. No-op without an installed sink.
    pub fn export_metrics(&self) {
        if !adr_obs::is_active() {
            return;
        }
        for (name, value) in self.counters() {
            adr_obs::counter_add(&format!("adr_serve_{name}"), &[], value);
        }
        for (stage, &count) in self.requests_per_stage.iter().enumerate() {
            let stage = stage.to_string();
            adr_obs::counter_add("adr_serve_requests", &[("stage", &stage)], count);
        }
        for (i, &count) in self.latency.counts().iter().enumerate() {
            let le = match LATENCY_BUCKET_BOUNDS_MS.get(i) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            adr_obs::counter_add("adr_serve_latency_ms_bucket", &[("le", &le)], count);
        }
        adr_obs::counter_add("adr_serve_flops_actual", &[], self.flops_actual);
        adr_obs::counter_add("adr_serve_flops_exact", &[], self.flops_exact);
        adr_obs::gauge_set("adr_serve_flop_savings", &[], self.flop_savings());
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving report: {} admitted, {} completed over {} batches",
            self.admitted, self.completed, self.batches
        );
        let _ = writeln!(
            out,
            "  rejected: {} shape, {} non-finite | shed: {} | deadline missed: {} | failed non-finite: {}",
            self.rejected_shape,
            self.rejected_non_finite,
            self.shed_overloaded,
            self.deadline_missed,
            self.failed_non_finite
        );
        let _ = writeln!(
            out,
            "  ladder: {} degraded, {} recovered | sanitizer: {} quarantined, {} retried exact",
            self.degraded_steps,
            self.recovered_steps,
            self.quarantined_batches,
            self.retried_batches
        );
        let per_stage: Vec<String> = self
            .requests_per_stage
            .iter()
            .enumerate()
            .map(|(s, n)| format!("stage{s}:{n}"))
            .collect();
        let _ = writeln!(out, "  requests per stage: {}", per_stage.join(" "));
        let _ = writeln!(
            out,
            "  forward flops: {} vs exact {} ({:.1}% saved)",
            self.flops_actual,
            self.flops_exact,
            self.flop_savings() * 100.0
        );
        let _ = write!(out, "  latency: {}", self.latency.summary());
        out
    }
}

/// Per-tenant slice of the gateway's telemetry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Requests admitted into this tenant's lanes.
    pub admitted: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// Requests rejected for a wrong shape.
    pub rejected_shape: u64,
    /// Requests rejected for non-finite input values.
    pub rejected_non_finite: u64,
    /// Requests shed because the tenant's fair-share queue slice was full.
    pub shed_overloaded: u64,
    /// Requests rejected by the tenant's token bucket.
    pub rate_limited: u64,
    /// Requests whose response missed its deadline.
    pub deadline_missed: u64,
    /// Requests failed because the output stayed non-finite after retry.
    pub failed_non_finite: u64,
    /// Requests served per ladder stage of *this tenant's* ladder
    /// (index = stage; length = the tenant's stage count).
    pub requests_per_stage: Vec<u64>,
}

/// Per-model slice of the gateway's telemetry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelCounters {
    /// Micro-batches this model's replica served.
    pub batches: u64,
    /// Live generation (0 until the first hot swap).
    pub generation: u64,
    /// Hot swaps that verified and flipped.
    pub swaps_completed: u64,
    /// Hot swaps that failed verification and rolled back.
    pub swaps_rolled_back: u64,
    /// Forward multiply–adds actually performed by the replica.
    pub flops_actual: u64,
    /// Forward multiply–adds the exact path would have performed.
    pub flops_exact: u64,
}

/// Aggregated multi-tenant gateway telemetry: the gateway mirror of
/// [`EngineReport`], with every counter attributed to the tenant or model
/// it belongs to. `BTreeMap` keys keep iteration (and therefore exported
/// metrics and bench documents) deterministically ordered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GatewayReport {
    /// Counters per tenant, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Counters per model, keyed by model name.
    pub models: BTreeMap<String, ModelCounters>,
    /// Micro-batches served across all models.
    pub batches: u64,
    /// Admission-to-completion latency distribution, all tenants.
    pub latency: LatencyHistogram,
    /// Ordered robustness events (admission, ladder, swap, faults).
    pub events: Vec<ServeEvent>,
}

impl GatewayReport {
    /// Number of recorded events of `kind`.
    pub fn events_of(&self, kind: ServeEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Gateway-wide totals as stable `(name, value)` pairs — tenant
    /// counters summed, plus the batch count. The determinism suite and
    /// the serve bench compare these across runs.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut admitted = 0;
        let mut completed = 0;
        let mut rejected_shape = 0;
        let mut rejected_non_finite = 0;
        let mut shed_overloaded = 0;
        let mut rate_limited = 0;
        let mut deadline_missed = 0;
        let mut failed_non_finite = 0;
        for c in self.tenants.values() {
            admitted += c.admitted;
            completed += c.completed;
            rejected_shape += c.rejected_shape;
            rejected_non_finite += c.rejected_non_finite;
            shed_overloaded += c.shed_overloaded;
            rate_limited += c.rate_limited;
            deadline_missed += c.deadline_missed;
            failed_non_finite += c.failed_non_finite;
        }
        vec![
            ("admitted", admitted),
            ("completed", completed),
            ("rejected_shape", rejected_shape),
            ("rejected_non_finite", rejected_non_finite),
            ("shed_overloaded", shed_overloaded),
            ("rate_limited", rate_limited),
            ("deadline_missed", deadline_missed),
            ("failed_non_finite", failed_non_finite),
            ("batches", self.batches),
        ]
    }

    /// Re-exports this report through the unified telemetry schema with
    /// `tenant` / `model` labels. Same additive contract as
    /// [`EngineReport::export_metrics`]: call once against a fresh sink.
    pub fn export_metrics(&self) {
        if !adr_obs::is_active() {
            return;
        }
        for (tenant, c) in &self.tenants {
            let labels = [("tenant", tenant.as_str())];
            adr_obs::counter_add("adr_gateway_admitted", &labels, c.admitted);
            adr_obs::counter_add("adr_gateway_completed", &labels, c.completed);
            adr_obs::counter_add("adr_gateway_shed_overloaded", &labels, c.shed_overloaded);
            adr_obs::counter_add("adr_gateway_rate_limited", &labels, c.rate_limited);
            adr_obs::counter_add("adr_gateway_deadline_missed", &labels, c.deadline_missed);
            adr_obs::counter_add("adr_gateway_failed_non_finite", &labels, c.failed_non_finite);
            for (stage, &count) in c.requests_per_stage.iter().enumerate() {
                let stage = stage.to_string();
                adr_obs::counter_add(
                    "adr_gateway_requests",
                    &[("tenant", tenant), ("stage", &stage)],
                    count,
                );
            }
        }
        for (model, m) in &self.models {
            let labels = [("model", model.as_str())];
            adr_obs::counter_add("adr_gateway_batches", &labels, m.batches);
            adr_obs::counter_add("adr_gateway_swaps_completed", &labels, m.swaps_completed);
            adr_obs::counter_add("adr_gateway_swaps_rolled_back", &labels, m.swaps_rolled_back);
            adr_obs::counter_add("adr_gateway_flops_actual", &labels, m.flops_actual);
            adr_obs::counter_add("adr_gateway_flops_exact", &labels, m.flops_exact);
            adr_obs::gauge_set("adr_gateway_generation", &labels, m.generation as f64);
        }
        for (i, &count) in self.latency.counts().iter().enumerate() {
            let le = match LATENCY_BUCKET_BOUNDS_MS.get(i) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            adr_obs::counter_add("adr_gateway_latency_ms_bucket", &[("le", &le)], count);
        }
    }

    /// Multi-line human-readable summary, one line per tenant and model.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let totals = self.counters();
        let get = |name: &str| totals.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v);
        let _ = writeln!(
            out,
            "gateway report: {} admitted, {} completed over {} batches",
            get("admitted"),
            get("completed"),
            self.batches
        );
        for (tenant, c) in &self.tenants {
            let per_stage: Vec<String> = c
                .requests_per_stage
                .iter()
                .enumerate()
                .map(|(s, n)| format!("stage{s}:{n}"))
                .collect();
            let _ = writeln!(
                out,
                "  tenant {tenant}: {} admitted, {} completed, {} shed, {} rate-limited, {} \
                 deadline-missed | {}",
                c.admitted,
                c.completed,
                c.shed_overloaded,
                c.rate_limited,
                c.deadline_missed,
                per_stage.join(" ")
            );
        }
        for (model, m) in &self.models {
            let _ = writeln!(
                out,
                "  model {model}: generation {}, {} batches, {} swaps ({} rolled back)",
                m.generation, m.batches, m.swaps_completed, m.swaps_rolled_back
            );
        }
        let _ = write!(out, "  latency: {}", self.latency.summary());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_millis(0));
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(2));
        h.record(Duration::from_millis(7));
        h.record(Duration::from_millis(1500));
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2, "0ms and 1ms share the <=1ms bucket");
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[3], 1, "7ms lands in <=10ms");
        assert_eq!(h.counts()[LATENCY_BUCKET_BOUNDS_MS.len()], 1, "overflow bucket");
        assert!(h.summary().contains("<=1ms:2"));
        assert!(h.summary().contains(">1000ms:1"));
    }

    #[test]
    fn flop_savings_is_zero_without_a_baseline() {
        let report = EngineReport::default();
        assert_eq!(report.flop_savings().to_bits(), 0.0f64.to_bits());
        let report = EngineReport { flops_actual: 25, flops_exact: 100, ..EngineReport::default() };
        assert!((report.flop_savings() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gateway_report_sums_tenant_counters_and_renders_attribution() {
        let mut report = GatewayReport::default();
        report.tenants.insert(
            "alpha".into(),
            TenantCounters {
                admitted: 5,
                completed: 4,
                shed_overloaded: 1,
                requests_per_stage: vec![4, 0],
                ..TenantCounters::default()
            },
        );
        report.tenants.insert(
            "beta".into(),
            TenantCounters {
                admitted: 3,
                completed: 3,
                rate_limited: 2,
                requests_per_stage: vec![1, 2],
                ..TenantCounters::default()
            },
        );
        report.models.insert(
            "cifarnet".into(),
            ModelCounters { batches: 4, generation: 1, swaps_completed: 1, ..Default::default() },
        );
        report.batches = 4;
        let totals = report.counters();
        let get = |name: &str| totals.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        assert_eq!(get("admitted"), Some(8));
        assert_eq!(get("rate_limited"), Some(2));
        assert_eq!(get("shed_overloaded"), Some(1));
        assert_eq!(get("batches"), Some(4));
        let s = report.summary();
        assert!(s.contains("tenant alpha: 5 admitted"));
        assert!(s.contains("tenant beta"), "{s}");
        assert!(s.contains("model cifarnet: generation 1"));
    }

    #[test]
    fn summary_and_counters_cover_the_robustness_counters() {
        let report = EngineReport {
            admitted: 10,
            completed: 7,
            shed_overloaded: 2,
            degraded_steps: 3,
            quarantined_batches: 1,
            retried_batches: 1,
            requests_per_stage: vec![4, 3],
            ..EngineReport::default()
        };
        let s = report.summary();
        assert!(s.contains("shed: 2"));
        assert!(s.contains("3 degraded"));
        assert!(s.contains("stage0:4 stage1:3"));
        let names: Vec<&str> = report.counters().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"shed_overloaded"));
        assert!(names.contains(&"retried_batches"));
    }
}
