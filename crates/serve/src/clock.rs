//! Injectable time source for the serving engine.
//!
//! Deadlines and the latency EMA need a clock, but a wall clock would make
//! the engine non-reproducible — the one property every other component of
//! this workspace pins with bitwise tests. The engine therefore reads time
//! through [`ServeClock`]: production uses the monotonic [`MonotonicClock`],
//! tests and the determinism suite use [`ManualClock`], where time only
//! moves when a fault (or the test itself) advances it.

use std::time::{Duration, Instant};

/// The engine's time source. `now` is monotonic elapsed time since the
/// clock was created; `stall` models a slow batch (sleeps on the real
/// clock, advances the virtual one).
pub trait ServeClock {
    /// Elapsed time since the clock's origin.
    fn now(&mut self) -> Duration;
    /// Blocks (or virtually advances) for `d` — the slow-batch fault hook.
    fn stall(&mut self, d: Duration);
}

/// Real monotonic time, for production serving.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Starts the clock at "now".
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeClock for MonotonicClock {
    fn now(&mut self) -> Duration {
        self.start.elapsed()
    }

    fn stall(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Deterministic virtual time: `now` returns whatever has been advanced so
/// far, and only [`ServeClock::stall`] / [`ManualClock::advance`] move it.
#[derive(Debug, Default)]
pub struct ManualClock {
    elapsed: Duration,
}

impl ManualClock {
    /// Starts virtual time at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves virtual time forward by `d`.
    pub fn advance(&mut self, d: Duration) {
        self.elapsed += d;
    }
}

impl ServeClock for ManualClock {
    fn now(&mut self) -> Duration {
        self.elapsed
    }

    fn stall(&mut self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let mut c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        assert_eq!(c.now(), Duration::ZERO);
        c.stall(Duration::from_millis(30));
        c.advance(Duration::from_millis(12));
        assert_eq!(c.now(), Duration::from_millis(42));
    }

    #[test]
    fn monotonic_clock_never_runs_backwards() {
        let mut c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
