//! Per-tenant admission policy: token buckets and tenant configuration.
//!
//! The gateway isolates tenants at two layers. The [`TokenBucket`] here is
//! the first: a classic rate limiter run on the gateway's [`ServeClock`],
//! so a bursting tenant is rejected with a typed
//! [`crate::error::RequestError::RateLimited`] *before* it can occupy queue
//! capacity that other tenants need. The second layer (fair-share queue
//! caps and per-tenant degradation ladders) lives in
//! [`crate::gateway::Gateway`].
//!
//! All bucket arithmetic is integer micro-tokens — no floats — so refill
//! and rejection are bitwise-deterministic under `ManualClock`.
//!
//! [`ServeClock`]: crate::clock::ServeClock

use std::time::Duration;

use crate::ladder::LadderConfig;

/// Micro-tokens per whole token. One admitted request costs one token.
const MICRO_PER_TOKEN: u64 = 1_000_000;

/// Admission policy for one tenant.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Sustained request rate, in whole tokens (requests) per second.
    /// Must be positive.
    pub rate_per_sec: u64,
    /// Burst capacity: the bucket holds at most this many whole tokens.
    /// Must be positive.
    pub burst: u64,
    /// Latency budget assigned to this tenant's requests submitted
    /// without an explicit deadline.
    pub default_deadline: Duration,
    /// Degradation ladder shape for this tenant's lanes. Each
    /// `(model, tenant)` lane steps its *own* ladder, so one tenant's
    /// burst never degrades another tenant's quality.
    pub ladder: LadderConfig,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 100,
            burst: 8,
            default_deadline: Duration::from_millis(250),
            ladder: LadderConfig::default(),
        }
    }
}

/// A deterministic token bucket on an injected clock.
///
/// Refill is computed lazily from elapsed clock time at each take, in
/// integer micro-tokens: `rate_per_sec` tokens/second is exactly
/// `rate_per_sec` micro-tokens/microsecond, so no rounding error ever
/// accumulates.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate_per_sec: u64,
    capacity_micro: u64,
    level_micro: u64,
    last_refill: Duration,
}

impl TokenBucket {
    /// A full bucket as of clock time `now`. `rate_per_sec` and `burst`
    /// must both be positive (the gateway validates before constructing).
    pub(crate) fn new(rate_per_sec: u64, burst: u64, now: Duration) -> Self {
        let capacity_micro = burst.saturating_mul(MICRO_PER_TOKEN);
        Self { rate_per_sec, capacity_micro, level_micro: capacity_micro, last_refill: now }
    }

    /// Credits tokens for the time elapsed since the last refill.
    fn refill(&mut self, now: Duration) {
        let elapsed = now.checked_sub(self.last_refill).unwrap_or_default();
        self.last_refill = now;
        let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let added = self.rate_per_sec.saturating_mul(elapsed_us);
        self.level_micro = self.level_micro.saturating_add(added).min(self.capacity_micro);
    }

    /// Takes one whole token, or reports how long until one is available.
    ///
    /// # Errors
    /// The `Err` duration is the exact time until the bucket refills to a
    /// whole token at the configured rate — the `retry_after` surfaced on
    /// [`crate::error::RequestError::RateLimited`].
    pub(crate) fn try_take(&mut self, now: Duration) -> Result<(), Duration> {
        self.refill(now);
        if self.level_micro >= MICRO_PER_TOKEN {
            self.level_micro -= MICRO_PER_TOKEN;
            return Ok(());
        }
        let deficit = MICRO_PER_TOKEN - self.level_micro;
        // rate tokens/s == rate µtokens/µs, so µs to wait = deficit / rate.
        let retry_us = deficit.div_ceil(self.rate_per_sec.max(1));
        Err(Duration::from_micros(retry_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_drains_then_rate_limits_with_an_exact_hint() {
        let t0 = Duration::ZERO;
        let mut bucket = TokenBucket::new(10, 3, t0);
        for _ in 0..3 {
            assert_eq!(bucket.try_take(t0), Ok(()), "burst capacity admits");
        }
        // Empty bucket at 10 tokens/s: one whole token is 100 ms away.
        assert_eq!(bucket.try_take(t0), Err(Duration::from_millis(100)));
        // 40 ms later the deficit has shrunk by 0.4 tokens.
        assert_eq!(bucket.try_take(t0 + Duration::from_millis(40)), Err(Duration::from_millis(60)));
        // At exactly 100 ms the token is whole again.
        assert_eq!(bucket.try_take(t0 + Duration::from_millis(100)), Ok(()));
    }

    #[test]
    fn refill_saturates_at_burst_capacity() {
        let mut bucket = TokenBucket::new(1000, 2, Duration::ZERO);
        assert_eq!(bucket.try_take(Duration::from_secs(3600)), Ok(()));
        assert_eq!(bucket.try_take(Duration::from_secs(3600)), Ok(()));
        assert!(
            bucket.try_take(Duration::from_secs(3600)).is_err(),
            "an hour idle still holds only `burst` tokens"
        );
    }

    #[test]
    fn identical_clock_sequences_make_identical_decisions() {
        let steps: Vec<Duration> = (0..20).map(|i| Duration::from_millis(i * 7)).collect();
        let run = |mut b: TokenBucket| -> Vec<Result<(), Duration>> {
            steps.iter().map(|&t| b.try_take(t)).collect()
        };
        let a = run(TokenBucket::new(50, 2, Duration::ZERO));
        let b = run(TokenBucket::new(50, 2, Duration::ZERO));
        assert_eq!(a, b, "bucket decisions are a pure function of the clock");
    }
}
