//! Runtime cross-check of the serving loop's allocation budget
//! (`adr-check.budget`, `serve_request`).
//!
//! Mirrors `crates/reuse/tests/counting_alloc.rs`: a counting
//! `#[global_allocator]`, one thread, no metrics sink. After warmup,
//! each additional submit→poll round trip of a single-request
//! micro-batch on the exact path (ladder stage 0, healthy traffic, no
//! faults) must perform exactly the pinned number of heap allocations —
//! i.e. zero allocations that the budget does not account for.
//!
//! The pins describe the *default* build: the `checked` sanitizer layer
//! deliberately trades allocations for diagnostics, so this harness is
//! compiled out under that feature.
#![cfg(not(feature = "checked"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adr_nn::checkpoint::Checkpoint;
use adr_nn::conv::Conv2d;
use adr_nn::dense::Dense;
use adr_nn::network::Network;
use adr_nn::relu::Relu;
use adr_serve::clock::ManualClock;
use adr_serve::engine::{Engine, EngineConfig};
use adr_serve::gateway::{Gateway, GatewayConfig};
use adr_serve::registry::ArtifactKind;
use adr_serve::tenant::TenantConfig;
use adr_tensor::im2col::ConvGeom;
use adr_tensor::par::set_thread_override;
use adr_tensor::rng::AdrRng;
use adr_tensor::tensor4::Tensor4;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is
// a relaxed atomic with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Reads one `[runtime]` pin from the workspace `adr-check.budget`
/// (duplicated per test binary; see the reuse twin for why).
fn runtime_budget(key: &str) -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../adr-check.budget");
    let text = std::fs::read_to_string(path).expect("workspace adr-check.budget exists");
    let mut in_runtime = false;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_runtime = line == "[runtime]";
            continue;
        }
        if !in_runtime {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == key {
                return v.trim().parse().expect("budget count parses");
            }
        }
    }
    panic!("adr-check.budget [runtime] is missing `{key}`");
}

fn tiny_net(seed: u64) -> Network {
    let mut rng = AdrRng::seeded(seed);
    let mut net = Network::new((6, 6, 1));
    let geom = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).expect("valid geometry");
    net.push(Box::new(Conv2d::new("conv1", geom, 4, &mut rng)));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Dense::new("fc", 4 * 4 * 4, 3, &mut rng)));
    net
}

#[test]
fn steady_state_request_allocations_match_the_budget() {
    set_thread_override(Some(1));
    let cfg = EngineConfig { max_batch: 1, ..EngineConfig::default() };
    let mut engine =
        Engine::with_clock(tiny_net(9), cfg, Box::new(ManualClock::new())).expect("valid config");
    let image = Tensor4::from_fn(1, 6, 6, 1, |_, y, x, _| (y * 6 + x) as f32 * 0.01);

    let request_round = |engine: &mut Engine| {
        engine.submit(&image).expect("healthy request admits");
        let results = engine.poll();
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok(), "healthy request serves");
    };
    for _ in 0..3 {
        request_round(&mut engine); // warmup: queue/report capacity, lazy init
    }
    assert_eq!(engine.stage(), 0, "healthy traffic stays on the exact path");

    let expected = runtime_budget("serve_request");
    for step in 0..5 {
        let before = allocs();
        request_round(&mut engine);
        let after = allocs();
        assert_eq!(
            after - before,
            expected,
            "serve request {step}: allocation count drifted from \
             adr-check.budget `serve_request`"
        );
    }
    assert_eq!(engine.report().completed, 8, "all rounds served");
}

#[test]
fn steady_state_gateway_request_allocations_match_the_budget() {
    set_thread_override(Some(1));
    // The registry loads artifacts from disk, so the tiny net makes a
    // round trip through a real checkpoint file first.
    let mut net = tiny_net(9);
    let artifact = std::env::temp_dir().join(format!("adr-gw-alloc-{}.adr1", std::process::id()));
    Checkpoint::capture(&mut net).save(&artifact).expect("artifact saves");

    let cfg = GatewayConfig { max_batch: 1, ..GatewayConfig::default() };
    let mut gateway = Gateway::with_clock(cfg, Box::new(ManualClock::new())).expect("valid config");
    gateway
        .register_model("m", ArtifactKind::Adr1, &artifact, Box::new(|| tiny_net(9)))
        .expect("model registers");
    // Virtual time never advances, so the bucket never refills: give it
    // headroom for every round of the test.
    gateway
        .add_tenant("t", TenantConfig { burst: 64, ..TenantConfig::default() })
        .expect("tenant adds");
    std::fs::remove_file(&artifact).expect("artifact removes");
    let image = Tensor4::from_fn(1, 6, 6, 1, |_, y, x, _| (y * 6 + x) as f32 * 0.01);

    let request_round = |gateway: &mut Gateway| {
        gateway.submit("m", "t", &image).expect("healthy request admits");
        let results = gateway.poll();
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok(), "healthy request serves");
    };
    for _ in 0..3 {
        request_round(&mut gateway); // warmup: queue/report capacity, lazy init
    }
    assert_eq!(gateway.stage("m", "t"), Some(0), "healthy traffic stays on the exact path");

    let expected = runtime_budget("gateway_request");
    for step in 0..5 {
        let before = allocs();
        request_round(&mut gateway);
        let after = allocs();
        assert_eq!(
            after - before,
            expected,
            "gateway request {step}: allocation count drifted from \
             adr-check.budget `gateway_request`"
        );
    }
    let completed = gateway.report().tenants["t"].completed;
    assert_eq!(completed, 8, "all rounds served");
}
