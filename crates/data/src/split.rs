//! Train/validation splitting.

use adr_tensor::rng::AdrRng;

use crate::synth::SynthDataset;

/// Index-based train/validation split of a dataset.
#[derive(Clone, Debug)]
pub struct Split {
    train: Vec<usize>,
    val: Vec<usize>,
}

impl Split {
    /// Randomly splits `dataset` with `val_fraction` of images held out.
    ///
    /// # Panics
    /// Panics unless `0.0 < val_fraction < 1.0` and both sides end up
    /// non-empty.
    pub fn random(dataset: &SynthDataset, val_fraction: f64, rng: &mut AdrRng) -> Self {
        assert!(val_fraction > 0.0 && val_fraction < 1.0, "val_fraction must be in (0, 1)");
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        rng.shuffle(&mut order);
        // round() of a non-negative value no larger than the dataset length.
        #[allow(clippy::cast_possible_truncation)]
        let val_len = ((dataset.len() as f64 * val_fraction).round() as usize)
            .clamp(1, dataset.len().saturating_sub(1));
        let val = order.split_off(dataset.len() - val_len);
        assert!(!order.is_empty(), "train side is empty");
        Self { train: order, val }
    }

    /// Training indices.
    pub fn train_indices(&self) -> &[usize] {
        &self.train
    }

    /// Validation indices.
    pub fn val_indices(&self) -> &[usize] {
        &self.val
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn dataset(n: usize) -> SynthDataset {
        let cfg = SynthConfig {
            num_images: n,
            num_classes: 2,
            height: 4,
            width: 4,
            channels: 1,
            smoothing_passes: 1,
            noise_std: 0.01,
            max_shift: 0,
            image_variability: 0.45,
        };
        SynthDataset::generate(&cfg, &mut AdrRng::seeded(1))
    }

    #[test]
    fn split_sizes_match_fraction() {
        let d = dataset(100);
        let s = Split::random(&d, 0.2, &mut AdrRng::seeded(2));
        assert_eq!(s.val_indices().len(), 20);
        assert_eq!(s.train_indices().len(), 80);
    }

    #[test]
    fn split_partitions_without_overlap() {
        let d = dataset(50);
        let s = Split::random(&d, 0.3, &mut AdrRng::seeded(3));
        let mut all: Vec<usize> =
            s.train_indices().iter().chain(s.val_indices()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_dataset_keeps_both_sides_non_empty() {
        let d = dataset(2);
        let s = Split::random(&d, 0.5, &mut AdrRng::seeded(4));
        assert_eq!(s.train_indices().len(), 1);
        assert_eq!(s.val_indices().len(), 1);
    }

    #[test]
    #[should_panic(expected = "val_fraction")]
    fn invalid_fraction_panics() {
        let d = dataset(10);
        Split::random(&d, 1.0, &mut AdrRng::seeded(5));
    }
}
