//! Training-time data augmentation.
//!
//! The paper's TensorFlow-slim input pipeline augments CIFAR/ImageNet
//! batches with random crops and flips; this module provides the same
//! transforms for the synthetic substitute, deterministic per seed.

use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

/// Augmentation configuration.
#[derive(Clone, Copy, Debug)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip per image.
    pub flip_prob: f32,
    /// Maximum |shift| in pixels of the random crop (pad-and-crop style;
    /// 0 disables cropping).
    pub max_crop_shift: usize,
    /// Maximum multiplicative brightness jitter (`0.1` = ±10 %).
    pub brightness_jitter: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self { flip_prob: 0.5, max_crop_shift: 2, brightness_jitter: 0.1 }
    }
}

impl AugmentConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics when probabilities/jitters are outside their ranges.
    pub fn validated(self) -> Self {
        assert!((0.0..=1.0).contains(&self.flip_prob), "flip_prob must be in [0, 1]");
        assert!(
            (0.0..1.0).contains(&self.brightness_jitter),
            "brightness_jitter must be in [0, 1)"
        );
        self
    }
}

/// Applies the configured augmentations to every image of a batch,
/// returning a new tensor. Labels are untouched (all transforms are
/// label-preserving).
// Source coordinates are clamped into [0, dim) before the i64 -> usize casts.
#[allow(clippy::cast_possible_truncation)]
pub fn augment_batch(batch: &Tensor4, cfg: &AugmentConfig, rng: &mut AdrRng) -> Tensor4 {
    let cfg = cfg.validated();
    let (n, h, w, c) = batch.shape();
    let mut out = batch.clone();
    for img in 0..n {
        let flip = rng.uniform() < cfg.flip_prob;
        let (dy, dx) = if cfg.max_crop_shift > 0 {
            let span = 2 * cfg.max_crop_shift + 1;
            (
                rng.below(span) as i64 - cfg.max_crop_shift as i64,
                rng.below(span) as i64 - cfg.max_crop_shift as i64,
            )
        } else {
            (0, 0)
        };
        let gain = 1.0 + cfg.brightness_jitter * (2.0 * rng.uniform() - 1.0);
        for y in 0..h {
            for x in 0..w {
                // Source coordinates: shifted (clamped at borders, the
                // pad-and-crop equivalent) and optionally mirrored.
                let sy = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
                let sx_raw = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
                let sx = if flip { w - 1 - sx_raw } else { sx_raw };
                for ch in 0..c {
                    *out.get_mut(img, y, x, ch) = batch.get(img, sy, sx, ch) * gain;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(seed: u64) -> Tensor4 {
        let mut rng = AdrRng::seeded(seed);
        Tensor4::from_fn(3, 8, 8, 2, |_, _, _, _| rng.gauss())
    }

    #[test]
    fn identity_config_is_identity() {
        let cfg = AugmentConfig { flip_prob: 0.0, max_crop_shift: 0, brightness_jitter: 0.0 };
        let x = batch(1);
        let y = augment_batch(&x, &cfg, &mut AdrRng::seeded(2));
        assert_eq!(x.as_slice(), y.as_slice());
    }

    #[test]
    fn guaranteed_flip_mirrors_columns() {
        let cfg = AugmentConfig { flip_prob: 1.0, max_crop_shift: 0, brightness_jitter: 0.0 };
        let x = batch(3);
        let y = augment_batch(&x, &cfg, &mut AdrRng::seeded(4));
        let (_, h, w, c) = x.shape();
        for yy in 0..h {
            for xx in 0..w {
                for ch in 0..c {
                    assert_eq!(y.get(0, yy, xx, ch), x.get(0, yy, w - 1 - xx, ch));
                }
            }
        }
    }

    #[test]
    fn flip_is_involutive() {
        let cfg = AugmentConfig { flip_prob: 1.0, max_crop_shift: 0, brightness_jitter: 0.0 };
        let x = batch(5);
        let once = augment_batch(&x, &cfg, &mut AdrRng::seeded(6));
        let twice = augment_batch(&once, &cfg, &mut AdrRng::seeded(7));
        assert_eq!(x.as_slice(), twice.as_slice());
    }

    #[test]
    fn brightness_jitter_scales_whole_image_uniformly() {
        let cfg = AugmentConfig { flip_prob: 0.0, max_crop_shift: 0, brightness_jitter: 0.3 };
        let x = batch(8);
        let y = augment_batch(&x, &cfg, &mut AdrRng::seeded(9));
        // Per image, the ratio y/x must be constant wherever x != 0.
        let per = 8 * 8 * 2;
        for img in 0..3 {
            let xs = &x.as_slice()[img * per..(img + 1) * per];
            let ys = &y.as_slice()[img * per..(img + 1) * per];
            let mut gain = None;
            for (a, b) in xs.iter().zip(ys) {
                if a.abs() > 1e-3 {
                    let g = b / a;
                    match gain {
                        None => gain = Some(g),
                        Some(g0) => assert!((g - g0).abs() < 1e-4, "gain varies: {g0} vs {g}"),
                    }
                }
            }
            let g = gain.expect("image has non-zero pixels");
            assert!((0.7..=1.3).contains(&g), "gain {g} out of jitter range");
        }
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let cfg = AugmentConfig::default();
        let x = batch(10);
        let a = augment_batch(&x, &cfg, &mut AdrRng::seeded(11));
        let b = augment_batch(&x, &cfg, &mut AdrRng::seeded(11));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "flip_prob")]
    fn invalid_flip_prob_panics() {
        let cfg = AugmentConfig { flip_prob: 1.5, max_crop_shift: 0, brightness_jitter: 0.0 };
        augment_batch(&batch(12), &cfg, &mut AdrRng::seeded(13));
    }
}
