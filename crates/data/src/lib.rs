//! Seeded synthetic image datasets.
//!
//! The paper evaluates on CIFAR-10 and ImageNet, which are not available in
//! this environment. The substitution (documented in DESIGN.md) preserves
//! the property deep reuse exploits: natural images are locally smooth and
//! repetitive, so the receptive-field rows of the unfolded input matrix are
//! highly similar. [`synth::SynthDataset`] reproduces that redundancy with
//! per-class smoothed templates plus translation jitter and pixel noise —
//! classes stay separable (networks can learn) while neighbouring patches
//! stay correlated (neuron vectors cluster).

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod augment;
pub mod batcher;
pub mod split;
pub mod synth;

pub use augment::{augment_batch, AugmentConfig};
pub use batcher::{BatchError, Batcher};
pub use synth::{SynthConfig, SynthDataset};
