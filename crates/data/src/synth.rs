//! Per-class smoothed-template image synthesis.

// Pixel coordinates are bounds-checked or clamped before i64 -> usize casts.
#![allow(clippy::cast_possible_truncation)]

use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

/// Parameters of the synthetic generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of images to generate.
    pub num_images: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Channels.
    pub channels: usize,
    /// Box-blur passes applied to each class template (more = smoother
    /// images = more neuron-vector similarity).
    pub smoothing_passes: usize,
    /// Per-pixel Gaussian noise standard deviation.
    pub noise_std: f32,
    /// Maximum |translation| in pixels applied per sample.
    pub max_shift: usize,
    /// Weight in `[0, 1)` of a *per-image* smoothed random field mixed into
    /// every sample. Zero reproduces pure template+noise images; higher
    /// values add image-specific structure, which both raises the
    /// neuron-vector remaining ratio towards natural-image levels and makes
    /// classification genuinely hard (the class signal must be separated
    /// from per-image content).
    pub image_variability: f32,
}

impl SynthConfig {
    /// CIFAR-10 stand-in: 32×32×3, 10 classes.
    pub fn cifar_like(num_images: usize) -> Self {
        Self {
            num_images,
            num_classes: 10,
            height: 32,
            width: 32,
            channels: 3,
            smoothing_passes: 3,
            noise_std: 0.05,
            max_shift: 3,
            image_variability: 0.45,
        }
    }

    /// ImageNet stand-in at bench scale: 64×64×3, 100 classes by default.
    /// (Full 224×224 is available through [`SynthConfig::imagenet_paper_scale`]
    /// but is far too slow to *train* on a CPU; see DESIGN.md.)
    pub fn imagenet_like(num_images: usize, num_classes: usize) -> Self {
        Self {
            num_images,
            num_classes,
            height: 64,
            width: 64,
            channels: 3,
            smoothing_passes: 4,
            noise_std: 0.05,
            max_shift: 5,
            image_variability: 0.45,
        }
    }

    /// Full 224×224×3 geometry matching the paper's AlexNet/VGG-19 inputs.
    pub fn imagenet_paper_scale(num_images: usize, num_classes: usize) -> Self {
        Self {
            num_images,
            num_classes,
            height: 224,
            width: 224,
            channels: 3,
            smoothing_passes: 5,
            noise_std: 0.05,
            max_shift: 10,
            image_variability: 0.45,
        }
    }
}

/// A fully materialised labelled image set.
#[derive(Clone, Debug)]
pub struct SynthDataset {
    images: Tensor4,
    labels: Vec<usize>,
    num_classes: usize,
}

/// One class template: a smoothed random field per channel.
fn make_template(cfg: &SynthConfig, rng: &mut AdrRng) -> Vec<f32> {
    let (h, w, c) = (cfg.height, cfg.width, cfg.channels);
    let mut field: Vec<f32> = (0..h * w * c).map(|_| rng.uniform()).collect();
    // Separable box blur per channel, `smoothing_passes` times.
    let mut tmp = vec![0.0f32; h * w * c];
    for _ in 0..cfg.smoothing_passes {
        // Horizontal pass.
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    let mut sum = 0.0;
                    let mut count = 0.0;
                    for dx in -1i64..=1 {
                        let xx = x as i64 + dx;
                        if xx < 0 || xx >= w as i64 {
                            continue;
                        }
                        sum += field[(y * w + xx as usize) * c + ch];
                        count += 1.0;
                    }
                    tmp[(y * w + x) * c + ch] = sum / count;
                }
            }
        }
        // Vertical pass.
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    let mut sum = 0.0;
                    let mut count = 0.0;
                    for dy in -1i64..=1 {
                        let yy = y as i64 + dy;
                        if yy < 0 || yy >= h as i64 {
                            continue;
                        }
                        sum += tmp[(yy as usize * w + x) * c + ch];
                        count += 1.0;
                    }
                    field[(y * w + x) * c + ch] = sum / count;
                }
            }
        }
    }
    // Stretch contrast to [-0.5, 0.5]. Zero-mean matters: the paper's
    // TF-slim pipeline standardises images per-image, and angular-cosine
    // LSH needs sign diversity — all-positive patches would collapse into
    // a handful of clusters regardless of content.
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in &field {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let scale = if hi > lo { 1.0 / (hi - lo) } else { 1.0 };
    for v in &mut field {
        *v = (*v - lo) * scale - 0.5;
    }
    field
}

impl SynthDataset {
    /// Generates a dataset from a config.
    ///
    /// # Panics
    /// Panics on zero-sized dimensions or `num_classes == 0`.
    pub fn generate(cfg: &SynthConfig, rng: &mut AdrRng) -> Self {
        assert!(cfg.num_classes > 0, "need at least one class");
        assert!(cfg.height > 0 && cfg.width > 0 && cfg.channels > 0, "degenerate image shape");
        assert!((0.0..1.0).contains(&cfg.image_variability), "image_variability must be in [0, 1)");
        let templates: Vec<Vec<f32>> =
            (0..cfg.num_classes).map(|_| make_template(cfg, rng)).collect();
        // Per-image fields use fewer smoothing passes than class templates:
        // they model mid-frequency image-specific content.
        let field_cfg = SynthConfig { smoothing_passes: cfg.smoothing_passes.div_ceil(2), ..*cfg };
        let (h, w, c) = (cfg.height, cfg.width, cfg.channels);
        let mut images = Tensor4::zeros(cfg.num_images, h, w, c);
        let mut labels = Vec::with_capacity(cfg.num_images);
        for img in 0..cfg.num_images {
            let label = rng.below(cfg.num_classes);
            labels.push(label);
            let template = &templates[label];
            let shift = cfg.max_shift as i64;
            let dy = if shift > 0 { rng.below(2 * shift as usize + 1) as i64 - shift } else { 0 };
            let dx = if shift > 0 { rng.below(2 * shift as usize + 1) as i64 - shift } else { 0 };
            let gain = 0.8 + 0.4 * rng.uniform();
            let own_field = if cfg.image_variability > 0.0 {
                Some(make_template(&field_cfg, rng))
            } else {
                None
            };
            let w_class = 1.0 - cfg.image_variability;
            for y in 0..h {
                for x in 0..w {
                    // Clamped translation keeps patches smooth at borders.
                    let sy = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
                    let sx = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
                    for ch in 0..c {
                        let mut v = template[(sy * w + sx) * c + ch] * w_class;
                        if let Some(field) = &own_field {
                            v += field[(y * w + x) * c + ch] * cfg.image_variability;
                        }
                        *images.get_mut(img, y, x, ch) = v * gain + cfg.noise_std * rng.gauss();
                    }
                }
            }
        }
        Self { images, labels, num_classes: cfg.num_classes }
    }

    /// CIFAR-10-like shorthand: `num_images` 32×32×3 images over
    /// `num_classes` classes (pass 10 for the paper's setup).
    pub fn cifar_like(num_images: usize, num_classes: usize, rng: &mut AdrRng) -> Self {
        let cfg = SynthConfig { num_classes, ..SynthConfig::cifar_like(num_images) };
        Self::generate(&cfg, rng)
    }

    /// ImageNet-like shorthand at bench scale (64×64×3).
    pub fn imagenet_like(num_images: usize, num_classes: usize, rng: &mut AdrRng) -> Self {
        Self::generate(&SynthConfig::imagenet_like(num_images, num_classes), rng)
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-image `(h, w, c)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        (self.images.height(), self.images.width(), self.images.channels())
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Borrow the full image tensor.
    pub fn images(&self) -> &Tensor4 {
        &self.images
    }

    /// Mutable access to the image tensor — the fault-injection surface
    /// (tests poison pixels to exercise validated batching and admission).
    pub fn images_mut(&mut self) -> &mut Tensor4 {
        &mut self.images
    }

    /// Copies the images at `indices` into a batch.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> (Tensor4, Vec<usize>) {
        let (h, w, c) = self.image_shape();
        let per = h * w * c;
        let mut out = Tensor4::zeros(indices.len(), h, w, c);
        let mut labels = Vec::with_capacity(indices.len());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.len(), "index {idx} out of bounds");
            out.as_mut_slice()[i * per..(i + 1) * per]
                .copy_from_slice(&self.images.as_slice()[idx * per..(idx + 1) * per]);
            labels.push(self.labels[idx]);
        }
        (out, labels)
    }

    /// The `index`-th contiguous batch of `batch_size` images (wrapping at
    /// the end of the dataset).
    ///
    /// # Panics
    /// Panics when `batch_size` is zero.
    pub fn batch(&self, index: usize, batch_size: usize) -> (Tensor4, Vec<usize>) {
        assert!(batch_size > 0, "batch_size must be positive");
        let start = (index * batch_size) % self.len();
        let indices: Vec<usize> = (0..batch_size).map(|i| (start + i) % self.len()).collect();
        self.gather(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> SynthDataset {
        let cfg = SynthConfig {
            num_images: 40,
            num_classes: 4,
            height: 12,
            width: 12,
            channels: 3,
            smoothing_passes: 2,
            noise_std: 0.05,
            max_shift: 2,
            image_variability: 0.4,
        };
        SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed))
    }

    #[test]
    fn shapes_and_labels_are_consistent() {
        let d = small(1);
        assert_eq!(d.len(), 40);
        assert_eq!(d.image_shape(), (12, 12, 3));
        assert!(d.labels().iter().all(|&l| l < 4));
        // All classes appear with 40 draws over 4 classes (overwhelmingly).
        let mut seen = [false; 4];
        for &l in d.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(7);
        let b = small(7);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images().as_slice(), b.images().as_slice());
    }

    #[test]
    fn same_class_images_are_more_similar_than_cross_class() {
        let d = small(3);
        // Mean pixel L2 distance within class vs across classes.
        let dist = |i: usize, j: usize| -> f32 {
            let (h, w, c) = d.image_shape();
            let per = h * w * c;
            let a = &d.images().as_slice()[i * per..(i + 1) * per];
            let b = &d.images().as_slice()[j * per..(j + 1) * per];
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                if d.labels()[i] == d.labels()[j] {
                    within.push(dist(i, j));
                } else {
                    across.push(dist(i, j));
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&within) < mean(&across),
            "within {} vs across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn images_are_locally_smooth() {
        // The key property for deep reuse: neighbouring pixels correlate.
        let d = small(4);
        let (h, w, c) = d.image_shape();
        let mut neighbour_diff = 0.0f32;
        let mut random_diff = 0.0f32;
        let mut rng = AdrRng::seeded(9);
        let mut count = 0.0;
        for img in 0..4 {
            for y in 0..h - 1 {
                for x in 0..w - 1 {
                    let a = d.images().get(img, y, x, 0);
                    neighbour_diff += (a - d.images().get(img, y, x + 1, 0)).abs();
                    let ry = rng.below(h);
                    let rx = rng.below(w);
                    random_diff += (a - d.images().get(img, ry, rx, 0)).abs();
                    count += 1.0;
                }
            }
        }
        let _ = c;
        assert!(
            neighbour_diff / count < random_diff / count,
            "adjacent pixels must correlate more than random pairs"
        );
    }

    #[test]
    fn batches_wrap_around() {
        let d = small(5);
        let (imgs, labels) = d.batch(0, 16);
        assert_eq!(imgs.batch(), 16);
        assert_eq!(labels.len(), 16);
        // Index far beyond the dataset still works.
        let (imgs2, _) = d.batch(100, 16);
        assert_eq!(imgs2.batch(), 16);
    }

    #[test]
    fn gather_picks_requested_rows() {
        let d = small(6);
        let (imgs, labels) = d.gather(&[3, 3, 7]);
        assert_eq!(imgs.batch(), 3);
        assert_eq!(labels[0], d.labels()[3]);
        assert_eq!(labels[1], d.labels()[3]);
        assert_eq!(labels[2], d.labels()[7]);
        assert_eq!(imgs.image(0), imgs.image(1));
    }

    #[test]
    fn cifar_like_has_paper_geometry() {
        let d = SynthDataset::cifar_like(8, 10, &mut AdrRng::seeded(8));
        assert_eq!(d.image_shape(), (32, 32, 3));
        assert_eq!(d.num_classes(), 10);
    }
}
