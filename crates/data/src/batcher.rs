//! Shuffled mini-batch iteration.

use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

use crate::synth::SynthDataset;

/// Iterates a dataset in shuffled mini-batches, reshuffling every epoch
/// (the paper randomly shuffles inputs before feeding the network, §VI).
pub struct Batcher<'a> {
    dataset: &'a SynthDataset,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    rng: AdrRng,
    epoch: usize,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher with its own shuffle stream.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or the dataset is empty.
    pub fn new(dataset: &'a SynthDataset, batch_size: usize, mut rng: AdrRng) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(!dataset.is_empty(), "cannot batch an empty dataset");
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        rng.shuffle(&mut order);
        Self { dataset, batch_size, order, cursor: 0, rng, epoch: 0 }
    }

    /// Batches per epoch (last partial batch is dropped).
    pub fn batches_per_epoch(&self) -> usize {
        (self.dataset.len() / self.batch_size).max(1)
    }

    /// Completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Produces the next batch, reshuffling at epoch boundaries.
    pub fn next_batch(&mut self) -> (Tensor4, Vec<usize>) {
        if self.cursor + self.batch_size > self.order.len() {
            self.rng.shuffle(&mut self.order);
            self.cursor = 0;
            self.epoch += 1;
        }
        let idx = &self.order[self.cursor..self.cursor + self.batch_size.min(self.order.len())];
        self.cursor += self.batch_size;
        self.dataset.gather(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn dataset() -> SynthDataset {
        let cfg = SynthConfig {
            num_images: 20,
            num_classes: 2,
            height: 6,
            width: 6,
            channels: 1,
            smoothing_passes: 1,
            noise_std: 0.01,
            max_shift: 1,
            image_variability: 0.45,
        };
        SynthDataset::generate(&cfg, &mut AdrRng::seeded(1))
    }

    #[test]
    fn batches_have_requested_size() {
        let d = dataset();
        let mut b = Batcher::new(&d, 6, AdrRng::seeded(2));
        let (imgs, labels) = b.next_batch();
        assert_eq!(imgs.batch(), 6);
        assert_eq!(labels.len(), 6);
        assert_eq!(b.batches_per_epoch(), 3);
    }

    #[test]
    fn epoch_covers_each_image_at_most_once() {
        let d = dataset();
        let mut b = Batcher::new(&d, 5, AdrRng::seeded(3));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let (_, labels) = b.next_batch();
            // Labels alone can repeat; track via image identity using the
            // order vector indirectly: batches within one epoch are disjoint
            // chunks of a permutation, so 4 batches of 5 cover all 20 images.
            for l in labels {
                seen.insert(l);
            }
        }
        assert_eq!(b.epoch(), 0);
        // Next batch rolls into a new epoch.
        b.next_batch();
        assert_eq!(b.epoch(), 1);
        let _ = seen;
    }

    #[test]
    fn reshuffle_changes_order_across_epochs() {
        let d = dataset();
        let mut b = Batcher::new(&d, 20, AdrRng::seeded(4));
        let (first_epoch, _) = b.next_batch();
        let (second_epoch, _) = b.next_batch();
        assert_ne!(
            first_epoch.as_slice(),
            second_epoch.as_slice(),
            "epochs should be differently shuffled"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let mut b1 = Batcher::new(&d, 4, AdrRng::seeded(5));
        let mut b2 = Batcher::new(&d, 4, AdrRng::seeded(5));
        for _ in 0..7 {
            let (i1, l1) = b1.next_batch();
            let (i2, l2) = b2.next_batch();
            assert_eq!(l1, l2);
            assert_eq!(i1.as_slice(), i2.as_slice());
        }
    }
}
