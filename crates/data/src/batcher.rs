//! Shuffled mini-batch iteration.

use adr_tensor::rng::AdrRng;
use adr_tensor::sanitize::first_non_finite;
use adr_tensor::Tensor4;

use crate::synth::SynthDataset;

/// Why a validated batch could not be produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchError {
    /// A gathered sample carries a NaN/Inf pixel.
    NonFiniteSample {
        /// Index of the offending image in the dataset (not the batch).
        dataset_index: usize,
        /// Flat offset of the first bad value within that image.
        offset: usize,
        /// The offending value.
        value: f32,
    },
    /// The dataset's per-image shape disagrees with what the consumer
    /// declared via [`Batcher::with_expected_shape`].
    ShapeMismatch {
        /// Shape the consumer expects.
        expected: (usize, usize, usize),
        /// Shape the dataset actually produces.
        found: (usize, usize, usize),
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteSample { dataset_index, offset, value } => write!(
                f,
                "dataset image {dataset_index} has non-finite value {value} at offset {offset}"
            ),
            Self::ShapeMismatch { expected, found } => write!(
                f,
                "dataset images are {}x{}x{}, consumer expects {}x{}x{}",
                found.0, found.1, found.2, expected.0, expected.1, expected.2
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// Iterates a dataset in shuffled mini-batches, reshuffling every epoch
/// (the paper randomly shuffles inputs before feeding the network, §VI).
pub struct Batcher<'a> {
    dataset: &'a SynthDataset,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    rng: AdrRng,
    epoch: usize,
    expected_shape: Option<(usize, usize, usize)>,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher with its own shuffle stream.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or the dataset is empty.
    pub fn new(dataset: &'a SynthDataset, batch_size: usize, mut rng: AdrRng) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(!dataset.is_empty(), "cannot batch an empty dataset");
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        rng.shuffle(&mut order);
        Self { dataset, batch_size, order, cursor: 0, rng, epoch: 0, expected_shape: None }
    }

    /// Pins the per-image shape [`Batcher::try_next_batch`] must produce —
    /// typically the consuming network's input shape, so a mis-wired
    /// dataset fails with a typed error instead of a panic deep in a layer.
    #[must_use]
    pub fn with_expected_shape(mut self, shape: (usize, usize, usize)) -> Self {
        self.expected_shape = Some(shape);
        self
    }

    /// Batches per epoch (last partial batch is dropped).
    pub fn batches_per_epoch(&self) -> usize {
        (self.dataset.len() / self.batch_size).max(1)
    }

    /// Completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Produces the next batch, reshuffling at epoch boundaries.
    pub fn next_batch(&mut self) -> (Tensor4, Vec<usize>) {
        if self.cursor + self.batch_size > self.order.len() {
            self.rng.shuffle(&mut self.order);
            self.cursor = 0;
            self.epoch += 1;
        }
        let idx = &self.order[self.cursor..self.cursor + self.batch_size.min(self.order.len())];
        self.cursor += self.batch_size;
        self.dataset.gather(idx)
    }

    /// [`Batcher::next_batch`] with validation: rejects a batch containing
    /// non-finite pixels (naming the offending *dataset* image, not just
    /// the batch slot) and, when a shape was pinned, a mis-shaped dataset.
    ///
    /// The cursor advances either way, so a caller can skip a poisoned
    /// batch and continue with the next one.
    ///
    /// # Errors
    /// [`BatchError::ShapeMismatch`] / [`BatchError::NonFiniteSample`].
    pub fn try_next_batch(&mut self) -> Result<(Tensor4, Vec<usize>), BatchError> {
        if let Some(expected) = self.expected_shape {
            let found = self.dataset.image_shape();
            if found != expected {
                return Err(BatchError::ShapeMismatch { expected, found });
            }
        }
        let start = if self.cursor + self.batch_size > self.order.len() { 0 } else { self.cursor };
        let (images, labels) = self.next_batch();
        if let Some((index, value)) = first_non_finite(images.as_slice()) {
            let (h, w, c) = self.dataset.image_shape();
            let per = h * w * c;
            let slot = index / per;
            let dataset_index = self.order.get(start + slot).copied().unwrap_or(slot);
            return Err(BatchError::NonFiniteSample { dataset_index, offset: index % per, value });
        }
        Ok((images, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn dataset() -> SynthDataset {
        let cfg = SynthConfig {
            num_images: 20,
            num_classes: 2,
            height: 6,
            width: 6,
            channels: 1,
            smoothing_passes: 1,
            noise_std: 0.01,
            max_shift: 1,
            image_variability: 0.45,
        };
        SynthDataset::generate(&cfg, &mut AdrRng::seeded(1))
    }

    #[test]
    fn batches_have_requested_size() {
        let d = dataset();
        let mut b = Batcher::new(&d, 6, AdrRng::seeded(2));
        let (imgs, labels) = b.next_batch();
        assert_eq!(imgs.batch(), 6);
        assert_eq!(labels.len(), 6);
        assert_eq!(b.batches_per_epoch(), 3);
    }

    #[test]
    fn epoch_covers_each_image_at_most_once() {
        let d = dataset();
        let mut b = Batcher::new(&d, 5, AdrRng::seeded(3));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let (_, labels) = b.next_batch();
            // Labels alone can repeat; track via image identity using the
            // order vector indirectly: batches within one epoch are disjoint
            // chunks of a permutation, so 4 batches of 5 cover all 20 images.
            for l in labels {
                seen.insert(l);
            }
        }
        assert_eq!(b.epoch(), 0);
        // Next batch rolls into a new epoch.
        b.next_batch();
        assert_eq!(b.epoch(), 1);
        let _ = seen;
    }

    #[test]
    fn reshuffle_changes_order_across_epochs() {
        let d = dataset();
        let mut b = Batcher::new(&d, 20, AdrRng::seeded(4));
        let (first_epoch, _) = b.next_batch();
        let (second_epoch, _) = b.next_batch();
        assert_ne!(
            first_epoch.as_slice(),
            second_epoch.as_slice(),
            "epochs should be differently shuffled"
        );
    }

    #[test]
    fn try_next_batch_accepts_clean_data_and_matches_next_batch() {
        let d = dataset();
        let mut checked = Batcher::new(&d, 4, AdrRng::seeded(6)).with_expected_shape((6, 6, 1));
        let mut plain = Batcher::new(&d, 4, AdrRng::seeded(6));
        for _ in 0..6 {
            let (i1, l1) = checked.try_next_batch().unwrap();
            let (i2, l2) = plain.next_batch();
            assert_eq!(l1, l2);
            assert_eq!(i1.as_slice(), i2.as_slice());
        }
    }

    #[test]
    fn try_next_batch_rejects_a_mis_shaped_dataset() {
        let d = dataset();
        let mut b = Batcher::new(&d, 4, AdrRng::seeded(7)).with_expected_shape((16, 16, 3));
        assert_eq!(
            b.try_next_batch(),
            Err(BatchError::ShapeMismatch { expected: (16, 16, 3), found: (6, 6, 1) })
        );
    }

    #[test]
    fn try_next_batch_names_the_poisoned_dataset_image() {
        let mut d = dataset();
        // Poison one pixel of dataset image 13.
        let per = 6 * 6;
        d.images_mut().as_mut_slice()[13 * per + 5] = f32::NAN;
        let mut b = Batcher::new(&d, 20, AdrRng::seeded(8));
        let err = b.try_next_batch().unwrap_err();
        // NaN compares unequal to itself, so match fields instead of the
        // whole variant.
        match err {
            BatchError::NonFiniteSample { dataset_index, offset, value } => {
                assert_eq!(dataset_index, 13);
                assert_eq!(offset, 5);
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        assert!(err.to_string().contains("image 13"));
        // The cursor advanced past the poisoned epoch: skipping is possible.
        let before = b.epoch();
        let _ = b.try_next_batch();
        assert!(b.epoch() >= before);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let mut b1 = Batcher::new(&d, 4, AdrRng::seeded(5));
        let mut b2 = Batcher::new(&d, 4, AdrRng::seeded(5));
        for _ in 0..7 {
            let (i1, l1) = b1.next_batch();
            let (i2, l2) = b2.next_batch();
            assert_eq!(l1, l2);
            assert_eq!(i1.as_slice(), i2.as_slice());
        }
    }
}
