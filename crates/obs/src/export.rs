//! Exporters: Prometheus text and JSON-lines run logs, persisted through
//! `adr_nn::durable::write_atomic` so a crash mid-export can never leave a
//! truncated metrics file behind (the same temp + fsync + rename discipline
//! as checkpoints; enforced by the `adr::durable_io` lint on this crate).

use crate::json::Json;
use crate::sink::Recorder;
use adr_nn::durable::write_atomic;
use std::io;
use std::path::Path;

/// Atomically writes the recorder's Prometheus text exposition to `path`.
///
/// # Errors
///
/// Propagates I/O failures from the atomic writer.
pub fn write_prometheus(path: &Path, recorder: &Recorder) -> io::Result<()> {
    write_atomic(path, recorder.to_prometheus().as_bytes())
}

/// Atomically writes the recorder's JSON-lines run log to `path`.
///
/// # Errors
///
/// Propagates I/O failures from the atomic writer.
pub fn write_json_lines(path: &Path, recorder: &Recorder, include_timing: bool) -> io::Result<()> {
    write_atomic(path, recorder.to_json_lines(include_timing).as_bytes())
}

/// Atomically writes a pretty-rendered JSON document (the BENCH files).
///
/// # Errors
///
/// Propagates I/O failures from the atomic writer.
pub fn write_json(path: &Path, doc: &Json) -> io::Result<()> {
    write_atomic(path, doc.render_pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::sink::MetricSink;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("adr_obs_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn exports_land_on_disk_atomically() {
        let rec = Recorder::new();
        rec.counter_add("adr_train_steps", &[], 3);
        let prom = temp_path("metrics.prom");
        let jsonl = temp_path("run.jsonl");
        write_prometheus(&prom, &rec).unwrap();
        write_json_lines(&jsonl, &rec, false).unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("adr_train_steps 3"));
        let jsonl_text = std::fs::read_to_string(&jsonl).unwrap();
        assert!(jsonl_text.contains("\"value\":3"));
        std::fs::remove_file(&prom).ok();
        std::fs::remove_file(&jsonl).ok();
    }

    #[test]
    fn bench_documents_round_trip_through_disk() {
        let doc = Json::Obj(vec![("schema".to_string(), Json::Str("x/v1".to_string()))]);
        let path = temp_path("bench.json");
        write_json(&path, &doc).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        std::fs::remove_file(&path).ok();
    }
}
