//! A minimal JSON value, writer, and parser.
//!
//! The BENCH files and the JSON-lines run logs must be (a) dependency-free
//! and (b) byte-deterministic across identical runs, so this module
//! hand-rolls the subset of JSON the telemetry layer needs instead of
//! pulling in serde. Objects preserve insertion order (a `Vec` of pairs,
//! not a map), which keeps the emitted bytes stable and diffable.

use std::fmt::Write as _;

/// A JSON value. Numbers are split into [`Json::Uint`] (exact u64 counters,
/// FLOP totals) and [`Json::Num`] (ratios, seconds) so counter values
/// round-trip without floating-point loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without a decimal point.
    Uint(u64),
    /// A double; non-finite values serialise as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 (accepting both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an exact u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object slice.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serialises with two-space indentation (the BENCH file format).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) when the input
    /// is not valid JSON of the subset this module writes.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip Display is deterministic; force a decimal
    // point so integral floats stay distinguishable from Uint on re-parse.
    if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{n:.1}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("truncated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unknown escape at byte {pos}")),
                }
            }
            b => out.push(b),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number bytes".to_string())?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Uint(n));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn round_trips_the_bench_subset() {
        let doc = Json::Obj(vec![
            ("schema".to_string(), Json::Str("adr-bench-train/v1".to_string())),
            ("count".to_string(), Json::Uint(18_446_744_073_709_551_615)),
            ("ratio".to_string(), Json::Num(0.25)),
            ("whole".to_string(), Json::Num(3.0)),
            ("flag".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            ("items".to_string(), Json::Arr(vec![Json::Uint(1), Json::Num(2.5)])),
        ]);
        let compact = doc.render();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = doc.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn uint_values_round_trip_exactly() {
        let n = u64::MAX - 3;
        let parsed = Json::parse(&Json::Uint(n).render()).unwrap();
        assert_eq!(parsed.as_u64(), Some(n));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 tail").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = Json::parse("{\"a\": 3, \"b\": 0.5, \"c\": \"x\"}").unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(0.5));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
