//! Scoped span timers with the reuse-phase taxonomy.
//!
//! A [`SpanGuard`] reads `Instant::now()` on creation and records elapsed
//! nanoseconds into the installed sink on drop — but only when a sink is
//! installed *and* it wants timing ([`crate::sink::MetricSink::wants_timing`]).
//! With no sink installed the guard is a zero-field no-op, which is what
//! keeps the NullSink overhead under the 2% budget.
//!
//! Wall times are timing metrics: they land in the recorder's separate time
//! map and never participate in the deterministic value export.

use std::time::Instant;

/// The per-layer phase taxonomy of the reuse convolution (DESIGN.md §11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Unfolding the input into neuron vectors (im2col).
    Im2col,
    /// LSH signature computation over all neuron vectors.
    Hash,
    /// Grouping equal signatures into clusters.
    Cluster,
    /// Centroid averaging plus the centroid GEMM.
    CentroidGemm,
    /// Scattering centroid outputs back to all rows (+ bias).
    Scatter,
}

impl Phase {
    /// Stable label value used in metric keys and the BENCH schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Im2col => "im2col",
            Phase::Hash => "hash",
            Phase::Cluster => "cluster",
            Phase::CentroidGemm => "centroid_gemm",
            Phase::Scatter => "scatter",
        }
    }

    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 5] =
        [Phase::Im2col, Phase::Hash, Phase::Cluster, Phase::CentroidGemm, Phase::Scatter];
}

/// Metric name under which phase wall times accumulate.
pub const PHASE_TIME_METRIC: &str = "adr_phase_wall_ns";

/// An RAII wall-time span; records on drop. Obtain via [`crate::span_phase`]
/// or [`crate::span_named`].
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    start: Instant,
    name: &'static str,
    labels: Vec<(String, String)>,
}

impl SpanGuard {
    pub(crate) fn disabled() -> Self {
        Self { inner: None }
    }

    pub(crate) fn started(name: &'static str, labels: Vec<(String, String)>) -> Self {
        Self { inner: Some(SpanInner { start: Instant::now(), name, labels }) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let nanos = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let borrowed: Vec<(&str, &str)> =
                inner.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            crate::time_ns(inner.name, &borrowed, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::sink::Recorder;
    use std::rc::Rc;

    #[test]
    fn phase_labels_are_stable() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(labels, ["im2col", "hash", "cluster", "centroid_gemm", "scatter"]);
    }

    #[test]
    fn span_records_into_the_installed_sink() {
        let rec = Recorder::new();
        {
            let _guard = crate::install(Rc::new(rec.clone()));
            crate::enter_layer("conv_t");
            let _span = crate::span_phase(Phase::Hash);
        }
        let stat = rec
            .time(PHASE_TIME_METRIC, &[("layer", "conv_t"), ("phase", "hash")])
            .expect("span should have recorded");
        assert_eq!(stat.count, 1);
    }

    #[test]
    fn span_is_inert_without_a_sink() {
        // Must not panic or allocate a label set; nothing to observe beyond
        // "it runs".
        let _span = crate::span_phase(Phase::Scatter);
    }
}
