//! # adr-obs — deterministic telemetry for Adaptive Deep Reuse
//!
//! A zero-dependency observability layer threaded through the trainer, the
//! reuse convolution, and the serving engine (DESIGN.md §11):
//!
//! * [`span`] — scoped wall-time spans with the per-layer/per-phase
//!   taxonomy (im2col, hash, cluster, centroid-GEMM, scatter).
//! * [`sink`] — the [`MetricSink`] trait, the no-op [`NullSink`], and the
//!   collecting [`Recorder`] (counters / gauges / histograms / span times).
//! * [`export`] — Prometheus text format and JSON-lines run logs, written
//!   through `adr_nn::durable`'s atomic writer.
//! * [`bench`] — the `BENCH_train.json` / `BENCH_serve.json` schema and its
//!   validator (what `adr bench` emits and CI checks).
//!
//! ## Install model
//!
//! The active sink is a **thread-local**: [`install`] swaps a sink in and
//! returns a guard that restores the previous one on drop. Instrumented
//! library code calls the free functions ([`counter_add`], [`gauge_set`],
//! [`span_phase`], ...) which no-op when nothing is installed — that is the
//! compiled-in `NullSink` behaviour and costs one TLS check per call.
//! Thread-local (rather than global) scoping keeps parallel test runs from
//! polluting each other's recorders, and matches the invariant that all
//! instrumentation runs on the orchestration thread, never inside scoped
//! compute workers.
//!
//! ## Determinism contract
//!
//! Exported *values* (counters, FLOPs, ratios) are bitwise-identical across
//! two identical seeded runs; wall times are segregated as timing metrics
//! and excluded from [`Recorder::to_json_lines`]`(false)`. Pinned in
//! `tests/determinism.rs`.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bench;
pub mod export;
pub mod json;
pub mod sink;
pub mod span;

pub use json::Json;
pub use sink::{metric_key, MetricSink, NullSink, Recorder, TimeStat, ValueHistogram};
pub use span::{Phase, SpanGuard, PHASE_TIME_METRIC};

use std::cell::RefCell;
use std::rc::Rc;

thread_local! {
    static ACTIVE: RefCell<Vec<Rc<dyn MetricSink>>> = const { RefCell::new(Vec::new()) };
    static CURRENT_LAYER: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Uninstalls the sink it guards when dropped, restoring the previous one.
#[must_use = "dropping the guard uninstalls the sink"]
pub struct SinkGuard {
    _private: (),
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Installs `sink` as this thread's active sink until the returned guard is
/// dropped. Installs nest: the previous sink is restored on drop.
pub fn install(sink: Rc<dyn MetricSink>) -> SinkGuard {
    ACTIVE.with(|stack| stack.borrow_mut().push(sink));
    SinkGuard { _private: () }
}

/// Whether any sink is currently installed on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|stack| !stack.borrow().is_empty())
}

fn with_sink(f: impl FnOnce(&dyn MetricSink)) {
    ACTIVE.with(|stack| {
        // Clone the Rc out so the stack borrow is released before the sink
        // runs (a sink callback may itself query `is_active`).
        let top = stack.borrow().last().cloned();
        if let Some(sink) = top {
            f(sink.as_ref());
        }
    });
}

/// Adds `delta` to a counter on the installed sink; no-op without one.
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    with_sink(|s| s.counter_add(name, labels, delta));
}

/// Sets a gauge on the installed sink; no-op without one.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    with_sink(|s| s.gauge_set(name, labels, value));
}

/// Records a histogram observation on the installed sink; no-op without one.
pub fn histogram_record(name: &str, labels: &[(&str, &str)], value: f64) {
    with_sink(|s| s.histogram_record(name, labels, value));
}

/// Records elapsed span time on the installed sink; no-op without one.
pub fn time_ns(name: &str, labels: &[(&str, &str)], nanos: u64) {
    with_sink(|s| s.time_ns(name, labels, nanos));
}

/// Marks the start of a training/serving step: clears the current-layer
/// label so stray spans before the first layer attribute to `""`.
pub fn begin_step() {
    if !is_active() {
        return;
    }
    CURRENT_LAYER.with(|l| l.borrow_mut().clear());
}

/// Marks `name` as the layer now executing; phase spans created until the
/// next call attribute to it. No-op (and free) without an installed sink.
pub fn enter_layer(name: &str) {
    if !is_active() {
        return;
    }
    CURRENT_LAYER.with(|l| {
        let mut current = l.borrow_mut();
        current.clear();
        current.push_str(name);
    });
}

/// The layer label phase spans currently attribute to.
pub fn current_layer() -> String {
    CURRENT_LAYER.with(|l| l.borrow().clone())
}

/// Opens a wall-time span for `phase` of the current layer. Returns an
/// inert guard (no clock read) when no sink is installed or the sink
/// declines timing.
pub fn span_phase(phase: Phase) -> SpanGuard {
    span_named(PHASE_TIME_METRIC, &[("phase", phase.as_str())])
}

/// Opens a wall-time span under `name`, labelled with the current layer
/// plus `extra` labels. Inert without an installed, timing-interested sink.
pub fn span_named(name: &'static str, extra: &[(&str, &str)]) -> SpanGuard {
    let mut wants = false;
    with_sink(|s| wants = s.wants_timing());
    if !wants {
        return SpanGuard::disabled();
    }
    let mut labels = Vec::with_capacity(extra.len() + 1);
    labels.push(("layer".to_string(), current_layer()));
    for (k, v) in extra {
        labels.push(((*k).to_string(), (*v).to_string()));
    }
    SpanGuard::started(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_a_sink() {
        assert!(!is_active());
        counter_add("x", &[], 1);
        gauge_set("x", &[], 1.0);
        histogram_record("x", &[], 1.0);
        begin_step();
        enter_layer("conv1");
        // enter_layer short-circuits without a sink: nothing recorded.
        assert_eq!(current_layer(), "");
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let g1 = install(Rc::new(outer.clone()));
        counter_add("hits", &[], 1);
        {
            let _g2 = install(Rc::new(inner.clone()));
            counter_add("hits", &[], 10);
        }
        counter_add("hits", &[], 1);
        drop(g1);
        assert!(!is_active());
        assert_eq!(outer.counter("hits", &[]), Some(2));
        assert_eq!(inner.counter("hits", &[]), Some(10));
    }

    #[test]
    fn layer_labels_flow_into_spans() {
        let rec = Recorder::new();
        {
            let _g = install(Rc::new(rec.clone()));
            begin_step();
            enter_layer("conv2");
            drop(span_phase(Phase::Cluster));
        }
        assert!(rec.time(PHASE_TIME_METRIC, &[("layer", "conv2"), ("phase", "cluster")]).is_some());
    }

    #[test]
    fn null_sink_disables_span_clock_reads() {
        let _g = install(Rc::new(NullSink));
        let span = span_named("adr_test_ns", &[]);
        // A disabled guard drops without recording; nothing to assert beyond
        // not panicking, but is_active is still true.
        assert!(is_active());
        drop(span);
    }
}
