//! Metric sinks: the [`MetricSink`] trait, the no-op [`NullSink`], and the
//! collecting [`Recorder`].
//!
//! Determinism contract: every *value* metric (counters, gauges, histograms)
//! a `Recorder` collects is bitwise-reproducible across two identical seeded
//! runs, because the instrumented code records them in program order on one
//! thread. Wall-clock *timing* metrics are stored in a separate map and are
//! explicitly excluded from the deterministic export
//! ([`Recorder::to_json_lines`] with `include_timing = false`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Upper bounds of the value-histogram buckets (decades spanning the loss /
/// ratio / count magnitudes the trainer emits); one overflow bucket follows.
pub const VALUE_BUCKET_BOUNDS: [f64; 10] = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6];

/// Where instrumented code sends its measurements.
///
/// Implementations take `&self` so a sink handle can be shared; the
/// [`Recorder`] uses interior mutability. Methods must not panic — telemetry
/// failure must never take down a training run.
pub trait MetricSink {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64);
    /// Sets a gauge to its latest value.
    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64);
    /// Records one observation into a value histogram.
    fn histogram_record(&self, name: &str, labels: &[(&str, &str)], value: f64);
    /// Records elapsed wall time for a span. Kept separate from the value
    /// metrics so deterministic exports can exclude it.
    fn time_ns(&self, name: &str, labels: &[(&str, &str)], nanos: u64);
    /// Whether span guards should bother reading the clock at all.
    fn wants_timing(&self) -> bool {
        true
    }
}

/// A sink that drops everything; the compiled-in default when no recorder is
/// installed. Exists as a named type so callers can install "explicitly
/// nothing"; uninstrumented code pays only a thread-local `None` check.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricSink for NullSink {
    fn counter_add(&self, _name: &str, _labels: &[(&str, &str)], _delta: u64) {}
    fn gauge_set(&self, _name: &str, _labels: &[(&str, &str)], _value: f64) {}
    fn histogram_record(&self, _name: &str, _labels: &[(&str, &str)], _value: f64) {}
    fn time_ns(&self, _name: &str, _labels: &[(&str, &str)], _nanos: u64) {}
    fn wants_timing(&self) -> bool {
        false
    }
}

/// A fixed-bucket histogram of f64 observations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValueHistogram {
    counts: [u64; VALUE_BUCKET_BOUNDS.len() + 1],
    sum: f64,
    total: u64,
}

impl ValueHistogram {
    fn record(&mut self, value: f64) {
        let bucket = VALUE_BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(VALUE_BUCKET_BOUNDS.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observations (recorded in program order, so deterministic).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Accumulated wall time of one span key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeStat {
    /// Number of span completions.
    pub count: u64,
    /// Total elapsed nanoseconds.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

#[derive(Default)]
struct RecorderState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, ValueHistogram>,
    times: BTreeMap<String, TimeStat>,
}

/// A collecting sink. Cloning produces a handle to the same underlying
/// store, so the caller can keep one handle for export while the clone is
/// installed as the active sink.
///
/// Single-threaded by design (`Rc` + `RefCell`): instrumentation runs on the
/// orchestration thread only — never inside scoped compute workers — which
/// is also what makes the recorded values deterministic.
#[derive(Clone, Default)]
pub struct Recorder {
    state: Rc<RefCell<RecorderState>>,
}

/// Canonical metric key: `name{k1="v1",k2="v2"}` (Prometheus sample syntax),
/// or just `name` without labels. Label order is the caller's order, which
/// instrumented code keeps fixed.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut RecorderState) -> R) -> Option<R> {
        // try_borrow_mut: a sink must never panic, even if a re-entrant
        // record happens while an export borrow is live.
        self.state.try_borrow_mut().ok().map(|mut s| f(&mut s))
    }

    /// Current value of a counter, if it was ever touched.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = metric_key(name, labels);
        self.state.try_borrow().ok().and_then(|s| s.counters.get(&key).copied())
    }

    /// Latest value of a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = metric_key(name, labels);
        self.state.try_borrow().ok().and_then(|s| s.gauges.get(&key).copied())
    }

    /// Accumulated wall time of a span key.
    pub fn time(&self, name: &str, labels: &[(&str, &str)]) -> Option<TimeStat> {
        let key = metric_key(name, labels);
        self.state.try_borrow().ok().and_then(|s| s.times.get(&key).copied())
    }

    /// All counters as sorted `(key, value)` pairs.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.state
            .try_borrow()
            .map(|s| s.counters.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// All accumulated span times as sorted `(key, stat)` pairs.
    pub fn times(&self) -> Vec<(String, TimeStat)> {
        self.state
            .try_borrow()
            .map(|s| s.times.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Drops every recorded metric, keeping the handle installed.
    pub fn reset(&self) {
        self.with_state(|s| *s = RecorderState::default());
    }

    /// JSON-lines export: one compact JSON object per line, keys sorted
    /// (BTreeMap order). With `include_timing = false` the output contains
    /// only value metrics and is bitwise-identical across two identical
    /// seeded runs — that string is what the determinism suite pins.
    pub fn to_json_lines(&self, include_timing: bool) -> String {
        use crate::json::Json;
        let mut out = String::new();
        let Ok(state) = self.state.try_borrow() else {
            return out;
        };
        for (key, value) in &state.counters {
            let line = Json::Obj(vec![
                ("kind".to_string(), Json::Str("counter".to_string())),
                ("key".to_string(), Json::Str(key.clone())),
                ("value".to_string(), Json::Uint(*value)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for (key, value) in &state.gauges {
            let line = Json::Obj(vec![
                ("kind".to_string(), Json::Str("gauge".to_string())),
                ("key".to_string(), Json::Str(key.clone())),
                ("value".to_string(), Json::Num(*value)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for (key, hist) in &state.histograms {
            let line = Json::Obj(vec![
                ("kind".to_string(), Json::Str("histogram".to_string())),
                ("key".to_string(), Json::Str(key.clone())),
                ("total".to_string(), Json::Uint(hist.total())),
                ("sum".to_string(), Json::Num(hist.sum())),
                (
                    "buckets".to_string(),
                    Json::Arr(hist.counts().iter().map(|&c| Json::Uint(c)).collect()),
                ),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        if include_timing {
            for (key, stat) in &state.times {
                let line = Json::Obj(vec![
                    ("kind".to_string(), Json::Str("time".to_string())),
                    ("key".to_string(), Json::Str(key.clone())),
                    ("count".to_string(), Json::Uint(stat.count)),
                    ("total_ns".to_string(), Json::Uint(stat.total_ns)),
                    ("max_ns".to_string(), Json::Uint(stat.max_ns)),
                ]);
                out.push_str(&line.render());
                out.push('\n');
            }
        }
        out
    }

    /// Prometheus text exposition format (counters, gauges, histograms, and
    /// span times as `<name>_ns` counters).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let Ok(state) = self.state.try_borrow() else {
            return out;
        };
        let mut typed = std::collections::BTreeSet::new();
        for (key, value) in &state.counters {
            type_line(&mut out, &mut typed, key, "counter");
            let _ = writeln!(out, "{key} {value}");
        }
        for (key, value) in &state.gauges {
            type_line(&mut out, &mut typed, key, "gauge");
            let _ = writeln!(out, "{key} {value}");
        }
        for (key, hist) in &state.histograms {
            type_line(&mut out, &mut typed, key, "histogram");
            let mut cumulative = 0u64;
            for (i, &count) in hist.counts().iter().enumerate() {
                cumulative += count;
                let le = match VALUE_BUCKET_BOUNDS.get(i) {
                    Some(bound) => format!("{bound}"),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "{} {cumulative}", with_label(key, "le", &le));
            }
            let _ = writeln!(out, "{} {}", suffixed(key, "_sum"), hist.sum());
            let _ = writeln!(out, "{} {}", suffixed(key, "_count"), hist.total());
        }
        for (key, stat) in &state.times {
            type_line(&mut out, &mut typed, key, "counter");
            let _ = writeln!(out, "{key} {}", stat.total_ns);
        }
        out
    }
}

/// Metric base name of a canonical key (the part before any `{`).
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

fn type_line(
    out: &mut String,
    typed: &mut std::collections::BTreeSet<String>,
    key: &str,
    kind: &str,
) {
    let name = base_name(key);
    if typed.insert(name.to_string()) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }
}

/// Appends a suffix to the base name, preserving any label set:
/// `x{a="b"}` + `_sum` → `x_sum{a="b"}`.
fn suffixed(key: &str, suffix: &str) -> String {
    match key.find('{') {
        Some(brace) => format!("{}{suffix}{}", &key[..brace], &key[brace..]),
        None => format!("{key}{suffix}"),
    }
}

/// Adds one label to a canonical key: `x{a="b"}` + `le=1` → `x_bucket{a="b",le="1"}`.
fn with_label(key: &str, label: &str, value: &str) -> String {
    let bucketed = suffixed(key, "_bucket");
    match bucketed.rfind('}') {
        Some(close) => {
            format!("{},{label}=\"{value}\"}}", &bucketed[..close])
        }
        None => format!("{bucketed}{{{label}=\"{value}\"}}"),
    }
}

impl MetricSink for Recorder {
    fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = metric_key(name, labels);
        self.with_state(|s| *s.counters.entry(key).or_insert(0) += delta);
    }

    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = metric_key(name, labels);
        self.with_state(|s| {
            s.gauges.insert(key, value);
        });
    }

    fn histogram_record(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = metric_key(name, labels);
        self.with_state(|s| s.histograms.entry(key).or_default().record(value));
    }

    fn time_ns(&self, name: &str, labels: &[(&str, &str)], nanos: u64) {
        let key = metric_key(name, labels);
        self.with_state(|s| {
            let stat = s.times.entry(key).or_default();
            stat.count += 1;
            stat.total_ns += nanos;
            stat.max_ns = stat.max_ns.max(nanos);
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn recorder_accumulates_counters_and_times() {
        let rec = Recorder::new();
        rec.counter_add("steps", &[], 1);
        rec.counter_add("steps", &[], 2);
        rec.time_ns("phase_ns", &[("phase", "hash")], 100);
        rec.time_ns("phase_ns", &[("phase", "hash")], 50);
        assert_eq!(rec.counter("steps", &[]), Some(3));
        let stat = rec.time("phase_ns", &[("phase", "hash")]).unwrap();
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 150);
        assert_eq!(stat.max_ns, 100);
    }

    #[test]
    fn clones_share_the_same_store() {
        let rec = Recorder::new();
        let handle = rec.clone();
        handle.gauge_set("loss", &[], 0.5);
        assert_eq!(rec.gauge("loss", &[]), Some(0.5));
    }

    #[test]
    fn json_lines_excludes_timing_when_asked() {
        let rec = Recorder::new();
        rec.counter_add("steps", &[("layer", "conv1")], 4);
        rec.time_ns("phase_ns", &[], 999);
        let without = rec.to_json_lines(false);
        // Key quotes are JSON-escaped inside the line's string value.
        assert!(without.contains("steps{layer=\\\"conv1\\\"}"));
        assert!(!without.contains("phase_ns"));
        let with = rec.to_json_lines(true);
        assert!(with.contains("phase_ns"));
        assert!(with.contains("\"total_ns\":999"));
    }

    #[test]
    fn prometheus_export_renders_histograms_cumulatively() {
        let rec = Recorder::new();
        rec.histogram_record("loss", &[("run", "a")], 0.05);
        rec.histogram_record("loss", &[("run", "a")], 5.0);
        let text = rec.to_prometheus();
        assert!(text.contains("# TYPE loss histogram"));
        assert!(text.contains("loss_bucket{run=\"a\",le=\"0.1\"} 1"));
        assert!(text.contains("loss_bucket{run=\"a\",le=\"+Inf\"} 2"));
        assert!(text.contains("loss_sum{run=\"a\"} 5.05"));
        assert!(text.contains("loss_count{run=\"a\"} 2"));
    }

    #[test]
    fn null_sink_reports_no_timing_interest() {
        assert!(!NullSink.wants_timing());
        // And its methods are callable no-ops.
        NullSink.counter_add("x", &[], 1);
        NullSink.gauge_set("x", &[], 1.0);
    }

    #[test]
    fn metric_keys_are_canonical() {
        assert_eq!(metric_key("steps", &[]), "steps");
        assert_eq!(
            metric_key("rc", &[("layer", "conv1"), ("phase", "hash")]),
            "rc{layer=\"conv1\",phase=\"hash\"}"
        );
    }
}
