//! The BENCH file schema and its validator.
//!
//! `adr bench` emits two machine-readable perf snapshots per run —
//! `BENCH_train.json` (the step-profile workload) and `BENCH_serve.json`
//! (the serving workload) — so successive PRs accumulate a regression
//! trajectory. CI re-parses the emitted files with [`validate`] and fails
//! the build when the schema drifts; the format itself is documented in
//! DESIGN.md §11.
//!
//! Wall-clock fields (`*_wall_ns`) vary run to run; every other field is
//! deterministic for a fixed seed.

use crate::json::Json;

/// Schema tag of the training BENCH file.
pub const TRAIN_SCHEMA: &str = "adr-bench-train/v1";
/// Schema tag of the serving BENCH file.
pub const SERVE_SCHEMA: &str = "adr-bench-serve/v1";

/// Counter names every serving BENCH file must carry (mirrors
/// `EngineReport::counters()`).
pub const SERVE_COUNTER_NAMES: [&str; 12] = [
    "admitted",
    "completed",
    "rejected_shape",
    "rejected_non_finite",
    "shed_overloaded",
    "deadline_missed",
    "failed_non_finite",
    "batches",
    "degraded_steps",
    "recovered_steps",
    "quarantined_batches",
    "retried_batches",
];

/// Phase keys every per-layer `wall_ns` object must carry.
pub const PHASE_KEYS: [&str; 5] = ["im2col", "hash", "cluster", "centroid_gemm", "scatter"];

/// Validates a parsed BENCH document against whichever schema its `schema`
/// field names.
///
/// # Errors
///
/// Returns a path-qualified message describing the first violation.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema =
        doc.get("schema").and_then(Json::as_str).ok_or("missing or non-string \"schema\" field")?;
    match schema {
        TRAIN_SCHEMA => validate_train(doc),
        SERVE_SCHEMA => validate_serve(doc),
        other => Err(format!("unknown schema tag {other:?}")),
    }
}

fn require_uint(doc: &Json, path: &str, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}.{key}: missing or not an unsigned integer"))
}

fn require_num(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    let n = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}.{key}: missing or not a number"))?;
    if !n.is_finite() {
        return Err(format!("{path}.{key}: not finite"));
    }
    Ok(n)
}

fn require_str<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}.{key}: missing or not a string"))
}

fn require_obj<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    let v = doc.get(key).ok_or_else(|| format!("{path}.{key}: missing"))?;
    if v.as_obj().is_none() {
        return Err(format!("{path}.{key}: not an object"));
    }
    Ok(v)
}

fn validate_workload(doc: &Json) -> Result<(), String> {
    let workload = require_obj(doc, "$", "workload")?;
    require_str(workload, "workload", "model")?;
    require_uint(workload, "workload", "seed")?;
    Ok(())
}

fn validate_train(doc: &Json) -> Result<(), String> {
    validate_workload(doc)?;
    let workload = require_obj(doc, "$", "workload")?;
    require_uint(workload, "workload", "batch")?;
    require_uint(workload, "workload", "steps")?;

    let layers =
        doc.get("layers").and_then(Json::as_arr).ok_or("$.layers: missing or not an array")?;
    if layers.is_empty() {
        return Err("$.layers: empty — the step profile must cover at least one reuse layer".into());
    }
    for (i, layer) in layers.iter().enumerate() {
        let path = format!("layers[{i}]");
        require_str(layer, &path, "layer")?;
        let wall = require_obj(layer, &path, "wall_ns")?;
        for phase in PHASE_KEYS {
            require_uint(wall, &format!("{path}.wall_ns"), phase)?;
        }
        require_uint(wall, &format!("{path}.wall_ns"), "total")?;
        require_uint(layer, &path, "flops_actual")?;
        require_uint(layer, &path, "flops_exact")?;
        require_num(layer, &path, "rc")?;
        require_num(layer, &path, "clusters_avg")?;
        require_num(layer, &path, "reuse_rate")?;
        require_num(layer, &path, "modelled_cost")?;
        require_num(layer, &path, "measured_cost")?;
    }

    let totals = require_obj(doc, "$", "totals")?;
    require_uint(totals, "totals", "wall_ns")?;
    require_uint(totals, "totals", "flops_actual")?;
    require_uint(totals, "totals", "flops_exact")?;
    require_num(totals, "totals", "flop_savings")?;
    require_num(totals, "totals", "loss_final")?;
    require_num(totals, "totals", "null_sink_overhead_pct")?;
    Ok(())
}

fn validate_serve(doc: &Json) -> Result<(), String> {
    validate_workload(doc)?;
    let workload = require_obj(doc, "$", "workload")?;
    require_uint(workload, "workload", "requests")?;

    let counters = require_obj(doc, "$", "counters")?;
    for name in SERVE_COUNTER_NAMES {
        require_uint(counters, "counters", name)?;
    }

    let stages = doc
        .get("requests_per_stage")
        .and_then(Json::as_arr)
        .ok_or("$.requests_per_stage: missing or not an array")?;
    for (i, v) in stages.iter().enumerate() {
        if v.as_u64().is_none() {
            return Err(format!("$.requests_per_stage[{i}]: not an unsigned integer"));
        }
    }

    let latency = doc
        .get("latency_bucket_counts")
        .and_then(Json::as_arr)
        .ok_or("$.latency_bucket_counts: missing or not an array")?;
    if latency.len() != 11 {
        return Err(format!(
            "$.latency_bucket_counts: expected 11 buckets (10 bounds + overflow), got {}",
            latency.len()
        ));
    }
    require_uint(doc, "$", "flops_actual")?;
    require_uint(doc, "$", "flops_exact")?;
    require_num(doc, "$", "flop_savings")?;
    require_uint(doc, "$", "wall_ns")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn minimal_train() -> Json {
        let wall = obj(vec![
            ("im2col", Json::Uint(1)),
            ("hash", Json::Uint(2)),
            ("cluster", Json::Uint(3)),
            ("centroid_gemm", Json::Uint(4)),
            ("scatter", Json::Uint(5)),
            ("total", Json::Uint(15)),
        ]);
        let layer = obj(vec![
            ("layer", Json::Str("conv1".into())),
            ("wall_ns", wall),
            ("flops_actual", Json::Uint(100)),
            ("flops_exact", Json::Uint(400)),
            ("rc", Json::Num(0.25)),
            ("clusters_avg", Json::Num(12.0)),
            ("reuse_rate", Json::Num(0.0)),
            ("modelled_cost", Json::Num(0.4)),
            ("measured_cost", Json::Num(0.25)),
        ]);
        obj(vec![
            ("schema", Json::Str(TRAIN_SCHEMA.into())),
            (
                "workload",
                obj(vec![
                    ("model", Json::Str("cifarnet".into())),
                    ("batch", Json::Uint(8)),
                    ("steps", Json::Uint(3)),
                    ("seed", Json::Uint(42)),
                ]),
            ),
            ("layers", Json::Arr(vec![layer])),
            (
                "totals",
                obj(vec![
                    ("wall_ns", Json::Uint(99)),
                    ("flops_actual", Json::Uint(100)),
                    ("flops_exact", Json::Uint(400)),
                    ("flop_savings", Json::Num(0.75)),
                    ("loss_final", Json::Num(1.2)),
                    ("null_sink_overhead_pct", Json::Num(0.3)),
                ]),
            ),
        ])
    }

    #[test]
    fn accepts_a_minimal_train_document() {
        validate(&minimal_train()).unwrap();
    }

    #[test]
    fn rejects_unknown_schema_and_missing_fields() {
        assert!(validate(&obj(vec![("schema", Json::Str("nope/v9".into()))])).is_err());
        let mut doc = minimal_train();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "totals");
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("totals"), "{err}");
    }

    #[test]
    fn rejects_a_layer_missing_a_phase() {
        let mut doc = minimal_train();
        if let Json::Obj(pairs) = &mut doc {
            if let Some((_, Json::Arr(layers))) = pairs.iter_mut().find(|(k, _)| k == "layers") {
                if let Json::Obj(layer) = &mut layers[0] {
                    if let Some((_, Json::Obj(wall))) =
                        layer.iter_mut().find(|(k, _)| k == "wall_ns")
                    {
                        wall.retain(|(k, _)| k != "hash");
                    }
                }
            }
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("hash"), "{err}");
    }

    #[test]
    fn serve_document_requires_all_engine_counters() {
        let counters = obj(SERVE_COUNTER_NAMES.iter().map(|&n| (n, Json::Uint(0))).collect());
        let doc = obj(vec![
            ("schema", Json::Str(SERVE_SCHEMA.into())),
            (
                "workload",
                obj(vec![
                    ("model", Json::Str("cifarnet".into())),
                    ("requests", Json::Uint(12)),
                    ("seed", Json::Uint(42)),
                ]),
            ),
            ("counters", counters),
            ("requests_per_stage", Json::Arr(vec![Json::Uint(12)])),
            ("latency_bucket_counts", Json::Arr((0..11).map(|_| Json::Uint(0)).collect())),
            ("flops_actual", Json::Uint(10)),
            ("flops_exact", Json::Uint(10)),
            ("flop_savings", Json::Num(0.0)),
            ("wall_ns", Json::Uint(1)),
        ]);
        validate(&doc).unwrap();

        let mut broken = doc.clone();
        if let Json::Obj(pairs) = &mut broken {
            if let Some((_, Json::Obj(counters))) = pairs.iter_mut().find(|(k, _)| k == "counters")
            {
                counters.retain(|(k, _)| k != "batches");
            }
        }
        let err = validate(&broken).unwrap_err();
        assert!(err.contains("batches"), "{err}");
    }
}
