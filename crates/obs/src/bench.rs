//! The BENCH file schema and its validator.
//!
//! `adr bench` emits two machine-readable perf snapshots per run —
//! `BENCH_train.json` (the step-profile workload) and `BENCH_serve.json`
//! (the serving workload) — so successive PRs accumulate a regression
//! trajectory. CI re-parses the emitted files with [`validate`] and fails
//! the build when the schema drifts; the format itself is documented in
//! DESIGN.md §11.
//!
//! Wall-clock fields (`*_wall_ns`) vary run to run; every other field is
//! deterministic for a fixed seed.

use crate::json::Json;

/// Schema tag of the training BENCH file.
pub const TRAIN_SCHEMA: &str = "adr-bench-train/v1";
/// Schema tag of the serving BENCH file. `v2` switched the workload from a
/// single engine to the multi-tenant gateway: gateway-wide totals plus
/// per-tenant and per-model attribution sections.
pub const SERVE_SCHEMA: &str = "adr-bench-serve/v2";

/// Gateway-wide counter names every serving BENCH file must carry
/// (mirrors `GatewayReport::counters()`).
pub const SERVE_COUNTER_NAMES: [&str; 9] = [
    "admitted",
    "completed",
    "rejected_shape",
    "rejected_non_finite",
    "shed_overloaded",
    "rate_limited",
    "deadline_missed",
    "failed_non_finite",
    "batches",
];

/// Per-tenant counter names every entry of the `tenants` section must
/// carry (mirrors `TenantCounters`, minus the `requests_per_stage` array
/// which is validated separately).
pub const SERVE_TENANT_COUNTER_NAMES: [&str; 8] = [
    "admitted",
    "completed",
    "rejected_shape",
    "rejected_non_finite",
    "shed_overloaded",
    "rate_limited",
    "deadline_missed",
    "failed_non_finite",
];

/// Per-model counter names every entry of the `models` section must carry
/// (mirrors `ModelCounters`).
pub const SERVE_MODEL_COUNTER_NAMES: [&str; 6] = [
    "batches",
    "generation",
    "swaps_completed",
    "swaps_rolled_back",
    "flops_actual",
    "flops_exact",
];

/// Phase keys every per-layer `wall_ns` object must carry.
pub const PHASE_KEYS: [&str; 5] = ["im2col", "hash", "cluster", "centroid_gemm", "scatter"];

/// Validates a parsed BENCH document against whichever schema its `schema`
/// field names.
///
/// # Errors
///
/// Returns a path-qualified message describing the first violation.
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema =
        doc.get("schema").and_then(Json::as_str).ok_or("missing or non-string \"schema\" field")?;
    match schema {
        TRAIN_SCHEMA => validate_train(doc),
        SERVE_SCHEMA => validate_serve(doc),
        other => Err(format!("unknown schema tag {other:?}")),
    }
}

fn require_uint(doc: &Json, path: &str, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}.{key}: missing or not an unsigned integer"))
}

fn require_num(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    let n = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}.{key}: missing or not a number"))?;
    if !n.is_finite() {
        return Err(format!("{path}.{key}: not finite"));
    }
    Ok(n)
}

fn require_str<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}.{key}: missing or not a string"))
}

fn require_obj<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    let v = doc.get(key).ok_or_else(|| format!("{path}.{key}: missing"))?;
    if v.as_obj().is_none() {
        return Err(format!("{path}.{key}: not an object"));
    }
    Ok(v)
}

fn validate_workload(doc: &Json) -> Result<(), String> {
    let workload = require_obj(doc, "$", "workload")?;
    require_str(workload, "workload", "model")?;
    require_uint(workload, "workload", "seed")?;
    Ok(())
}

fn validate_train(doc: &Json) -> Result<(), String> {
    validate_workload(doc)?;
    let workload = require_obj(doc, "$", "workload")?;
    require_uint(workload, "workload", "batch")?;
    require_uint(workload, "workload", "steps")?;

    let layers =
        doc.get("layers").and_then(Json::as_arr).ok_or("$.layers: missing or not an array")?;
    if layers.is_empty() {
        return Err("$.layers: empty — the step profile must cover at least one reuse layer".into());
    }
    for (i, layer) in layers.iter().enumerate() {
        let path = format!("layers[{i}]");
        require_str(layer, &path, "layer")?;
        let wall = require_obj(layer, &path, "wall_ns")?;
        for phase in PHASE_KEYS {
            require_uint(wall, &format!("{path}.wall_ns"), phase)?;
        }
        require_uint(wall, &format!("{path}.wall_ns"), "total")?;
        require_uint(layer, &path, "flops_actual")?;
        require_uint(layer, &path, "flops_exact")?;
        require_num(layer, &path, "rc")?;
        require_num(layer, &path, "clusters_avg")?;
        require_num(layer, &path, "reuse_rate")?;
        require_num(layer, &path, "modelled_cost")?;
        require_num(layer, &path, "measured_cost")?;
    }

    let totals = require_obj(doc, "$", "totals")?;
    require_uint(totals, "totals", "wall_ns")?;
    require_uint(totals, "totals", "flops_actual")?;
    require_uint(totals, "totals", "flops_exact")?;
    require_num(totals, "totals", "flop_savings")?;
    require_num(totals, "totals", "loss_final")?;
    require_num(totals, "totals", "null_sink_overhead_pct")?;
    Ok(())
}

fn validate_serve(doc: &Json) -> Result<(), String> {
    validate_workload(doc)?;
    let workload = require_obj(doc, "$", "workload")?;
    require_uint(workload, "workload", "requests")?;

    let counters = require_obj(doc, "$", "counters")?;
    for name in SERVE_COUNTER_NAMES {
        require_uint(counters, "counters", name)?;
    }

    // Per-tenant attribution: at least one tenant, each carrying the full
    // counter set and its own per-stage request histogram.
    let tenants = require_obj(doc, "$", "tenants")?;
    let tenant_pairs = tenants.as_obj().unwrap_or_default();
    if tenant_pairs.is_empty() {
        return Err("$.tenants: empty — the gateway burst must cover at least one tenant".into());
    }
    for (tenant, entry) in tenant_pairs {
        let path = format!("tenants.{tenant}");
        for name in SERVE_TENANT_COUNTER_NAMES {
            require_uint(entry, &path, name)?;
        }
        let stages = entry
            .get("requests_per_stage")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("$.{path}.requests_per_stage: missing or not an array"))?;
        for (i, v) in stages.iter().enumerate() {
            if v.as_u64().is_none() {
                return Err(format!("$.{path}.requests_per_stage[{i}]: not an unsigned integer"));
            }
        }
    }

    // Per-model attribution: at least one model, each with generation and
    // swap accounting.
    let models = require_obj(doc, "$", "models")?;
    let model_pairs = models.as_obj().unwrap_or_default();
    if model_pairs.is_empty() {
        return Err("$.models: empty — the gateway burst must cover at least one model".into());
    }
    for (model, entry) in model_pairs {
        let path = format!("models.{model}");
        for name in SERVE_MODEL_COUNTER_NAMES {
            require_uint(entry, &path, name)?;
        }
    }

    let latency = doc
        .get("latency_bucket_counts")
        .and_then(Json::as_arr)
        .ok_or("$.latency_bucket_counts: missing or not an array")?;
    if latency.len() != 11 {
        return Err(format!(
            "$.latency_bucket_counts: expected 11 buckets (10 bounds + overflow), got {}",
            latency.len()
        ));
    }
    require_uint(doc, "$", "flops_actual")?;
    require_uint(doc, "$", "flops_exact")?;
    require_num(doc, "$", "flop_savings")?;
    require_uint(doc, "$", "wall_ns")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn minimal_train() -> Json {
        let wall = obj(vec![
            ("im2col", Json::Uint(1)),
            ("hash", Json::Uint(2)),
            ("cluster", Json::Uint(3)),
            ("centroid_gemm", Json::Uint(4)),
            ("scatter", Json::Uint(5)),
            ("total", Json::Uint(15)),
        ]);
        let layer = obj(vec![
            ("layer", Json::Str("conv1".into())),
            ("wall_ns", wall),
            ("flops_actual", Json::Uint(100)),
            ("flops_exact", Json::Uint(400)),
            ("rc", Json::Num(0.25)),
            ("clusters_avg", Json::Num(12.0)),
            ("reuse_rate", Json::Num(0.0)),
            ("modelled_cost", Json::Num(0.4)),
            ("measured_cost", Json::Num(0.25)),
        ]);
        obj(vec![
            ("schema", Json::Str(TRAIN_SCHEMA.into())),
            (
                "workload",
                obj(vec![
                    ("model", Json::Str("cifarnet".into())),
                    ("batch", Json::Uint(8)),
                    ("steps", Json::Uint(3)),
                    ("seed", Json::Uint(42)),
                ]),
            ),
            ("layers", Json::Arr(vec![layer])),
            (
                "totals",
                obj(vec![
                    ("wall_ns", Json::Uint(99)),
                    ("flops_actual", Json::Uint(100)),
                    ("flops_exact", Json::Uint(400)),
                    ("flop_savings", Json::Num(0.75)),
                    ("loss_final", Json::Num(1.2)),
                    ("null_sink_overhead_pct", Json::Num(0.3)),
                ]),
            ),
        ])
    }

    #[test]
    fn accepts_a_minimal_train_document() {
        validate(&minimal_train()).unwrap();
    }

    #[test]
    fn rejects_unknown_schema_and_missing_fields() {
        assert!(validate(&obj(vec![("schema", Json::Str("nope/v9".into()))])).is_err());
        let mut doc = minimal_train();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "totals");
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("totals"), "{err}");
    }

    #[test]
    fn rejects_a_layer_missing_a_phase() {
        let mut doc = minimal_train();
        if let Json::Obj(pairs) = &mut doc {
            if let Some((_, Json::Arr(layers))) = pairs.iter_mut().find(|(k, _)| k == "layers") {
                if let Json::Obj(layer) = &mut layers[0] {
                    if let Some((_, Json::Obj(wall))) =
                        layer.iter_mut().find(|(k, _)| k == "wall_ns")
                    {
                        wall.retain(|(k, _)| k != "hash");
                    }
                }
            }
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("hash"), "{err}");
    }

    fn minimal_serve() -> Json {
        let counters = obj(SERVE_COUNTER_NAMES.iter().map(|&n| (n, Json::Uint(0))).collect());
        let tenant = {
            let mut pairs: Vec<(&str, Json)> =
                SERVE_TENANT_COUNTER_NAMES.iter().map(|&n| (n, Json::Uint(0))).collect();
            pairs.push(("requests_per_stage", Json::Arr(vec![Json::Uint(12)])));
            obj(pairs)
        };
        let model = obj(SERVE_MODEL_COUNTER_NAMES.iter().map(|&n| (n, Json::Uint(0))).collect());
        obj(vec![
            ("schema", Json::Str(SERVE_SCHEMA.into())),
            (
                "workload",
                obj(vec![
                    ("model", Json::Str("cifarnet".into())),
                    ("requests", Json::Uint(12)),
                    ("seed", Json::Uint(42)),
                ]),
            ),
            ("counters", counters),
            ("tenants", obj(vec![("steady", tenant)])),
            ("models", obj(vec![("cifarnet", model)])),
            ("latency_bucket_counts", Json::Arr((0..11).map(|_| Json::Uint(0)).collect())),
            ("flops_actual", Json::Uint(10)),
            ("flops_exact", Json::Uint(10)),
            ("flop_savings", Json::Num(0.0)),
            ("wall_ns", Json::Uint(1)),
        ])
    }

    #[test]
    fn serve_document_requires_all_gateway_counters() {
        let doc = minimal_serve();
        validate(&doc).unwrap();

        let mut broken = doc.clone();
        if let Json::Obj(pairs) = &mut broken {
            if let Some((_, Json::Obj(counters))) = pairs.iter_mut().find(|(k, _)| k == "counters")
            {
                counters.retain(|(k, _)| k != "batches");
            }
        }
        let err = validate(&broken).unwrap_err();
        assert!(err.contains("batches"), "{err}");
    }

    #[test]
    fn serve_document_requires_tenant_and_model_attribution() {
        // An empty tenants section is a violation, not a degenerate pass.
        let mut no_tenants = minimal_serve();
        if let Json::Obj(pairs) = &mut no_tenants {
            pairs.iter_mut().find(|(k, _)| k == "tenants").unwrap().1 = Json::Obj(vec![]);
        }
        let err = validate(&no_tenants).unwrap_err();
        assert!(err.contains("tenants"), "{err}");

        // A tenant missing its rate_limited counter names the exact path.
        let mut broken = minimal_serve();
        if let Json::Obj(pairs) = &mut broken {
            if let Some((_, Json::Obj(tenants))) = pairs.iter_mut().find(|(k, _)| k == "tenants") {
                if let Some((_, Json::Obj(entry))) = tenants.first_mut() {
                    entry.retain(|(k, _)| k != "rate_limited");
                }
            }
        }
        let err = validate(&broken).unwrap_err();
        assert!(err.contains("tenants.steady.rate_limited"), "{err}");

        // A model missing its generation counter is equally typed.
        let mut broken = minimal_serve();
        if let Json::Obj(pairs) = &mut broken {
            if let Some((_, Json::Obj(models))) = pairs.iter_mut().find(|(k, _)| k == "models") {
                if let Some((_, Json::Obj(entry))) = models.first_mut() {
                    entry.retain(|(k, _)| k != "generation");
                }
            }
        }
        let err = validate(&broken).unwrap_err();
        assert!(err.contains("models.cifarnet.generation"), "{err}");
    }
}
