//! Concurrency tests for the scoped-thread fan-outs, curated to stay small
//! enough for `cargo miri test` (Miri interprets ~1000× slower than native,
//! so no interpretable problem reaches the crossover thresholds on its own).
//!
//! Every test forces the parallel code path on tiny inputs through
//! [`adr_tensor::par::set_thread_override`], then demands *bitwise* equality
//! with the serial path: the fan-outs partition their output with
//! `split_at_mut`, so each element is accumulated by exactly one thread in
//! the same loop order and any divergence is a bug, not a rounding mode.
//!
//! The same binary runs natively in the `test` CI job and under Miri in the
//! `miri` job; the `#[cfg(miri)]` module at the bottom adds borrow-tracking
//! stress that is redundant native but cheap under the interpreter.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adr_tensor::im2col::{col2im, im2col, ConvGeom};
use adr_tensor::matrix::Matrix;
use adr_tensor::par::{matmul_par, matmul_range_t_b_par, set_thread_override};
use adr_tensor::tensor4::Tensor4;
use std::sync::Mutex;

/// The override is process-global; serialise tests that flip it so the
/// default multi-threaded test harness cannot interleave two overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `serial` with the heuristics in charge and `forced` with every
/// fan-out pinned to `threads` workers, restoring the default afterwards.
fn serial_vs_forced<R>(
    threads: usize,
    serial: impl FnOnce() -> R,
    forced: impl FnOnce() -> R,
) -> (R, R) {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    set_thread_override(None);
    let s = serial();
    set_thread_override(Some(threads));
    let f = forced();
    set_thread_override(None);
    // Drop the persistent worker pool while the override lock is still
    // held: under Miri leaked threads at process exit are an error, and
    // natively the respawn-on-next-use path gets exercised for free.
    adr_tensor::kernels::pool::shutdown_pool();
    (s, f)
}

fn small_geom() -> ConvGeom {
    ConvGeom::new(6, 5, 3, 3, 3, 1, 1).unwrap()
}

fn small_input() -> Tensor4 {
    Tensor4::from_fn(2, 6, 5, 3, |n, y, x, c| {
        (((n * 131 + y * 31 + x * 7 + c * 3) % 23) as f32 - 11.0) * 0.125
    })
}

#[test]
fn matmul_par_forced_two_threads_is_bitwise_serial() {
    let a = Matrix::from_fn(7, 9, |r, c| (((r * 13 + c * 5) % 17) as f32 - 8.0) * 0.25);
    let b = Matrix::from_fn(9, 4, |r, c| (((r * 3 + c * 11) % 13) as f32 - 6.0) * 0.5);
    let (serial, forced) = serial_vs_forced(2, || a.matmul(&b), || matmul_par(&a, &b));
    assert_eq!(serial.as_slice(), forced.as_slice());
}

#[test]
fn matmul_par_thread_count_beyond_rows_is_bitwise_serial() {
    // More workers than rows: the row-block splitter must hand out empty
    // tails without touching out-of-range output.
    let a = Matrix::from_fn(3, 6, |r, c| ((r * 7 + c) % 9) as f32 - 4.0);
    let b = Matrix::from_fn(6, 5, |r, c| ((r + c * 4) % 7) as f32 - 3.0);
    let (serial, forced) = serial_vs_forced(8, || a.matmul(&b), || matmul_par(&a, &b));
    assert_eq!(serial.as_slice(), forced.as_slice());
}

#[test]
fn pool_survives_many_fanouts_and_a_shutdown() {
    // The persistent pool must give identical answers on its first use,
    // on a reused warm pool, and on the respawned pool after an explicit
    // shutdown — the pool is an execution resource, never state.
    let a = Matrix::from_fn(6, 7, |r, c| (((r * 17 + c * 3) % 19) as f32 - 9.0) * 0.5);
    let b = Matrix::from_fn(7, 3, |r, c| (((r * 5 + c * 2) % 11) as f32 - 5.0) * 0.25);
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    set_thread_override(None);
    let reference = a.matmul(&b);
    set_thread_override(Some(3));
    let cold = matmul_par(&a, &b);
    let warm = matmul_par(&a, &b);
    adr_tensor::kernels::pool::shutdown_pool();
    let respawned = matmul_par(&a, &b);
    set_thread_override(None);
    adr_tensor::kernels::pool::shutdown_pool();
    assert_eq!(cold.as_slice(), reference.as_slice());
    assert_eq!(warm.as_slice(), reference.as_slice());
    assert_eq!(respawned.as_slice(), reference.as_slice());
}

#[test]
fn matmul_rows_range_par_forced_parallel_is_bitwise_row_slice() {
    let a = Matrix::from_fn(5, 4, |r, c| (((r * 7 + c * 13) % 15) as f32 - 7.0) * 0.25);
    let b = Matrix::from_fn(9, 6, |r, c| (((r * 11 + c) % 17) as f32 - 8.0) * 0.125);
    let (serial, forced) = serial_vs_forced(
        2,
        || a.matmul(&b.row_slice(3, 7)),
        || adr_tensor::par::matmul_rows_range_par(&a, &b, (3, 7)),
    );
    assert_eq!(serial.as_slice(), forced.as_slice());
}

#[test]
fn matmul_range_t_b_par_forced_two_threads_is_bitwise_serial() {
    let a = Matrix::from_fn(8, 10, |r, c| (((r * 19 + c * 3) % 21) as f32 - 10.0) * 0.125);
    let b = Matrix::from_fn(3, 4, |r, c| (((r * 5 + c * 7) % 11) as f32 - 5.0) * 0.25);
    // The serial closure runs with the override cleared, so `threads <= 1`
    // takes the inline per-row path; the forced closure spawns two workers.
    let (serial, forced) = serial_vs_forced(
        2,
        || matmul_range_t_b_par(&a, (2, 6), &b),
        || matmul_range_t_b_par(&a, (2, 6), &b),
    );
    assert_eq!(serial.as_slice(), forced.as_slice());
}

#[test]
fn im2col_forced_parallel_is_bitwise_serial() {
    let geom = small_geom();
    let input = small_input();
    let (serial, forced) = serial_vs_forced(2, || im2col(&input, &geom), || im2col(&input, &geom));
    assert_eq!(serial.as_slice(), forced.as_slice());
}

#[test]
fn col2im_forced_parallel_is_bitwise_serial() {
    let geom = small_geom();
    let cols = im2col(&small_input(), &geom);
    let (serial, forced) =
        serial_vs_forced(2, || col2im(&cols, &geom, 2), || col2im(&cols, &geom, 2));
    assert_eq!(serial.as_slice(), forced.as_slice());
}

/// Borrow-tracking stress that only earns its keep under the interpreter:
/// Miri's aliasing model checks every `split_at_mut` hand-off, so driving
/// the same fan-outs at several worker counts probes the partition
/// arithmetic without native runtime cost.
#[cfg(miri)]
mod miri_only {
    use super::*;

    #[test]
    fn fanouts_are_race_free_at_every_worker_count() {
        let a = Matrix::from_fn(5, 6, |r, c| ((r * 11 + c * 2) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(6, 3, |r, c| ((r * 2 + c * 9) % 7) as f32 - 3.0);
        let geom = small_geom();
        let input = small_input();
        let reference = {
            let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            set_thread_override(None);
            (a.matmul(&b), im2col(&input, &geom))
        };
        for workers in [2usize, 3, 5] {
            let (serial, forced) = serial_vs_forced(
                workers,
                || (a.matmul(&b), im2col(&input, &geom)),
                || (matmul_par(&a, &b), im2col(&input, &geom)),
            );
            assert_eq!(serial.0.as_slice(), reference.0.as_slice());
            assert_eq!(forced.0.as_slice(), reference.0.as_slice(), "{workers} workers");
            assert_eq!(forced.1.as_slice(), reference.1.as_slice(), "{workers} workers");
        }
    }
}
