//! Row-major `f32` matrix with a cache-blocked GEMM kernel.
//!
//! All shape mismatches are programming errors and panic with a descriptive
//! message; fallible construction from existing storage goes through
//! [`Matrix::from_vec`], which validates the element count.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Block edge used by the tiled GEMM kernels. 64 f32 values = 256 bytes,
/// a multiple of typical cache-line size; chosen empirically on x86-64.
const BLOCK: usize = 64;

/// A dense, row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", &self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Shape
    /// Output is `rows × cols`, row-major.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    ///
    /// # Shape
    /// Output is `rows × cols`, row-major.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Reshapes to `rows × cols` and zeroes every element, reusing the
    /// existing heap buffer when its capacity suffices.
    ///
    /// This is the arena primitive behind the reuse forward pass's recycled
    /// im2col/centroid buffers: after warm-up, a steady-state training step
    /// resets matrices instead of allocating fresh ones.
    ///
    /// # Shape
    /// Output becomes `rows × cols`, row-major, all zeros.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Wraps an existing row-major buffer.
    ///
    /// Returns `None` when `data.len() != rows * cols`.
    ///
    /// # Shape
    /// `data` holds `rows × cols` elements, row-major.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Option<Self> {
        (data.len() == rows * cols).then_some(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Shape
    /// Output is `rows × cols`; `f` is called for `row < rows`, `col < cols`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {} out of bounds for {} rows", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {} out of bounds for {} rows", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    ///
    /// # Panics
    /// Panics when `c >= cols`.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {} out of bounds for {} cols", c, self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Returns a new matrix whose rows are `self`'s rows restricted to the
    /// half-open column range `[start, end)`.
    ///
    /// This is how the deep-reuse machinery slices the unfolded input matrix
    /// into sub-matrices of sub-vector length `L`.
    ///
    /// # Shape
    /// `self: rows × cols` → output `rows × (end − start)`, requiring
    /// `start ≤ end ≤ cols`.
    ///
    /// # Panics
    /// Panics when the column range is out of bounds.
    pub fn column_slice(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice {}..{} out of bounds for {} cols",
            start,
            end,
            self.cols
        );
        let width = end - start;
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + start..r * self.cols + end];
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Returns a copy of the contiguous row range `[start, end)`.
    ///
    /// Used to slice the `K × M` weight matrix into the per-sub-matrix
    /// blocks `W_I` of the deep-reuse computation.
    ///
    /// # Shape
    /// `self: rows × cols` → output `(end − start) × cols`, requiring
    /// `start ≤ end ≤ rows`.
    ///
    /// # Panics
    /// Panics when the row range is out of bounds.
    pub fn row_slice(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "row slice {}..{} out of bounds for {} rows",
            start,
            end,
            self.rows
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Copies `src` into the contiguous row range starting at `start`.
    ///
    /// # Panics
    /// Panics if the rows do not fit or column counts differ.
    pub fn set_row_slice(&mut self, start: usize, src: &Matrix) {
        assert_eq!(self.cols, src.cols, "set_row_slice: column mismatch");
        assert!(start + src.rows <= self.rows, "set_row_slice: rows out of bounds");
        self.data[start * self.cols..(start + src.rows) * self.cols].copy_from_slice(&src.data);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        for rb in (0..self.rows).step_by(BLOCK) {
            for cb in (0..self.cols).step_by(BLOCK) {
                for r in rb..(rb + BLOCK).min(self.rows) {
                    for c in cb..(cb + BLOCK).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// `self · other`, allocating the result.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self · other` without allocating.
    ///
    /// Uses an `i-k-j` loop order with row blocking: the inner loop is a
    /// saxpy over a contiguous row of `other`, which vectorises well.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!((out.rows, out.cols), (self.rows, other.cols), "matmul output shape mismatch");
        out.data.fill(0.0);
        gemm_rows(&self.data, &other.data, &mut out.data, self.rows, self.cols, other.cols);
    }

    /// `selfᵀ · other`, allocating the result.
    ///
    /// This is the shape of the weight-gradient computation
    /// `∇W = xᵀ · δy` (paper Eq. 2/9); implemented without materialising
    /// the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_t_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_t_a shape mismatch: ({}x{})ᵀ . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        // out[i][j] = sum_k self[k][i] * other[k][j]
        // Loop k outermost: each k contributes rank-1 update rowA ⊗ rowB.
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o = &mut out.data[i * other.cols..(i + 1) * other.cols];
                crate::kernels::saxpy(o, a, b_row);
            }
        }
        out
    }

    /// `self · otherᵀ`, allocating the result.
    ///
    /// This is the shape of the input-delta computation `δx = δy · Wᵀ`
    /// (paper Eq. 3/17); implemented without materialising the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t_b shape mismatch: {}x{} . ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let o = &mut out.data[r * other.rows..(r + 1) * other.rows];
            for (j, oj) in o.iter_mut().enumerate() {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                *oj = dot(a_row, b_row);
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Adds `bias[j]` to every element of column `j`.
    ///
    /// # Panics
    /// Panics if `bias.len() != cols`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Sums each column, producing a length-`cols` vector.
    ///
    /// Used for the bias gradient `∇b = Σ_rows δy`.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, v) in sums.iter_mut().zip(self.row(r).iter()) {
                *s += v;
            }
        }
        sums
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element difference against another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// Delegates to the 8-lane vector kernel [`crate::kernels::dot`], whose
/// fixed-order lane reduction makes the value bitwise reproducible across
/// runs, thread counts, and SIMD backends.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::dot(a, b)
}

/// Core GEMM over raw row-major slices: `c[m x n] += a[m x k] · b[k x n]`.
///
/// Exposed at the slice level so [`crate::par`] can run it over disjoint row
/// blocks from multiple threads.
///
/// # Shape
/// `a: m × k`, `b: k × n`, `c: m × n`, all row-major slices of exactly that
/// many elements.
pub fn gemm_rows(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for kb in (0..k).step_by(BLOCK) {
        let k_end = (kb + BLOCK).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for kk in kb..k_end {
                let aik = a_row[kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                // Element-wise vector saxpy: bitwise identical to the scalar
                // loop (one IEEE mul + add per element, same order).
                crate::kernels::saxpy(c_row, aik, b_row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_none());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_some());
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive_on_odd_shapes() {
        let a = Matrix::from_fn(7, 13, |r, c| ((r * 31 + c * 17) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(13, 5, |r, c| ((r * 7 + c * 3) % 9) as f32 - 4.0);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_handles_sizes_larger_than_block() {
        let a = Matrix::from_fn(3, 130, |r, c| ((r + c) % 7) as f32 * 0.25);
        let b = Matrix::from_fn(130, 2, |r, c| ((r * c + 1) % 5) as f32 * 0.5);
        assert!(a.matmul(&b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-3);
    }

    #[test]
    fn matmul_t_a_equals_explicit_transpose() {
        let a = Matrix::from_fn(6, 4, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(6, 3, |r, c| (r * c) as f32 * 0.1);
        let direct = a.matmul_t_a(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn matmul_t_b_equals_explicit_transpose() {
        let a = Matrix::from_fn(5, 4, |r, c| (r + 2 * c) as f32 * 0.3);
        let b = Matrix::from_fn(7, 4, |r, c| (r as f32 * 0.2) - (c as f32 * 0.1));
        let direct = a.matmul_t_b(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(9, 70, |r, c| (r * 100 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn column_slice_extracts_expected_window() {
        let a = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f32);
        let s = a.column_slice(2, 5);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.row(1), &[8.0, 9.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "column slice")]
    fn column_slice_out_of_bounds_panics() {
        Matrix::zeros(2, 3).column_slice(1, 4);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(4, 2));
    }

    #[test]
    fn row_slice_round_trips_with_set_row_slice() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let s = a.row_slice(1, 4);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.row(0), a.row(1));
        let mut b = Matrix::zeros(5, 3);
        b.set_row_slice(1, &s);
        assert_eq!(b.row(2), a.row(2));
        assert_eq!(b.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "row slice")]
    fn row_slice_out_of_bounds_panics() {
        Matrix::zeros(2, 2).row_slice(1, 3);
    }

    #[test]
    #[should_panic(expected = "set_row_slice: column mismatch")]
    fn set_row_slice_column_mismatch_panics() {
        Matrix::zeros(4, 3).set_row_slice(0, &Matrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "set_row_slice: rows out of bounds")]
    fn set_row_slice_overflow_panics() {
        Matrix::zeros(4, 3).set_row_slice(3, &Matrix::zeros(2, 3));
    }

    #[test]
    fn full_range_slices_are_identity() {
        let a = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.column_slice(0, 5), a);
        assert_eq!(a.row_slice(0, 4), a);
    }

    #[test]
    fn adjacent_column_slices_partition_the_matrix() {
        // The reuse pipeline splits K into sub-vectors this way; every
        // element must land in exactly one slice.
        let a = Matrix::from_fn(3, 7, |r, c| (r * 7 + c) as f32);
        let splits = [0usize, 3, 5, 7];
        for w in splits.windows(2) {
            let s = a.column_slice(w[0], w[1]);
            for r in 0..3 {
                assert_eq!(s.row(r), &a.row(r)[w[0]..w[1]]);
            }
        }
    }

    #[test]
    fn set_row_slice_round_trips_weight_blocks() {
        // Mirrors how reuse backward scatters per-block W_I gradients back
        // into the K × M weight-gradient matrix.
        let full = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f32);
        let mut rebuilt = Matrix::zeros(6, 4);
        for (start, end) in [(0usize, 2usize), (2, 5), (5, 6)] {
            rebuilt.set_row_slice(start, &full.row_slice(start, end));
        }
        assert_eq!(rebuilt, full);
    }

    #[test]
    fn add_row_bias_adds_per_column() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn column_sums_matches_manual_sum() {
        let m = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
        assert_eq!(m.column_sums(), vec![6.0, 10.0]);
    }

    #[test]
    fn axpy_and_scale_compose() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        a.scale(2.0);
        assert_eq!(a, Matrix::filled(2, 2, 4.0));
    }

    #[test]
    fn dot_handles_non_multiple_of_four_lengths() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = Matrix::identity(4);
        assert!((m.frobenius_norm() - 2.0).abs() < 1e-6);
    }
}
