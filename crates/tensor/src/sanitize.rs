//! Feature-gated runtime invariant layer: NaN/Inf "tensor sanitizer" and
//! redundant shape-contract checks.
//!
//! With the `checked` cargo feature **off** (the default), every assertion
//! here compiles to an empty inline function — zero cost in the training
//! hot path. With `--features checked`, each call scans its buffer and
//! panics with a message naming the *site* (layer, pass, sub-matrix or
//! cluster) that produced the first non-finite value, so a diverging run
//! fails at the layer that broke rather than epochs later in the loss.
//!
//! The panics in this module are audited `adr::no_panic` allowlist entries:
//! the whole point of the checked build is to fail fast and loudly.

/// First non-finite value in `data`, as `(flat index, value)`.
pub fn first_non_finite(data: &[f32]) -> Option<(usize, f32)> {
    data.iter().enumerate().find(|&(_, v)| !v.is_finite()).map(|(i, &v)| (i, v))
}

/// Checked build: panics when `data` holds a NaN/Inf, naming `tag` as the
/// producing site.
///
/// # Panics
/// Panics when `data` contains a non-finite value — that is the feature.
#[cfg(feature = "checked")]
#[track_caller]
pub fn assert_finite(tag: &str, data: &[f32]) {
    if let Some((i, v)) = first_non_finite(data) {
        panic!(
            "tensor sanitizer: {tag}: first non-finite value {v} at flat index {i} of {}",
            data.len()
        );
    }
}

/// Unchecked build: no-op.
#[cfg(not(feature = "checked"))]
#[inline(always)]
pub fn assert_finite(_tag: &str, _data: &[f32]) {}

/// Checked build: like [`assert_finite`] but reports the offending row and
/// column of a row-major `? × cols` matrix — with per-cluster buffers the
/// row *is* the cluster id.
///
/// # Panics
/// Panics when `data` contains a non-finite value — that is the feature.
#[cfg(feature = "checked")]
#[track_caller]
pub fn assert_finite_rows(tag: &str, data: &[f32], cols: usize) {
    if let Some((i, v)) = first_non_finite(data) {
        let (r, c) = match i.checked_div(cols) {
            Some(r) => (r, i % cols),
            None => (0, i),
        };
        panic!("tensor sanitizer: {tag}: first non-finite value {v} at row {r}, col {c}");
    }
}

/// Unchecked build: no-op.
#[cfg(not(feature = "checked"))]
#[inline(always)]
pub fn assert_finite_rows(_tag: &str, _data: &[f32], _cols: usize) {}

/// Checked build: panics when a shape disagrees with its contract. Used for
/// redundant internal re-derivations (e.g. the unfolded matrix against the
/// convolution geometry), not as a replacement for the API-boundary
/// `assert!`s.
///
/// # Panics
/// Panics when `actual != expected` — that is the feature.
#[cfg(feature = "checked")]
#[track_caller]
pub fn assert_shape<T: PartialEq + core::fmt::Debug>(tag: &str, actual: T, expected: T) {
    if actual != expected {
        panic!("shape contract: {tag}: got {actual:?}, expected {expected:?}");
    }
}

/// Unchecked build: no-op.
#[cfg(not(feature = "checked"))]
#[inline(always)]
pub fn assert_shape<T: PartialEq + core::fmt::Debug>(_tag: &str, _actual: T, _expected: T) {}

/// Checked build: asserts every element of a slice is finite; the format
/// arguments name the producing site and are **not evaluated** in unchecked
/// builds, so hot-path call sites cost nothing by default.
///
/// ```
/// let y = vec![0.0f32; 4];
/// adr_tensor::checked_finite!(&y, "conv {}: forward output", "c1");
/// ```
#[macro_export]
macro_rules! checked_finite {
    ($data:expr, $($fmt:tt)+) => {{
        #[cfg(feature = "checked")]
        $crate::sanitize::assert_finite(&format!($($fmt)+), $data);
        #[cfg(not(feature = "checked"))]
        let _ = &$data;
    }};
}

/// Like [`checked_finite!`] for a row-major `? × cols` buffer; the panic
/// message reports the offending row (for per-cluster buffers, the cluster
/// id) and column.
#[macro_export]
macro_rules! checked_finite_rows {
    ($data:expr, $cols:expr, $($fmt:tt)+) => {{
        #[cfg(feature = "checked")]
        $crate::sanitize::assert_finite_rows(&format!($($fmt)+), $data, $cols);
        #[cfg(not(feature = "checked"))]
        let _ = (&$data, &$cols);
    }};
}

/// Checked build: asserts a redundant shape contract (`actual == expected`),
/// naming the violated contract via the format arguments.
#[macro_export]
macro_rules! checked_shape {
    ($actual:expr, $expected:expr, $($fmt:tt)+) => {{
        #[cfg(feature = "checked")]
        $crate::sanitize::assert_shape(&format!($($fmt)+), $actual, $expected);
        #[cfg(not(feature = "checked"))]
        let _ = (&$actual, &$expected);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_first_non_finite() {
        assert_eq!(first_non_finite(&[1.0, 2.0, 3.0]), None);
        assert_eq!(first_non_finite(&[1.0, f32::NAN, f32::INFINITY]).map(|(i, _)| i), Some(1));
        assert_eq!(first_non_finite(&[f32::NEG_INFINITY]).map(|(i, _)| i), Some(0));
    }

    #[test]
    fn clean_buffers_pass_in_all_builds() {
        assert_finite("test", &[0.0, -1.5, 1e30]);
        assert_finite_rows("test", &[0.0, 1.0, 2.0, 3.0], 2);
        assert_shape("test", (2, 3), (2, 3));
    }

    #[test]
    fn macros_accept_clean_inputs_in_all_builds() {
        let buf = [0.5f32, -0.5];
        crate::checked_finite!(&buf, "layer {}", 1);
        crate::checked_finite_rows!(&buf, 2, "cluster outputs of sub-matrix {}", 0);
        crate::checked_shape!((1usize, 2usize), (1usize, 2usize), "unfold contract");
    }

    #[cfg(feature = "checked")]
    #[test]
    #[should_panic(expected = "tensor sanitizer: bad layer")]
    fn checked_build_panics_on_nan() {
        assert_finite("bad layer", &[0.0, f32::NAN]);
    }

    #[cfg(feature = "checked")]
    #[test]
    #[should_panic(expected = "row 1, col 0")]
    fn checked_build_names_row_and_col() {
        assert_finite_rows("cluster output", &[0.0, 1.0, f32::INFINITY, 2.0], 2);
    }

    #[cfg(feature = "checked")]
    #[test]
    #[should_panic(expected = "shape contract: unfold")]
    fn checked_build_panics_on_shape_mismatch() {
        assert_shape("unfold", (4, 9), (4, 8));
    }
}
