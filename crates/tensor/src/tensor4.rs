//! NHWC 4-D tensor used for images and activation maps.

use crate::matrix::Matrix;

/// A dense 4-D tensor with NHWC layout: `[batch, height, width, channels]`.
///
/// NHWC keeps a pixel's channels contiguous, which matches the im2col row
/// layout used throughout the workspace (see [`crate::im2col`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4 {
    n: usize,
    h: usize,
    w: usize,
    c: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates an all-zero tensor of the given shape.
    ///
    /// # Shape
    /// Output is `n × h × w × c` in NHWC layout.
    pub fn zeros(n: usize, h: usize, w: usize, c: usize) -> Self {
        Self { n, h, w, c, data: vec![0.0; n * h * w * c] }
    }

    /// Wraps an existing NHWC buffer; `None` if the length disagrees.
    ///
    /// # Shape
    /// `data` holds `n × h × w × c` elements in NHWC order.
    pub fn from_vec(n: usize, h: usize, w: usize, c: usize, data: Vec<f32>) -> Option<Self> {
        (data.len() == n * h * w * c).then_some(Self { n, h, w, c, data })
    }

    /// Builds a tensor by evaluating `f(n, y, x, c)` for every element.
    ///
    /// # Shape
    /// Output is `n × h × w × c`; `f` receives indices below each bound.
    pub fn from_fn(
        n: usize,
        h: usize,
        w: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(n * h * w * c);
        for b in 0..n {
            for y in 0..h {
                for x in 0..w {
                    for ch in 0..c {
                        data.push(f(b, y, x, ch));
                    }
                }
            }
        }
        Self { n, h, w, c, data }
    }

    /// Batch size.
    #[inline]
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Spatial height.
    #[inline]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    #[inline]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Channel count.
    #[inline]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// `(n, h, w, c)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.h, self.w, self.c)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat offset of `(n, y, x, c)`.
    ///
    /// # Shape
    /// Indices must satisfy `n < batch`, `y < height`, `x < width`,
    /// `c < channels`; the result indexes the flat NHWC buffer.
    #[inline]
    pub fn offset(&self, n: usize, y: usize, x: usize, c: usize) -> usize {
        debug_assert!(n < self.n && y < self.h && x < self.w && c < self.c);
        ((n * self.h + y) * self.w + x) * self.c + c
    }

    /// Element accessor.
    ///
    /// # Shape
    /// Indices as in [`Tensor4::offset`]: `(n, y, x, c)` within the NHWC
    /// bounds.
    #[inline]
    pub fn get(&self, n: usize, y: usize, x: usize, c: usize) -> f32 {
        self.data[self.offset(n, y, x, c)]
    }

    /// Mutable element accessor.
    ///
    /// # Shape
    /// Indices as in [`Tensor4::offset`]: `(n, y, x, c)` within the NHWC
    /// bounds.
    #[inline]
    pub fn get_mut(&mut self, n: usize, y: usize, x: usize, c: usize) -> &mut f32 {
        let off = self.offset(n, y, x, c);
        &mut self.data[off]
    }

    /// Borrows the flat NHWC storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat NHWC storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor as a `[n, h*w*c]` matrix (no copy of values,
    /// but allocates the `Matrix` wrapper around a clone of the data).
    ///
    /// # Panics
    /// Never in practice: the length always matches the tensor's own dims.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.n, self.h * self.w * self.c, self.data.clone())
            .expect("shape arithmetic is consistent")
    }

    /// Builds an NHWC tensor from a `[n, h*w*c]` matrix.
    ///
    /// # Shape
    /// `m: n × (h·w·c)` → output `n × h × w × c`.
    ///
    /// # Panics
    /// Panics if the matrix shape disagrees with `n*h*w*c`.
    pub fn from_matrix(m: &Matrix, h: usize, w: usize, c: usize) -> Self {
        assert_eq!(m.cols(), h * w * c, "matrix cols do not match h*w*c");
        Self { n: m.rows(), h, w, c, data: m.as_slice().to_vec() }
    }

    /// Copies one image (all channels) out of the batch.
    ///
    /// # Panics
    /// Panics when `n >= batch`.
    pub fn image(&self, n: usize) -> Tensor4 {
        assert!(n < self.n, "image index out of bounds");
        let per = self.h * self.w * self.c;
        Tensor4 {
            n: 1,
            h: self.h,
            w: self.w,
            c: self.c,
            data: self.data[n * per..(n + 1) * per].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_nhwc() {
        let t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.offset(0, 0, 0, 0), 0);
        assert_eq!(t.offset(0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 1, 0), 5);
        assert_eq!(t.offset(0, 1, 0, 0), 20);
        assert_eq!(t.offset(1, 0, 0, 0), 60);
    }

    #[test]
    fn from_fn_and_get_round_trip() {
        let t = Tensor4::from_fn(2, 2, 2, 3, |n, y, x, c| (n * 1000 + y * 100 + x * 10 + c) as f32);
        assert_eq!(t.get(1, 0, 1, 2), 1012.0);
        assert_eq!(t.get(0, 1, 1, 0), 110.0);
    }

    #[test]
    fn matrix_round_trip_preserves_values() {
        let t = Tensor4::from_fn(3, 2, 2, 2, |n, y, x, c| (n + y + x + c) as f32 * 0.5);
        let m = t.to_matrix();
        assert_eq!(m.shape(), (3, 8));
        let back = Tensor4::from_matrix(&m, 2, 2, 2);
        assert_eq!(back, t);
    }

    #[test]
    fn image_extracts_single_batch_entry() {
        let t = Tensor4::from_fn(3, 2, 2, 1, |n, _, _, _| n as f32);
        let img = t.image(2);
        assert_eq!(img.shape(), (1, 2, 2, 1));
        assert!(img.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor4::from_vec(1, 2, 2, 1, vec![0.0; 3]).is_none());
        assert!(Tensor4::from_vec(1, 2, 2, 1, vec![0.0; 4]).is_some());
    }
}
