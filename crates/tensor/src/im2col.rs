//! The im2col unfold/fold pair that turns a convolution into a GEMM.
//!
//! The paper's whole mechanism operates on the *unfolded input matrix* `x`
//! (N × K, with `N = Nb·Ow·Oh` and `K = Ic·kh·kw`). The column layout here is
//! **channel-major, then kernel-row, then kernel-column**:
//!
//! ```text
//! col(c, ki, kj) = (c * kh + ki) * kw + kj
//! ```
//!
//! so a run of `kw` consecutive columns is one kernel-row of one channel.
//! This makes the paper's neuron-vector granularities natural column slices:
//! Policy 1's `Lmin = kw` is one kernel row, and the default granularity
//! ("the channel size") is a whole per-channel block of `kh·kw` columns.

use crate::matrix::Matrix;
use crate::tensor4::Tensor4;

/// Static geometry of one convolutional layer.
///
/// Captures everything needed to unfold inputs and fold gradients back:
/// input shape, kernel shape, stride and symmetric zero padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input height `Ih`.
    pub in_h: usize,
    /// Input width `Iw`.
    pub in_w: usize,
    /// Input channels `Ic`.
    pub in_c: usize,
    /// Kernel height `kh`.
    pub kernel_h: usize,
    /// Kernel width `kw`.
    pub kernel_w: usize,
    /// Stride `s` (same in both spatial dimensions).
    pub stride: usize,
    /// Symmetric zero padding on each spatial border.
    pub padding: usize,
}

impl ConvGeom {
    /// Creates a geometry, validating that at least one output pixel exists.
    ///
    /// Returns `None` when the kernel (after padding) does not fit in the
    /// input or when `stride == 0`.
    ///
    /// # Shape
    /// Describes inputs of `in_h × in_w × in_c` convolved by `kernel_h ×
    /// kernel_w` kernels at stride `stride` with symmetric `padding`; the
    /// unfolded matrix is `(Oh·Ow) × (in_c·kh·kw)` per image.
    pub fn new(
        in_h: usize,
        in_w: usize,
        in_c: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Option<Self> {
        if stride == 0 || kernel_h == 0 || kernel_w == 0 || in_c == 0 {
            return None;
        }
        let geom = Self { in_h, in_w, in_c, kernel_h, kernel_w, stride, padding };
        (in_h + 2 * padding >= kernel_h && in_w + 2 * padding >= kernel_w).then_some(geom)
    }

    /// Output height `Oh`.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width `Ow`.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// The paper's `K = Ic · kh · kw` — one unfolded row's length.
    #[inline]
    pub fn k(&self) -> usize {
        self.in_c * self.kernel_h * self.kernel_w
    }

    /// Unfolded rows per image, `Nimg = Ow · Oh`.
    #[inline]
    pub fn rows_per_image(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Unfolded rows for a batch of `nb` images, the paper's `N`.
    #[inline]
    pub fn rows_for_batch(&self, nb: usize) -> usize {
        nb * self.rows_per_image()
    }

    /// Column index of kernel element `(channel, ki, kj)`.
    ///
    /// # Shape
    /// `channel < in_c`, `ki < kernel_h`, `kj < kernel_w`; the result is a
    /// column of the `N × K` unfolded matrix, `K = in_c·kh·kw`.
    #[inline]
    pub fn col_index(&self, channel: usize, ki: usize, kj: usize) -> usize {
        (channel * self.kernel_h + ki) * self.kernel_w + kj
    }
}

/// Unfolds an NHWC input batch into the paper's `N × K` matrix.
///
/// Row `((b · Oh + oy) · Ow + ox)` holds the receptive field of output pixel
/// `(oy, ox)` of image `b`; out-of-bounds (padding) taps read as zero.
///
/// # Panics
/// Panics if the input tensor's spatial/channel shape disagrees with `geom`.
pub fn im2col(input: &Tensor4, geom: &ConvGeom) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    im2col_into(input, geom, &mut out);
    out
}

/// [`im2col`] into a caller-owned matrix, which is reshaped (heap capacity
/// reused) and zeroed first — the arena variant the reuse layer uses so the
/// unfold of every training step after the first allocates nothing.
///
/// The zero-reset is load-bearing: `unfold_one` writes only in-bounds taps
/// and relies on padding positions already holding zero.
///
/// # Panics
/// Panics if the input tensor's spatial/channel shape disagrees with `geom`.
pub fn im2col_into(input: &Tensor4, geom: &ConvGeom, out: &mut Matrix) {
    assert_eq!(
        (input.height(), input.width(), input.channels()),
        (geom.in_h, geom.in_w, geom.in_c),
        "input tensor shape disagrees with ConvGeom"
    );
    let (oh, ow, k) = (geom.out_h(), geom.out_w(), geom.k());
    let nb = input.batch();
    let n = geom.rows_for_batch(nb);
    out.reset(n, k);
    let per_image_rows = oh * ow;
    let data = input.as_slice();
    let per_image_len = geom.in_h * geom.in_w * geom.in_c;
    // Each image's unfolded rows form a contiguous block of `out`, so the
    // batch parallelises with no synchronisation (one "row" per image).
    let threads = crate::par::memory_threads(n * k);
    crate::par::run_row_blocks(
        out.as_mut_slice(),
        per_image_rows * k,
        nb,
        threads,
        |b0, _count, chunk| {
            for (i, block) in chunk.chunks_mut(per_image_rows * k).enumerate() {
                let b = b0 + i;
                let image = &data[b * per_image_len..(b + 1) * per_image_len];
                unfold_one(image, geom, block);
            }
        },
    );
}

/// Unfolds one NHWC image into its `Oh·Ow × K` block.
fn unfold_one(image: &[f32], geom: &ConvGeom, block: &mut [f32]) {
    let (oh, ow, k) = (geom.out_h(), geom.out_w(), geom.k());
    let (ih, iw, ic) = (geom.in_h, geom.in_w, geom.in_c);
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let pad = geom.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &mut block[(oy * ow + ox) * k..(oy * ow + ox + 1) * k];
            let y0 = (oy * geom.stride) as isize - pad;
            let x0 = (ox * geom.stride) as isize - pad;
            for ki in 0..kh {
                let y = y0 + ki as isize;
                if y < 0 || y >= ih as isize {
                    continue; // padding row stays zero
                }
                let in_row = &image[y as usize * iw * ic..(y as usize + 1) * iw * ic];
                for kj in 0..kw {
                    let x = x0 + kj as isize;
                    if x < 0 || x >= iw as isize {
                        continue;
                    }
                    let pixel = &in_row[x as usize * ic..(x as usize + 1) * ic];
                    // Column layout: (c * kh + ki) * kw + kj.
                    let mut col = ki * kw + kj;
                    for &v in pixel {
                        row[col] = v;
                        col += kh * kw;
                    }
                }
            }
        }
    }
}

/// Folds an `N × K` gradient matrix back to NHWC input space (the adjoint of
/// [`im2col`]): overlapping receptive fields accumulate by summation and
/// padding taps are dropped.
///
/// # Panics
/// Panics if `cols.shape() != (rows_for_batch(nb), K)`.
pub fn col2im(cols: &Matrix, geom: &ConvGeom, batch: usize) -> Tensor4 {
    assert_eq!(
        cols.shape(),
        (geom.rows_for_batch(batch), geom.k()),
        "col matrix shape disagrees with ConvGeom/batch"
    );
    let mut out = Tensor4::zeros(batch, geom.in_h, geom.in_w, geom.in_c);
    let per_image_rows = geom.rows_per_image();
    let per_image_len = geom.in_h * geom.in_w * geom.in_c;
    let k = geom.k();
    // Image `b`'s gradients fold only into image `b`'s slice of the output,
    // so the batch parallelises with no synchronisation (one "row" per image).
    let threads = crate::par::memory_threads(cols.rows() * k);
    let cols_data = cols.as_slice();
    crate::par::run_row_blocks(
        out.as_mut_slice(),
        per_image_len,
        batch,
        threads,
        |b0, _count, chunk| {
            for (i, image) in chunk.chunks_mut(per_image_len).enumerate() {
                let b = b0 + i;
                let block = &cols_data[b * per_image_rows * k..(b + 1) * per_image_rows * k];
                fold_one(block, geom, image);
            }
        },
    );
    out
}

/// Folds one image's `Oh·Ow × K` gradient block back to NHWC, accumulating
/// overlaps.
fn fold_one(block: &[f32], geom: &ConvGeom, image: &mut [f32]) {
    let (oh, ow, k) = (geom.out_h(), geom.out_w(), geom.k());
    let (ih, iw, ic) = (geom.in_h, geom.in_w, geom.in_c);
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let pad = geom.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &block[(oy * ow + ox) * k..(oy * ow + ox + 1) * k];
            let y0 = (oy * geom.stride) as isize - pad;
            let x0 = (ox * geom.stride) as isize - pad;
            for ki in 0..kh {
                let y = y0 + ki as isize;
                if y < 0 || y >= ih as isize {
                    continue;
                }
                let out_row = &mut image[y as usize * iw * ic..(y as usize + 1) * iw * ic];
                for kj in 0..kw {
                    let x = x0 + kj as isize;
                    if x < 0 || x >= iw as isize {
                        continue;
                    }
                    let pixel = &mut out_row[x as usize * ic..(x as usize + 1) * ic];
                    let mut col = ki * kw + kj;
                    for p in pixel {
                        *p += row[col];
                        col += kh * kw;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(h: usize, w: usize, c: usize, kh: usize, kw: usize, s: usize, p: usize) -> ConvGeom {
        ConvGeom::new(h, w, c, kh, kw, s, p).expect("valid geometry")
    }

    #[test]
    fn output_dims_match_paper_formula_stride1_nopad() {
        // Paper: N = Nb·(Iw−kw+1)·(Ih−kh+1) for s = 1.
        let g = geom(32, 32, 3, 5, 5, 1, 0);
        assert_eq!(g.out_h(), 28);
        assert_eq!(g.out_w(), 28);
        assert_eq!(g.k(), 75); // CifarNet conv1: 3·5·5 (Table II lower bound)
        assert_eq!(g.rows_for_batch(4), 4 * 28 * 28);
    }

    #[test]
    fn geometry_rejects_degenerate_configs() {
        assert!(ConvGeom::new(4, 4, 1, 5, 5, 1, 0).is_none());
        assert!(ConvGeom::new(4, 4, 1, 3, 3, 0, 0).is_none());
        assert!(ConvGeom::new(4, 4, 0, 3, 3, 1, 0).is_none());
        assert!(ConvGeom::new(4, 4, 1, 5, 5, 1, 1).is_some()); // padding rescues fit
    }

    #[test]
    fn im2col_1x1_kernel_is_pixel_list() {
        let t = Tensor4::from_fn(1, 2, 2, 3, |_, y, x, c| (y * 100 + x * 10 + c) as f32);
        let g = geom(2, 2, 3, 1, 1, 1, 0);
        let m = im2col(&t, &g);
        assert_eq!(m.shape(), (4, 3));
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(3), &[110.0, 111.0, 112.0]);
    }

    #[test]
    fn im2col_layout_groups_kernel_rows_per_channel() {
        // 3x3 input, single image, 2 channels, 2x2 kernel.
        let t = Tensor4::from_fn(1, 3, 3, 2, |_, y, x, c| (c * 100 + y * 10 + x) as f32);
        let g = geom(3, 3, 2, 2, 2, 1, 0);
        let m = im2col(&t, &g);
        assert_eq!(m.shape(), (4, 8));
        // Row for output (0,0): channel 0 rows [00,01],[10,11] then channel 1.
        assert_eq!(m.row(0), &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]);
        // Row for output (1,1): window shifted by (1,1).
        assert_eq!(m.row(3), &[11.0, 12.0, 21.0, 22.0, 111.0, 112.0, 121.0, 122.0]);
    }

    #[test]
    fn padding_taps_read_zero() {
        let t = Tensor4::from_fn(1, 2, 2, 1, |_, y, x, _| (y * 2 + x + 1) as f32);
        let g = geom(2, 2, 1, 3, 3, 1, 1);
        let m = im2col(&t, &g);
        assert_eq!(m.shape(), (4, 9));
        // Output (0,0) window is centred at input (0,0): top row and left col padded.
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn stride_skips_positions() {
        let t = Tensor4::from_fn(1, 4, 4, 1, |_, y, x, _| (y * 4 + x) as f32);
        let g = geom(4, 4, 1, 2, 2, 2, 0);
        let m = im2col(&t, &g);
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.row(0), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(m.row(1), &[2.0, 3.0, 6.0, 7.0]);
        assert_eq!(m.row(2), &[8.0, 9.0, 12.0, 13.0]);
    }

    #[test]
    fn col2im_counts_overlaps() {
        // All-ones col matrix: each input pixel receives one contribution per
        // receptive field covering it.
        let g = geom(3, 3, 1, 2, 2, 1, 0);
        let cols = Matrix::filled(g.rows_for_batch(1), g.k(), 1.0);
        let t = col2im(&cols, &g, 1);
        // Corner pixels covered once, edges twice, centre four times.
        assert_eq!(t.get(0, 0, 0, 0), 1.0);
        assert_eq!(t.get(0, 0, 1, 0), 2.0);
        assert_eq!(t.get(0, 1, 1, 0), 4.0);
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> for the pair to be valid
        // forward/backward operators.
        let g = geom(5, 4, 2, 3, 2, 1, 1);
        let x = Tensor4::from_fn(2, 5, 4, 2, |n, y, xx, c| {
            ((n * 97 + y * 31 + xx * 7 + c * 3) % 13) as f32 - 6.0
        });
        let unf = im2col(&x, &g);
        let ymat =
            Matrix::from_fn(unf.rows(), unf.cols(), |r, c| ((r * 5 + c * 11) % 7) as f32 - 3.0);
        let lhs: f32 = unf.as_slice().iter().zip(ymat.as_slice().iter()).map(|(a, b)| a * b).sum();
        let folded = col2im(&ymat, &g, 2);
        let rhs: f32 = x.as_slice().iter().zip(folded.as_slice().iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "lhs={lhs} rhs={rhs}");
    }

    #[test]
    #[should_panic(expected = "disagrees with ConvGeom")]
    fn im2col_rejects_shape_mismatch() {
        let t = Tensor4::zeros(1, 4, 4, 1);
        let g = geom(5, 5, 1, 3, 3, 1, 0);
        im2col(&t, &g);
    }
}
