//! Row-block parallelism for the GEMM kernel, on the persistent worker pool.
//!
//! The baseline convolution and the centroid GEMM of the reuse path both
//! bottom out in [`matmul_par`]. Work is split into contiguous row blocks of
//! the left operand via [`run_row_blocks`]; each block writes a disjoint
//! `split_at_mut` slice of the output, so no synchronisation is needed beyond
//! the completion barrier. Blocks are dispatched onto the process-wide
//! [`crate::kernels::pool`] (the first block runs inline on the caller),
//! which replaces the former per-call `std::thread::scope` spawn+join —
//! ~10–20 µs of thread churn per fan-out — with a handful of channel sends.

use crate::matrix::{gemm_rows, Matrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// Serial/parallel crossover thresholds, shared by every scoped-thread fan-out
// in the workspace (GEMM and LSH hashing here and in `adr_reuse::hashpack`;
// im2col/col2im/scatter in `im2col.rs` and `adr_reuse::forward`).
//
// Measurement rationale (x86-64, 8 hardware threads, release profile): a
// `std::thread::scope` spawn+join round trip costs ~10–20 µs. Compute-bound
// loops (blocked GEMM, hash projections) retire roughly one multiply–add per
// cycle per lane, so ~1M multiply–adds ≈ 300 µs of work — comfortably above
// the spawn cost, while smaller problems lose more to spawning than they
// gain. Memory-bound loops (im2col gather, col2im scatter, cluster-output
// reconstruction) move one element per couple of cycles but saturate DRAM
// bandwidth well before the ALUs, so their break-even arrives earlier:
// ~128K elements ≈ 512 KiB touched. Before this unification the same
// crossover was written as three diverging literals (`1<<17`, `1<<18`,
// `1<<20`) with no shared justification.

/// Minimum per-thread work, in multiply–adds, for compute-bound fan-outs
/// (GEMM row blocks, LSH signature projections).
pub const COMPUTE_FLOPS_PER_THREAD: usize = 1 << 20;

/// Minimum per-thread work, in elements moved, for memory-bound fan-outs
/// (im2col/col2im copies, cluster-output reconstruction).
pub const MEMORY_ELEMS_PER_THREAD: usize = 1 << 17;

/// Available hardware parallelism, queried once per process.
///
/// `std::thread::available_parallelism` takes a syscall on most platforms;
/// the hot paths used to re-query it on every call.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Worker-thread override for tests; `0` means "no override" (the
/// crossover heuristics decide). Miri interprets ~1000× slower than native,
/// so no interpretable problem size can reach the `COMPUTE_FLOPS_PER_THREAD`
/// crossover — the concurrency tests force the parallel code paths on tiny
/// inputs through this switch instead.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every fan-out to use exactly `n` workers (`None` restores the
/// crossover heuristics). Test-only by convention: production code never
/// calls this, so the override stays `0` and the load below is a single
/// uncontended read per fan-out decision.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Release);
}

/// The current override, if one is set.
fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Acquire) {
        0 => None,
        n => Some(n),
    }
}

/// Worker-thread count for a compute-bound problem of `flops` multiply–adds,
/// capped by available parallelism; `1` means "stay serial".
pub fn compute_threads(flops: usize) -> usize {
    if let Some(n) = thread_override() {
        return n;
    }
    hardware_threads().min((flops / COMPUTE_FLOPS_PER_THREAD).max(1))
}

/// Worker-thread count for a memory-bound problem of `elems` elements moved,
/// capped by available parallelism; `1` means "stay serial".
pub fn memory_threads(elems: usize) -> usize {
    if let Some(n) = thread_override() {
        return n;
    }
    hardware_threads().min((elems / MEMORY_ELEMS_PER_THREAD).max(1))
}

/// Splits `out` into contiguous row blocks (each row is `unit` elements) and
/// runs `f(first_row, num_rows, block)` once per block — remote blocks on the
/// persistent worker pool, the first block inline on the calling thread.
///
/// This is the single fan-out primitive behind every hot-path parallel site
/// (matmul, im2col/col2im, `hash_all`, reconstruct). `threads` is clamped to
/// the row count here — **at the fan-out site** — so callers can pass the raw
/// crossover estimate and tall-skinny shapes can never produce empty row
/// ranges or excess dispatches. `threads <= 1` (or fewer than two rows) runs
/// the whole range as one inline call, which is bitwise identical to the
/// parallel decomposition because every output element is written by exactly
/// one block in the same loop order either way.
///
/// # Shape
/// `out` holds `rows × unit` elements, row-major; each callback block is a
/// whole number of rows.
///
/// # Panics
/// Panics if `out.len() != rows * unit`.
pub fn run_row_blocks<T, F>(out: &mut [T], unit: usize, rows: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert_eq!(out.len(), rows * unit, "row-block buffer length disagrees with rows * unit");
    let threads = threads.min(rows.max(1));
    if threads <= 1 || rows < 2 {
        if rows > 0 {
            f(0, rows, out);
        }
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let (first, mut rest) = out.split_at_mut(rows_per * unit);
    let f_ref = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads - 1);
    let mut row0 = rows_per;
    while row0 < rows {
        let rows_here = rows_per.min(rows - row0);
        let (chunk, tail) = rest.split_at_mut(rows_here * unit);
        rest = tail;
        tasks.push(Box::new(move || f_ref(row0, rows_here, chunk)));
        row0 += rows_here;
    }
    crate::kernels::pool::with_pool(|pool| pool.scope_run(tasks, || f_ref(0, rows_per, first)));
}

/// `a · b`, parallelised over row blocks of `a`.
///
/// Falls back to the single-threaded kernel for small problems. Results are
/// bit-identical to [`Matrix::matmul`] because each output element is still
/// accumulated by exactly one block in the same loop order.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_par(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_par shape mismatch: {}x{} . {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let threads = compute_threads(m * k * n);
    if threads <= 1 || m < 2 {
        return a.matmul(b);
    }
    let mut out = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    run_row_blocks(out.as_mut_slice(), n, m, threads, |row0, rows_here, chunk| {
        let a_block = &a_data[row0 * k..(row0 + rows_here) * k];
        gemm_rows(a_block, b_data, chunk, rows_here, k, n);
    });
    out
}

/// `a · b[start..end, :]` without materialising the row slice of `b` — the
/// centroid-times-weight product of the reuse forward pass, where `b` is the
/// full `K × M` weight matrix and `[start, end)` is one sub-vector's row
/// band. Equivalent to `a.matmul(&b.row_slice(start, end))` bit for bit
/// (the row band is the same contiguous memory the copy would make), minus
/// the copy.
///
/// # Panics
/// Panics when the row range is out of bounds or `a.cols() != end - start`.
pub fn matmul_rows_range_par(a: &Matrix, b: &Matrix, row_range: (usize, usize)) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_rows_range_into(a, b, row_range, &mut out);
    out
}

/// [`matmul_rows_range_par`] into a caller-owned output matrix, which is
/// reshaped (capacity reused) and zeroed before accumulation — the arena
/// variant used by the reuse forward pass to kill per-step allocation.
///
/// # Panics
/// Panics when the row range is out of bounds or `a.cols() != end - start`.
pub fn matmul_rows_range_into(a: &Matrix, b: &Matrix, row_range: (usize, usize), out: &mut Matrix) {
    let (start, end) = row_range;
    assert!(start <= end && end <= b.rows(), "row range out of bounds");
    let width = end - start;
    assert_eq!(a.cols(), width, "a width disagrees with row range");
    let (m, n) = (a.rows(), b.cols());
    out.reset(m, n);
    let a_data = a.as_slice();
    let b_block = &b.as_slice()[start * n..end * n];
    let threads = compute_threads(m * width * n);
    run_row_blocks(out.as_mut_slice(), n, m, threads, |row0, rows_here, chunk| {
        let a_block = &a_data[row0 * width..(row0 + rows_here) * width];
        gemm_rows(a_block, b_block, chunk, rows_here, width, n);
    });
}

/// `a[:, cols] · bᵀ`, parallelised over row chunks of `a` — the tall-skinny
/// product used for LSH projections (`n = b.rows()` is small, so the blocked
/// saxpy kernel of [`matmul_par`] cannot vectorise its inner loop; per-row
/// dot products against the contiguous rows of `b` are much faster here).
///
/// `col_range` selects the slice of each `a` row to use; `b` must have that
/// many columns.
///
/// # Shape
/// `a: m × k` restricted to columns `[start, end)`, `b: n × (end − start)`
/// → output `m × n` (i.e. `a[:, start..end] · bᵀ`).
///
/// # Panics
/// Panics when the column range is out of bounds or widths disagree.
pub fn matmul_range_t_b_par(a: &Matrix, col_range: (usize, usize), b: &Matrix) -> Matrix {
    let (start, end) = col_range;
    assert!(start <= end && end <= a.cols(), "column range out of bounds");
    let width = end - start;
    assert_eq!(b.cols(), width, "b width disagrees with column range");
    let (m, k) = (a.rows(), a.cols());
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let threads = compute_threads(m * width * n);
    let a_data = a.as_slice();
    run_row_blocks(out.as_mut_slice(), n, m, threads, |row0, rows_here, chunk| {
        for r in 0..rows_here {
            let row = &a_data[(row0 + r) * k + start..(row0 + r) * k + end];
            let o = &mut chunk[r * n..(r + 1) * n];
            for (j, oj) in o.iter_mut().enumerate() {
                *oj = crate::matrix::dot(row, b.row(j));
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_t_b_matches_reference() {
        let a = Matrix::from_fn(100, 10, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(6, 4, |r, c| ((r + c * 2) % 5) as f32 - 2.0);
        let got = matmul_range_t_b_par(&a, (3, 7), &b);
        let sliced = a.column_slice(3, 7);
        let expect = sliced.matmul_t_b(&b);
        assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn range_t_b_full_width() {
        let a = Matrix::from_fn(300, 16, |r, c| ((r + c) % 13) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(8, 16, |r, c| ((r * c + 1) % 7) as f32 * 0.5 - 1.5);
        let got = matmul_range_t_b_par(&a, (0, 16), &b);
        let expect = a.matmul_t_b(&b);
        assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "column range out of bounds")]
    fn range_t_b_rejects_bad_range() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(2, 3);
        matmul_range_t_b_par(&a, (2, 7), &b);
    }

    #[test]
    fn parallel_matches_serial_small() {
        let a = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32 * 0.1);
        let b = Matrix::from_fn(7, 3, |r, c| (r + c) as f32 * 0.2);
        assert_eq!(matmul_par(&a, &b), a.matmul(&b));
    }

    #[test]
    fn parallel_matches_serial_large() {
        let a = Matrix::from_fn(257, 129, |r, c| (((r * 31 + c * 17) % 23) as f32 - 11.0) * 0.05);
        let b = Matrix::from_fn(129, 130, |r, c| (((r * 13 + c * 7) % 19) as f32 - 9.0) * 0.05);
        let par = matmul_par(&a, &b);
        let ser = a.matmul(&b);
        assert!(par.max_abs_diff(&ser) < 1e-4);
    }

    #[test]
    fn single_row_matrix_is_handled() {
        let a = Matrix::from_fn(1, 64, |_, c| c as f32);
        let b = Matrix::from_fn(64, 8, |r, c| (r * c) as f32 * 0.01);
        assert_eq!(matmul_par(&a, &b), a.matmul(&b));
    }

    #[test]
    fn empty_inner_dimension_gives_zero() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let out = matmul_par(&a, &b);
        assert_eq!(out.shape(), (3, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    /// Satellite-bug pin: a thread estimate far beyond the row count must be
    /// clamped at the fan-out site instead of dispatching empty row ranges,
    /// and the result must stay bitwise equal to the serial single block.
    #[test]
    fn tall_skinny_thread_count_is_clamped_to_rows() {
        for rows in [1usize, 2, 3] {
            let unit = 5;
            let mut pooled: Vec<f32> = vec![0.0; rows * unit];
            let mut serial = pooled.clone();
            let fill = |row0: usize, rows_here: usize, chunk: &mut [f32]| {
                for r in 0..rows_here {
                    for j in 0..unit {
                        chunk[r * unit + j] = ((row0 + r) * 31 + j) as f32 * 0.125 - 1.0;
                    }
                }
            };
            run_row_blocks(&mut pooled, unit, rows, 64, fill);
            run_row_blocks(&mut serial, unit, rows, 1, fill);
            for (p, s) in pooled.iter().zip(serial.iter()) {
                assert_eq!(p.to_bits(), s.to_bits(), "rows={rows}");
            }
        }
    }

    #[test]
    fn run_row_blocks_handles_zero_rows_and_zero_unit() {
        let mut empty: Vec<f32> = Vec::new();
        run_row_blocks(&mut empty, 4, 0, 8, |_, _, _| panic!("no rows to visit"));
        let mut unit0: Vec<f32> = Vec::new();
        let visited = AtomicUsize::new(0);
        run_row_blocks(&mut unit0, 0, 3, 1, |_, rows_here, _| {
            visited.store(rows_here, Ordering::Relaxed);
        });
        assert_eq!(visited.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn rows_range_matches_row_slice_copy_bitwise() {
        let b = Matrix::from_fn(40, 9, |r, c| (((r * 13 + c * 5) % 17) as f32 - 8.0) * 0.25);
        let a = Matrix::from_fn(12, 16, |r, c| (((r * 7 + c * 3) % 11) as f32 - 5.0) * 0.5);
        let got = matmul_rows_range_par(&a, &b, (20, 36));
        let expect = a.matmul(&b.row_slice(20, 36));
        assert_eq!(got.shape(), expect.shape());
        for (g, e) in got.as_slice().iter().zip(expect.as_slice().iter()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn rows_range_into_reuses_and_reshapes_the_output() {
        let a = Matrix::from_fn(6, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Matrix::from_fn(10, 3, |r, c| (r * c % 7) as f32 - 3.0);
        let mut out = Matrix::from_fn(50, 50, |_, _| f32::NAN);
        matmul_rows_range_into(&a, &b, (2, 6), &mut out);
        assert_eq!(out.shape(), (6, 3));
        let expect = a.matmul(&b.row_slice(2, 6));
        assert!(out.max_abs_diff(&expect) == 0.0);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn rows_range_rejects_bad_range() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        matmul_rows_range_par(&a, &b, (2, 5));
    }
}
