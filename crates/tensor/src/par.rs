//! Scoped row-block parallelism for the GEMM kernel (std::thread::scope).
//!
//! The baseline convolution and the centroid GEMM of the reuse path both
//! bottom out in [`matmul_par`]. Work is split into contiguous row blocks of
//! the left operand; each scoped thread writes a disjoint slice of the
//! output, so no synchronisation is needed beyond the scope join.

use crate::matrix::{gemm_rows, Matrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// Serial/parallel crossover thresholds, shared by every scoped-thread fan-out
// in the workspace (GEMM and LSH hashing here and in `adr_reuse::hashpack`;
// im2col/col2im/scatter in `im2col.rs` and `adr_reuse::forward`).
//
// Measurement rationale (x86-64, 8 hardware threads, release profile): a
// `std::thread::scope` spawn+join round trip costs ~10–20 µs. Compute-bound
// loops (blocked GEMM, hash projections) retire roughly one multiply–add per
// cycle per lane, so ~1M multiply–adds ≈ 300 µs of work — comfortably above
// the spawn cost, while smaller problems lose more to spawning than they
// gain. Memory-bound loops (im2col gather, col2im scatter, cluster-output
// reconstruction) move one element per couple of cycles but saturate DRAM
// bandwidth well before the ALUs, so their break-even arrives earlier:
// ~128K elements ≈ 512 KiB touched. Before this unification the same
// crossover was written as three diverging literals (`1<<17`, `1<<18`,
// `1<<20`) with no shared justification.

/// Minimum per-thread work, in multiply–adds, for compute-bound fan-outs
/// (GEMM row blocks, LSH signature projections).
pub const COMPUTE_FLOPS_PER_THREAD: usize = 1 << 20;

/// Minimum per-thread work, in elements moved, for memory-bound fan-outs
/// (im2col/col2im copies, cluster-output reconstruction).
pub const MEMORY_ELEMS_PER_THREAD: usize = 1 << 17;

/// Available hardware parallelism, queried once per process.
///
/// `std::thread::available_parallelism` takes a syscall on most platforms;
/// the hot paths used to re-query it on every call.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Worker-thread override for tests; `0` means "no override" (the
/// crossover heuristics decide). Miri interprets ~1000× slower than native,
/// so no interpretable problem size can reach the `COMPUTE_FLOPS_PER_THREAD`
/// crossover — the concurrency tests force the parallel code paths on tiny
/// inputs through this switch instead.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every fan-out to use exactly `n` workers (`None` restores the
/// crossover heuristics). Test-only by convention: production code never
/// calls this, so the override stays `0` and the load below is a single
/// uncontended read per fan-out decision.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Release);
}

/// The current override, if one is set.
fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Acquire) {
        0 => None,
        n => Some(n),
    }
}

/// Worker-thread count for a compute-bound problem of `flops` multiply–adds,
/// capped by available parallelism; `1` means "stay serial".
pub fn compute_threads(flops: usize) -> usize {
    if let Some(n) = thread_override() {
        return n;
    }
    hardware_threads().min((flops / COMPUTE_FLOPS_PER_THREAD).max(1))
}

/// Worker-thread count for a memory-bound problem of `elems` elements moved,
/// capped by available parallelism; `1` means "stay serial".
pub fn memory_threads(elems: usize) -> usize {
    if let Some(n) = thread_override() {
        return n;
    }
    hardware_threads().min((elems / MEMORY_ELEMS_PER_THREAD).max(1))
}

/// `a · b`, parallelised over row blocks of `a`.
///
/// Falls back to the single-threaded kernel for small problems. Results are
/// bit-identical to [`Matrix::matmul`] because each output element is still
/// accumulated by exactly one thread in the same loop order.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_par(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_par shape mismatch: {}x{} . {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let threads = compute_threads(m * k * n);
    if threads <= 1 || m < 2 {
        return a.matmul(b);
    }
    let mut out = Matrix::zeros(m, n);
    let rows_per = m.div_ceil(threads);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_slice = out.as_mut_slice();
    std::thread::scope(|scope| {
        let mut rest = out_slice;
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows_here * n);
            rest = tail;
            let a_block = &a_data[row0 * k..(row0 + rows_here) * k];
            scope.spawn(move || {
                gemm_rows(a_block, b_data, chunk, rows_here, k, n);
            });
            row0 += rows_here;
        }
    });
    out
}

/// `a[:, cols] · bᵀ`, parallelised over row chunks of `a` — the tall-skinny
/// product used for LSH projections (`n = b.rows()` is small, so the blocked
/// saxpy kernel of [`matmul_par`] cannot vectorise its inner loop; per-row
/// dot products against the contiguous rows of `b` are much faster here).
///
/// `col_range` selects the slice of each `a` row to use; `b` must have that
/// many columns.
///
/// # Shape
/// `a: m × k` restricted to columns `[start, end)`, `b: n × (end − start)`
/// → output `m × n` (i.e. `a[:, start..end] · bᵀ`).
///
/// # Panics
/// Panics when the column range is out of bounds or widths disagree.
pub fn matmul_range_t_b_par(a: &Matrix, col_range: (usize, usize), b: &Matrix) -> Matrix {
    let (start, end) = col_range;
    assert!(start <= end && end <= a.cols(), "column range out of bounds");
    let width = end - start;
    assert_eq!(b.cols(), width, "b width disagrees with column range");
    let (m, k) = (a.rows(), a.cols());
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let flops = m * width * n;
    let threads = compute_threads(flops).min(m.max(1));
    let a_data = a.as_slice();
    let b_ref = b;
    if threads <= 1 {
        // Inline path: spawning even one scoped thread costs more than the
        // whole product for small sub-matrices.
        let out_slice = out.as_mut_slice();
        for r in 0..m {
            let row = &a_data[r * k + start..r * k + end];
            let o = &mut out_slice[r * n..(r + 1) * n];
            for (j, oj) in o.iter_mut().enumerate() {
                *oj = crate::matrix::dot(row, b_ref.row(j));
            }
        }
        return out;
    }
    let rows_per = m.div_ceil(threads).max(1);
    let out_slice = out.as_mut_slice();
    std::thread::scope(|scope| {
        let mut rest = out_slice;
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows_here * n);
            rest = tail;
            scope.spawn(move || {
                for r in 0..rows_here {
                    let row = &a_data[(row0 + r) * k + start..(row0 + r) * k + end];
                    let o = &mut chunk[r * n..(r + 1) * n];
                    for (j, oj) in o.iter_mut().enumerate() {
                        *oj = crate::matrix::dot(row, b_ref.row(j));
                    }
                }
            });
            row0 += rows_here;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_t_b_matches_reference() {
        let a = Matrix::from_fn(100, 10, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(6, 4, |r, c| ((r + c * 2) % 5) as f32 - 2.0);
        let got = matmul_range_t_b_par(&a, (3, 7), &b);
        let sliced = a.column_slice(3, 7);
        let expect = sliced.matmul_t_b(&b);
        assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn range_t_b_full_width() {
        let a = Matrix::from_fn(300, 16, |r, c| ((r + c) % 13) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(8, 16, |r, c| ((r * c + 1) % 7) as f32 * 0.5 - 1.5);
        let got = matmul_range_t_b_par(&a, (0, 16), &b);
        let expect = a.matmul_t_b(&b);
        assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "column range out of bounds")]
    fn range_t_b_rejects_bad_range() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(2, 3);
        matmul_range_t_b_par(&a, (2, 7), &b);
    }

    #[test]
    fn parallel_matches_serial_small() {
        let a = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32 * 0.1);
        let b = Matrix::from_fn(7, 3, |r, c| (r + c) as f32 * 0.2);
        assert_eq!(matmul_par(&a, &b), a.matmul(&b));
    }

    #[test]
    fn parallel_matches_serial_large() {
        let a = Matrix::from_fn(257, 129, |r, c| (((r * 31 + c * 17) % 23) as f32 - 11.0) * 0.05);
        let b = Matrix::from_fn(129, 130, |r, c| (((r * 13 + c * 7) % 19) as f32 - 9.0) * 0.05);
        let par = matmul_par(&a, &b);
        let ser = a.matmul(&b);
        assert!(par.max_abs_diff(&ser) < 1e-4);
    }

    #[test]
    fn single_row_matrix_is_handled() {
        let a = Matrix::from_fn(1, 64, |_, c| c as f32);
        let b = Matrix::from_fn(64, 8, |r, c| (r * c) as f32 * 0.01);
        assert_eq!(matmul_par(&a, &b), a.matmul(&b));
    }

    #[test]
    fn empty_inner_dimension_gives_zero() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let out = matmul_par(&a, &b);
        assert_eq!(out.shape(), (3, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
