//! Portable 8-lane `f32` SIMD abstraction (`wide`-style lane struct).
//!
//! [`F32x8`] is the single vector type behind every hand-vectorized inner
//! loop in [`crate::kernels`]. It has two interchangeable backends:
//!
//! * **Portable** (default): a `[f32; 8]` with element-wise operations.
//!   LLVM auto-vectorizes these loops for whatever the target supports.
//! * **Intrinsic** (`--features simd` on x86-64 compiled with the `avx`
//!   target feature, e.g. `RUSTFLAGS="-C target-feature=+avx2"`): the same
//!   operations expressed as `core::arch` AVX intrinsics over a `__m256`.
//!
//! # Determinism contract
//!
//! The two backends are **bitwise identical** by construction, which is what
//! lets the workspace's pinned bitwise contracts (two-run determinism,
//! serial-vs-parallel equality, the serving stage-0 dense-equality pin)
//! survive the kernel overhaul:
//!
//! * Lane-wise `add`/`mul` are single IEEE-754 operations per element in
//!   both backends — `vaddps`/`vmulps` round exactly like scalar `+`/`*`,
//!   and no backend ever contracts a `mul` + `add` into an FMA.
//! * [`F32x8::hsum`] always reduces through the same fixed-shape tree
//!   (`((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`) on the extracted lanes, so
//!   the horizontal reduction order does not depend on the backend either.
//!
//! Everything `unsafe` in the workspace's vector code lives in this module
//! and in `crates/tensor/src/kernels/` — the two locations `adr-check conc`
//! sanctions for raw-pointer kernel code.

/// Number of `f32` lanes in [`F32x8`].
pub const LANES: usize = 8;

#[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx"))]
use core::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
};

/// Eight `f32` lanes, operated on element-wise.
///
/// See the module docs for the portable/intrinsic backend split and the
/// bitwise determinism contract between them.
#[derive(Clone, Copy, Debug)]
pub struct F32x8(Repr);

#[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx"))]
type Repr = __m256;
#[cfg(not(all(feature = "simd", target_arch = "x86_64", target_feature = "avx")))]
type Repr = [f32; LANES];

#[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx"))]
impl F32x8 {
    /// Broadcasts `v` into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        // SAFETY: this impl only compiles when `avx` is statically enabled
        // (see the cfg on the impl block), so the intrinsic is supported.
        Self(unsafe { _mm256_set1_ps(v) })
    }

    /// Loads the first [`LANES`] elements of `s`.
    ///
    /// # Panics
    /// Panics if `s.len() < LANES`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        assert!(s.len() >= LANES, "F32x8::load needs {LANES} elements, got {}", s.len());
        // SAFETY: `avx` is statically enabled (cfg on the impl block); the
        // assert above guarantees LANES readable f32s behind the pointer,
        // and `loadu` has no alignment requirement.
        Self(unsafe { _mm256_loadu_ps(s.as_ptr()) })
    }

    /// Stores the lanes into the first [`LANES`] elements of `out`.
    ///
    /// # Panics
    /// Panics if `out.len() < LANES`.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        assert!(out.len() >= LANES, "F32x8::store needs {LANES} elements, got {}", out.len());
        // SAFETY: `avx` is statically enabled (cfg on the impl block); the
        // assert above guarantees LANES writable f32s behind the pointer,
        // and `storeu` has no alignment requirement.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr(), self.0) }
    }

    /// Extracts the lanes as an array, lane 0 first.
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES] {
        let mut out = [0.0f32; LANES];
        // SAFETY: `avx` is statically enabled (cfg on the impl block); the
        // destination is a local [f32; LANES], so exactly LANES writable
        // f32s, and `storeu` has no alignment requirement.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr(), self.0) };
        out
    }

    /// Lane-wise IEEE-754 addition (`vaddps` — rounds exactly like scalar
    /// `+`). Private: callers use the `+` operator, which delegates here.
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: `avx` is statically enabled (cfg on the impl block).
        Self(unsafe { _mm256_add_ps(self.0, rhs.0) })
    }

    /// Lane-wise IEEE-754 multiplication (`vmulps` — never an FMA).
    /// Private: callers use the `*` operator, which delegates here.
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: `avx` is statically enabled (cfg on the impl block).
        Self(unsafe { _mm256_mul_ps(self.0, rhs.0) })
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64", target_feature = "avx")))]
impl F32x8 {
    /// Broadcasts `v` into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `s`.
    ///
    /// # Panics
    /// Panics if `s.len() < LANES`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        assert!(s.len() >= LANES, "F32x8::load needs {LANES} elements, got {}", s.len());
        let mut lanes = [0.0f32; LANES];
        lanes.copy_from_slice(&s[..LANES]);
        Self(lanes)
    }

    /// Stores the lanes into the first [`LANES`] elements of `out`.
    ///
    /// # Panics
    /// Panics if `out.len() < LANES`.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        assert!(out.len() >= LANES, "F32x8::store needs {LANES} elements, got {}", out.len());
        out[..LANES].copy_from_slice(&self.0);
    }

    /// Extracts the lanes as an array, lane 0 first.
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES] {
        self.0
    }

    /// Lane-wise IEEE-754 addition (one scalar `+` per lane). Private:
    /// callers use the `+` operator, which delegates here.
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o += r;
        }
        Self(out)
    }

    /// Lane-wise IEEE-754 multiplication (one scalar `*` per lane; Rust
    /// never contracts a separate `*` and `+` into an FMA). Private:
    /// callers use the `*` operator, which delegates here.
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o *= r;
        }
        Self(out)
    }
}

impl F32x8 {
    /// Horizontal sum through a *fixed-shape* reduction tree:
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
    ///
    /// Both backends extract the lanes and reduce with this exact scalar
    /// expression, so the reduced value is bitwise identical across
    /// portable and intrinsic builds — the determinism argument the pinned
    /// bitwise contracts rest on (DESIGN.md §15).
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let a = self.to_array();
        ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]))
    }
}

impl std::ops::Add for F32x8 {
    type Output = Self;

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        F32x8::add(self, rhs)
    }
}

impl std::ops::Mul for F32x8 {
    type Output = Self;

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        F32x8::mul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_round_trip() {
        let src = [1.0, -2.5, 3.25, 0.0, -0.0, 1e-30, 1e30, 7.5];
        let v = F32x8::load(&src);
        assert_eq!(v.to_array(), src);
        let mut out = [0.0f32; LANES];
        v.store(&mut out);
        assert_eq!(out, src);
        assert_eq!(F32x8::splat(4.5).to_array(), [4.5; LANES]);
    }

    #[test]
    fn add_and_mul_are_lane_wise_ieee() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [0.5, -0.5, 1.5, -1.5, 2.5, -2.5, 3.5, -3.5];
        let sum = (F32x8::load(&a) + F32x8::load(&b)).to_array();
        let prod = (F32x8::load(&a) * F32x8::load(&b)).to_array();
        for i in 0..LANES {
            assert_eq!(sum[i].to_bits(), (a[i] + b[i]).to_bits(), "lane {i}");
            assert_eq!(prod[i].to_bits(), (a[i] * b[i]).to_bits(), "lane {i}");
        }
    }

    #[test]
    fn hsum_uses_the_fixed_reduction_tree() {
        // Values chosen so a different association would round differently.
        let a = [1e8, 1.0, -1e8, 1.0, 1e-8, 1e8, -1e8, 1e-8];
        let v = F32x8::load(&a);
        let expect = ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
        assert_eq!(v.hsum().to_bits(), expect.to_bits());
    }

    #[test]
    #[should_panic(expected = "F32x8::load needs 8 elements")]
    fn short_load_panics() {
        F32x8::load(&[1.0; 7]);
    }
}
