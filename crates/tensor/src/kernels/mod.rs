//! Hand-vectorized inner kernels for the reuse hot path.
//!
//! The blocked GEMM ([`crate::matrix`]), the LSH sign-dot projection
//! (`adr-reuse`'s packed hasher), and the parallel fan-out helpers all
//! bottom out in the two primitives here, built on [`crate::simd::F32x8`]:
//!
//! * [`saxpy`] — `c[j] += a * b[j]`, element-wise. Bitwise identical to the
//!   scalar loop for every lane width because each element still sees exactly
//!   one IEEE multiply followed by one IEEE add, in the same order.
//! * [`dot`] — 8-lane accumulator reduced through the fixed-order
//!   [`crate::simd::F32x8::hsum`] tree plus an in-order scalar tail. The
//!   reduction shape is part of the determinism contract: it is identical on
//!   every backend and every run, so two-run and serial-vs-parallel pins hold.
//!
//! This directory (and [`crate::simd`]) are the only modules `adr-check conc`
//! approves for unsafe kernel code; [`pool`] hosts the persistent worker pool
//! that replaces per-call `std::thread::scope` spawn+join at the fan-out
//! sites.

pub mod pool;

use crate::simd::{F32x8, LANES};

/// `c[j] += a * b[j]` over `min(c.len(), b.len())` elements.
///
/// Element-wise: every `c[j]` receives exactly one IEEE-754 multiply and one
/// IEEE-754 add regardless of lane width, so the result is bitwise identical
/// to the scalar loop — vectorization here changes throughput, not bits.
#[inline]
pub fn saxpy(c: &mut [f32], a: f32, b: &[f32]) {
    let n = c.len().min(b.len());
    let (c, b) = (&mut c[..n], &b[..n]);
    let av = F32x8::splat(a);
    let mut j = 0;
    while j + LANES <= n {
        let acc = F32x8::load(&c[j..]) + av * F32x8::load(&b[j..]);
        acc.store(&mut c[j..]);
        j += LANES;
    }
    for (cj, &bj) in c[j..].iter_mut().zip(b[j..].iter()) {
        *cj += a * bj;
    }
}

/// Dot product of `a` and `b` over `min(a.len(), b.len())` elements.
///
/// Accumulates in an 8-lane vector (`acc += a8 * b8`, one IEEE multiply and
/// one IEEE add per lane — never an FMA), reduces through the fixed-order
/// [`F32x8::hsum`] tree, then folds the tail in order. The reduction shape
/// never varies, so the value is bitwise reproducible across runs, thread
/// counts, and SIMD backends.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = F32x8::splat(0.0);
    let mut j = 0;
    while j + LANES <= n {
        acc = acc + F32x8::load(&a[j..]) * F32x8::load(&b[j..]);
        j += LANES;
    }
    let mut sum = acc.hsum();
    for (&av, &bv) in a[j..].iter().zip(b[j..].iter()) {
        sum += av * bv;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32).mul_add(scale, shift).sin()).collect()
    }

    #[test]
    fn saxpy_is_bitwise_scalar_at_every_edge_length() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 23, 64, 100] {
            let b = ramp(n, 0.37, 1.25);
            let mut c = ramp(n, -0.91, 0.5);
            let mut expect = c.clone();
            for (ej, &bj) in expect.iter_mut().zip(b.iter()) {
                *ej += -1.75 * bj;
            }
            saxpy(&mut c, -1.75, &b);
            for j in 0..n {
                assert_eq!(c[j].to_bits(), expect[j].to_bits(), "n={n} j={j}");
            }
        }
    }

    #[test]
    fn dot_matches_lane_emulating_reference_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 23, 64, 100] {
            let a = ramp(n, 0.21, -0.4);
            let b = ramp(n, -0.53, 2.1);
            // Scalar emulation of the exact lane schedule: 8 independent
            // accumulators, fixed hsum tree, in-order tail.
            let mut acc = [0.0f32; LANES];
            let mut j = 0;
            while j + LANES <= n {
                for l in 0..LANES {
                    acc[l] += a[j + l] * b[j + l];
                }
                j += LANES;
            }
            let mut expect =
                ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
            for k in j..n {
                expect += a[k] * b[k];
            }
            assert_eq!(dot(&a, &b).to_bits(), expect.to_bits(), "n={n}");
        }
    }

    #[test]
    fn saxpy_uses_shorter_of_the_two_slices() {
        let b = [1.0f32, 2.0, 3.0];
        let mut c = [10.0f32, 20.0, 30.0, 40.0];
        saxpy(&mut c, 2.0, &b);
        assert_eq!(c, [12.0, 24.0, 36.0, 40.0]);
    }
}
