//! Persistent worker pool behind every hot-path fan-out.
//!
//! `std::thread::scope` spawns and joins OS threads on every call — roughly
//! 10–20 µs of overhead per fan-out, paid again at each matmul, im2col,
//! col2im, `hash_all`, and reconstruct. The pool here spawns
//! `hardware_threads() - 1` workers once (lazily, on the first parallel
//! fan-out) and reuses them for the life of the process; a fan-out becomes a
//! handful of channel sends plus an inline chunk on the calling thread.
//!
//! # Lifecycle
//!
//! * [`with_pool`] lazily creates the global pool under an `RwLock` and hands
//!   a clone of the `Arc` to the caller; steady-state cost is one read-lock.
//! * [`shutdown_pool`] drops the global handle, disconnecting the job
//!   channels so every worker drains and exits; `Drop` joins them. Tests
//!   that must end with no live threads (Miri rejects leaked threads at
//!   process exit) call this explicitly.
//!
//! # Determinism
//!
//! The pool only changes *where* a row block runs, never how blocks are cut:
//! callers decompose work exactly as the scoped-spawn code did and each block
//! writes a disjoint `split_at_mut` chunk, so results are bitwise identical
//! to both the serial and the old scoped-parallel paths.
//!
//! # Panic and borrow safety
//!
//! [`WorkerPool::scope_run`] is the only place jobs cross into the workers.
//! It erases the caller's `'env` lifetime (the one `unsafe` in this module)
//! and is sound because it never returns — by unwind or normal exit — until
//! every dispatched job has reported completion through its channel. Worker
//! panics are caught, carried back as payloads, and re-raised on the caller.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

thread_local! {
    /// Set inside `worker_loop`. A pooled job that itself reaches a fan-out
    /// site must not enqueue onto the pool it is running on (the job at the
    /// front of its own queue would be itself — deadlock); `scope_run` checks
    /// this flag and degrades to serial execution, which is bitwise
    /// equivalent anyway.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Persistent worker threads fed by per-worker job channels.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

fn worker_loop(rx: std::sync::mpsc::Receiver<Job>) {
    IS_POOL_WORKER.with(|f| f.set(true));
    while let Ok(job) = rx.recv() {
        job();
    }
}

impl WorkerPool {
    /// Spawns `workers.max(1)` threads, each owning one job channel.
    fn spawn(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("adr-pool-{i}"))
                .spawn(move || worker_loop(rx))
                .expect("spawning a pool worker thread failed");
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Runs `tasks` on the workers and `inline` on the calling thread, then
    /// blocks until every task has finished. Tasks may borrow from the
    /// caller's stack (`'env`), exactly like `std::thread::scope` closures.
    ///
    /// # Panics
    /// Re-raises the first panic payload from `inline` or any task after all
    /// tasks have completed, and panics if a worker disappears mid-run.
    pub fn scope_run<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
        inline: impl FnOnce(),
    ) {
        if tasks.is_empty() {
            inline();
            return;
        }
        if IS_POOL_WORKER.with(std::cell::Cell::get) {
            // Nested fan-out from inside a pooled job: run everything on this
            // worker. Same block decomposition, same bits, no deadlock.
            for task in tasks {
                task();
            }
            inline();
            return;
        }

        let count = tasks.len();
        let (done_tx, done_rx) = channel::<std::thread::Result<()>>();
        for (i, task) in tasks.into_iter().enumerate() {
            let done = done_tx.clone();
            // The 'env → 'static erasure below leans on the same guarantee
            // `std::thread::scope` provides via its join barrier: each job
            // sends its completion message strictly after the boxed task —
            // and every 'env borrow inside it — has been dropped, and the
            // drain loop below receives exactly `count` such messages.
            // SAFETY: scope_run never returns (normally or by unwind) before
            // the drain loop completes, so the caller's stack frame outlives
            // every use of the transmuted 'env borrows.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    // Receiver alive for the whole drain loop; a send error
                    // only means the caller is already panicking fatally.
                    let _ = done.send(result);
                }))
            };
            let slot = i % self.senders.len();
            self.senders[slot].send(job).expect("worker pool thread exited while pool was live");
        }
        drop(done_tx);

        let inline_result = catch_unwind(AssertUnwindSafe(inline));
        let mut first_task_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..count {
            match done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) => {
                    if first_task_panic.is_none() {
                        first_task_panic = Some(payload);
                    }
                }
                Err(_) => {
                    // A worker died without reporting: its catch_unwind
                    // always sends, so the channel can only close if the
                    // worker thread itself was torn down. Nothing borrows
                    // 'env anymore (all senders dropped), so panicking here
                    // is safe.
                    panic!("worker pool disconnected while tasks were in flight");
                }
            }
        }
        if let Err(payload) = inline_result {
            resume_unwind(payload);
        }
        if let Some(payload) = first_task_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect every job channel so `worker_loop` sees `Err` and
        // returns, then join so no thread outlives the pool (Miri fails the
        // process on leaked threads).
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker only panics if a job's catch_unwind was bypassed by a
            // foreign exception; surfacing that at shutdown is correct.
            handle.join().expect("pool worker panicked outside a job");
        }
    }
}

static POOL: RwLock<Option<Arc<WorkerPool>>> = RwLock::new(None);

/// Runs `f` with the global pool, creating it on first use with
/// `hardware_threads() - 1` workers (the calling thread is the extra lane).
pub fn with_pool<R>(f: impl FnOnce(&WorkerPool) -> R) -> R {
    let existing = POOL.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    let pool = match existing {
        Some(pool) => pool,
        None => {
            let mut slot = POOL.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            slot.get_or_insert_with(|| {
                Arc::new(WorkerPool::spawn(crate::par::hardware_threads().saturating_sub(1)))
            })
            .clone()
        }
    };
    f(&pool)
}

/// Tears down the global pool, joining every worker thread.
///
/// Fan-outs after shutdown transparently respawn the pool; this exists so
/// tests (Miri in particular) can end the process with zero live threads.
pub fn shutdown_pool() {
    let taken = POOL.write().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    // Dropping the last Arc joins the workers. If a concurrent fan-out still
    // holds a clone, its drop performs the join instead.
    drop(taken);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_run_executes_all_tasks_and_inline() {
        let pool = WorkerPool::spawn(3);
        let mut parts: Vec<u64> = vec![0; 4];
        {
            let mut chunks = parts.chunks_mut(1);
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for t in 0..3u64 {
                let chunk = chunks.next().expect("four chunks for four slots");
                tasks.push(Box::new(move || chunk[0] = (t + 1) * 10));
            }
            let inline_chunk = chunks.next().expect("four chunks for four slots");
            pool.scope_run(tasks, || inline_chunk[0] = 40);
        }
        assert_eq!(parts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = WorkerPool::spawn(2);
        let finished = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| panic!("task boom")),
                Box::new(|| {
                    finished.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }),
            ];
            pool.scope_run(tasks, || {});
        }));
        assert!(result.is_err(), "task panic must re-raise on the caller");
        assert_eq!(finished.load(std::sync::atomic::Ordering::Relaxed), 1);
        // The pool survives a panicking job and keeps serving.
        let mut ok = [false];
        pool.scope_run(vec![Box::new(|| ok[0] = true)], || {});
        assert!(ok[0]);
    }

    #[test]
    fn inline_panic_still_drains_tasks() {
        let pool = WorkerPool::spawn(2);
        let done = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| {
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }),
                Box::new(|| {
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }),
            ];
            pool.scope_run(tasks, || panic!("inline boom"));
        }));
        assert!(result.is_err(), "inline panic must re-raise on the caller");
        assert_eq!(done.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_task_list_runs_inline_without_touching_workers() {
        let pool = WorkerPool::spawn(1);
        let mut ran = false;
        pool.scope_run(Vec::new(), || ran = true);
        assert!(ran);
    }
}
