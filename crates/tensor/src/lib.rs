//! Dense numeric substrate for the adaptive-deep-reuse workspace.
//!
//! This crate provides the small set of linear-algebra primitives that the
//! CNN training stack and the deep-reuse machinery are built on:
//!
//! * [`Matrix`] — a row-major, heap-allocated `f32` matrix with a blocked
//!   GEMM kernel and the two transposed-product variants
//!   ([`Matrix::matmul_t_a`], [`Matrix::matmul_t_b`]) that the backward pass
//!   of a convolutional layer needs.
//! * [`Tensor4`] — an NHWC 4-D tensor used for images and activation maps.
//! * [`im2col`] — the unfold/fold pair that turns a convolution into a GEMM,
//!   with the channel-major-by-row layout that makes the paper's
//!   *neuron vectors* (length-`kw` kernel-row segments) contiguous.
//! * [`rng`] — deterministic, seedable random sources (uniform and Gaussian)
//!   so that every experiment in the workspace is reproducible.
//! * [`par`] — row-block parallelism for the GEMM kernel, dispatched onto
//!   the persistent worker pool in [`kernels::pool`].
//! * [`simd`] / [`kernels`] — the 8-lane `f32` vector type and the
//!   hand-vectorized saxpy/dot primitives every hot inner loop bottoms out
//!   in (arch intrinsics behind the `simd` feature flag).
//! * [`sanitize`] — the feature-gated (`checked`) NaN/Inf sanitizer and
//!   shape-contract checks threaded through the layer implementations.
//!
//! The paper's notation (N, K, M, L, H, ...) is used throughout the
//! workspace; see the crate-level docs of `adr-reuse` for the mapping.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod im2col;
pub mod kernels;
pub mod matrix;
pub mod par;
pub mod rng;
pub mod sanitize;
pub mod simd;
pub mod tensor4;

pub use im2col::{col2im, im2col, ConvGeom};
pub use matrix::Matrix;
pub use tensor4::Tensor4;
