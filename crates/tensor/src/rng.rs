//! Deterministic random sources.
//!
//! Every stochastic component in the workspace (weight init, dataset
//! synthesis, LSH hyperplanes, shuffling, dropout) draws from a seeded
//! [`AdrRng`], so whole experiments replay bit-for-bit. The generator is a
//! self-contained xoshiro256** seeded through SplitMix64 (the reference
//! seeding procedure), so the workspace carries no external RNG dependency;
//! Gaussian samples are produced with a Box–Muller transform on top of the
//! uniform source.

/// Workspace-wide deterministic RNG: xoshiro256** with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct AdrRng {
    state: [u64; 4],
    /// Cached second Box–Muller sample.
    spare_gauss: Option<f32>,
}

/// The full resumable position of an [`AdrRng`] stream: the xoshiro state
/// words plus the cached Box–Muller spare. Restoring from a snapshot
/// continues the stream bit-for-bit where the original left off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngState {
    /// xoshiro256** state words.
    pub words: [u64; 4],
    /// Cached second Box–Muller sample, if one is pending.
    pub spare_gauss: Option<f32>,
}

impl AdrRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // Expand the seed into four non-degenerate words with SplitMix64,
        // as recommended by the xoshiro authors.
        let mut s = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *word = splitmix64(s);
        }
        Self { state, spare_gauss: None }
    }

    /// Derives an independent child RNG.
    ///
    /// The child's stream is a pure function of `(parent seed stream,
    /// stream_id)`, so components can be given private streams without
    /// coupling their consumption order.
    pub fn split(&mut self, stream_id: u64) -> Self {
        let base: u64 = self.next_u64();
        Self::seeded(splitmix64(base ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform in `[0, 1)`, with the full 24 bits of mantissa randomness.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    // The >> 64 guarantees the product fits back into the usize range.
    #[allow(clippy::cast_possible_truncation)]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Multiply-shift range reduction (Lemire); the bias is < n / 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A raw 64-bit draw (xoshiro256** output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        out
    }

    /// Standard normal sample via Box–Muller.
    // Box–Muller runs in f64 for precision; rounding back to f32 is the point.
    #[allow(clippy::cast_possible_truncation)]
    pub fn gauss(&mut self) -> f32 {
        if let Some(z) = self.spare_gauss.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        self.spare_gauss = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn gauss_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.gauss()
    }

    /// Fills `out` with standard normal samples.
    pub fn fill_gauss(&mut self, out: &mut [f32]) {
        for v in out {
            *v = self.gauss();
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Captures the stream position for checkpointing.
    pub fn snapshot(&self) -> RngState {
        RngState { words: self.state, spare_gauss: self.spare_gauss }
    }

    /// Reconstructs an RNG at a previously snapshotted stream position.
    pub fn from_snapshot(state: RngState) -> Self {
        Self { state: state.words, spare_gauss: state.spare_gauss }
    }
}

/// SplitMix64 finaliser, used to decorrelate derived seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = AdrRng::seeded(42);
        let mut b = AdrRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = AdrRng::seeded(1);
        let mut b = AdrRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_consumption() {
        let mut parent1 = AdrRng::seeded(7);
        let mut child1 = parent1.split(3);
        let mut parent2 = AdrRng::seeded(7);
        let mut child2 = parent2.split(3);
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = AdrRng::seeded(9);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gauss_moments_are_plausible() {
        let mut r = AdrRng::seeded(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.gauss()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.08, "var {}", var);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = AdrRng::seeded(5);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should not stay in place");
    }

    #[test]
    fn snapshot_resumes_the_stream_bit_for_bit() {
        let mut r = AdrRng::seeded(77);
        // Consume an odd number of gauss samples so a spare is cached.
        let _ = r.gauss();
        let snap = r.snapshot();
        let expect: Vec<f32> = (0..16).map(|_| r.gauss()).collect();
        let mut resumed = AdrRng::from_snapshot(snap);
        let got: Vec<f32> = (0..16).map(|_| resumed.gauss()).collect();
        assert_eq!(
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_covers_full_range() {
        let mut r = AdrRng::seeded(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
