//! Row→cluster assignment tables and centroid construction.

use adr_tensor::Matrix;

/// The result of clustering the `N` rows of a matrix into `|C|` clusters.
///
/// Invariants (checked by [`ClusterTable::validate`] and the property tests):
/// every row has exactly one cluster in `0..num_clusters`, cluster sizes sum
/// to `N`, and no cluster is empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTable {
    assignments: Vec<u32>,
    counts: Vec<u32>,
}

impl ClusterTable {
    /// Builds a table from per-row assignments.
    ///
    /// Cluster ids must be dense (`0..max+1` all present); use
    /// [`ClusterTable::from_sparse_ids`] when they are not.
    ///
    /// # Panics
    /// Panics if any cluster in the dense range is empty.
    pub fn new(assignments: Vec<u32>) -> Self {
        let num = assignments.iter().map(|&a| a as usize + 1).max().unwrap_or(0);
        let mut counts = vec![0u32; num];
        for &a in &assignments {
            counts[a as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "cluster ids must be dense: found an empty cluster among {num}"
        );
        Self { assignments, counts }
    }

    /// Builds a table from arbitrary (possibly sparse) cluster labels,
    /// re-mapping them to dense ids in first-appearance order.
    // Cluster ids are u32 by design; row counts stay far below 2^32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn from_sparse_ids<T: Eq + std::hash::Hash + Copy>(labels: &[T]) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut assignments = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = map.len() as u32;
            let id = *map.entry(l).or_insert(next);
            assignments.push(id);
        }
        Self::new(assignments)
    }

    /// Number of rows `N`.
    pub fn num_rows(&self) -> usize {
        self.assignments.len()
    }

    /// Number of clusters `|C|`.
    pub fn num_clusters(&self) -> usize {
        self.counts.len()
    }

    /// The paper's remaining ratio `r_c = |C| / N` (§III-A). An empty table
    /// reports `1.0` — no rows were clustered, so no work is saved.
    pub fn remaining_ratio(&self) -> f64 {
        if self.assignments.is_empty() {
            // An empty table means *no* clustering happened, not perfect
            // clustering: report "all rows remain" (no savings) so the
            // Eq. 5 cost model never reads the degenerate case as a
            // nearly-free layer.
            return 1.0;
        }
        self.num_clusters() as f64 / self.num_rows() as f64
    }

    /// Cluster of row `i`.
    #[inline]
    pub fn cluster_of(&self, row: usize) -> u32 {
        self.assignments[row]
    }

    /// Per-row assignments.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Size of cluster `c`.
    #[inline]
    pub fn count(&self, cluster: u32) -> u32 {
        self.counts[cluster as usize]
    }

    /// Per-cluster sizes.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Checks the structural invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        let num = self.counts.len();
        let mut recount = vec![0u32; num];
        for (row, &a) in self.assignments.iter().enumerate() {
            if a as usize >= num {
                return Err(format!("row {row} assigned to out-of-range cluster {a}"));
            }
            recount[a as usize] += 1;
        }
        if recount != self.counts {
            return Err("stored counts disagree with assignments".into());
        }
        if let Some(c) = recount.iter().position(|&c| c == 0) {
            return Err(format!("cluster {c} is empty"));
        }
        Ok(())
    }

    /// Computes the `|C| × L` centroid matrix: row `c` is the arithmetic
    /// mean of the raw member rows of cluster `c` (the paper's `x_c`).
    ///
    /// # Panics
    /// Panics if `data.rows() != num_rows()`.
    pub fn centroids(&self, data: &Matrix) -> Matrix {
        self.centroids_range(data, 0, data.cols())
    }

    /// [`ClusterTable::centroids`] over the column window `[start, end)` of
    /// `data` — avoids materialising the sub-matrix.
    ///
    /// # Panics
    /// Panics on row-count mismatch or an out-of-bounds window.
    pub fn centroids_range(&self, data: &Matrix, start: usize, end: usize) -> Matrix {
        assert_eq!(data.rows(), self.num_rows(), "centroids: row count mismatch");
        assert!(start <= end && end <= data.cols(), "centroid window out of bounds");
        let l = end - start;
        let mut sums = Matrix::zeros(self.num_clusters(), l);
        for (row, &c) in self.assignments.iter().enumerate() {
            let src = &data.row(row)[start..end];
            let dst = sums.row_mut(c as usize);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        for c in 0..self.num_clusters() {
            let inv = 1.0 / self.counts[c] as f32;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
        sums
    }

    /// Scatters per-cluster rows back to per-member rows:
    /// `out.row(i) += cluster_rows.row(cluster_of(i))`.
    ///
    /// This is the reconstruction step of Fig. 2 (forward) and the
    /// member-broadcast of Eq. 13 (backward input delta).
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn scatter_add(&self, cluster_rows: &Matrix, out: &mut Matrix) {
        assert_eq!(cluster_rows.rows(), self.num_clusters(), "scatter: cluster count mismatch");
        assert_eq!(out.rows(), self.num_rows(), "scatter: row count mismatch");
        assert_eq!(cluster_rows.cols(), out.cols(), "scatter: column mismatch");
        for (row, &c) in self.assignments.iter().enumerate() {
            let src = cluster_rows.row(c as usize);
            let dst = out.row_mut(row);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// Gathers (sums) member rows into per-cluster rows:
    /// `out.row(c) = Σ_{i ∈ c} data.row(i)` — the paper's `δy_{c,s}` (Eq. 8).
    ///
    /// # Panics
    /// Panics when `data` has a different row count than this table.
    pub fn gather_sum(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.rows(), self.num_rows(), "gather: row count mismatch");
        let mut out = Matrix::zeros(self.num_clusters(), data.cols());
        for (row, &c) in self.assignments.iter().enumerate() {
            let src = data.row(row);
            let dst = out.row_mut(c as usize);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        out
    }

    /// Gathers member rows into per-cluster *means* — the paper's
    /// `δy_{c,sa}` (Eq. 15/16).
    pub fn gather_mean(&self, data: &Matrix) -> Matrix {
        let mut out = self.gather_sum(data);
        for c in 0..self.num_clusters() {
            let inv = 1.0 / self.counts[c] as f32;
            for v in out.row_mut(c) {
                *v *= inv;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ClusterTable {
        // rows 0,2 -> cluster 0; rows 1,3,4 -> cluster 1
        ClusterTable::new(vec![0, 1, 0, 1, 1])
    }

    #[test]
    fn counts_and_ratio() {
        let t = table();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.counts(), &[2, 3]);
        assert!((t.remaining_ratio() - 0.4).abs() < 1e-12);
        t.validate().unwrap();
    }

    #[test]
    fn from_sparse_ids_densifies() {
        let t = ClusterTable::from_sparse_ids(&[100u64, 7, 100, 42]);
        assert_eq!(t.assignments(), &[0, 1, 0, 2]);
        assert_eq!(t.num_clusters(), 3);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn empty_middle_cluster_panics() {
        ClusterTable::new(vec![0, 2]);
    }

    #[test]
    fn centroids_are_member_means() {
        let t = table();
        let data = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let cent = t.centroids(&data);
        // cluster 0: rows 0 [0,1] and 2 [4,5] -> mean [2,3]
        assert_eq!(cent.row(0), &[2.0, 3.0]);
        // cluster 1: rows 1 [2,3], 3 [6,7], 4 [8,9] -> mean [16/3, 19/3]
        assert!((cent.row(1)[0] - 16.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn centroids_range_matches_sliced_centroids() {
        let t = table();
        let data = Matrix::from_fn(5, 6, |r, c| (r * 6 + c) as f32 * 0.5);
        let windowed = t.centroids_range(&data, 2, 5);
        let sliced = t.centroids(&data.column_slice(2, 5));
        assert!(windowed.max_abs_diff(&sliced) < 1e-6);
    }

    #[test]
    fn scatter_add_broadcasts_cluster_rows() {
        let t = table();
        let rows = Matrix::from_vec(2, 1, vec![10.0, 20.0]).unwrap();
        let mut out = Matrix::zeros(5, 1);
        t.scatter_add(&rows, &mut out);
        assert_eq!(out.as_slice(), &[10.0, 20.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn gather_sum_and_mean() {
        let t = table();
        let data = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 6.0]).unwrap();
        let sum = t.gather_sum(&data);
        assert_eq!(sum.as_slice(), &[4.0, 12.0]);
        let mean = t.gather_mean(&data);
        assert_eq!(mean.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn gather_then_scatter_preserves_totals() {
        let t = table();
        let data = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        let gathered = t.gather_mean(&data);
        let mut back = Matrix::zeros(5, 3);
        t.scatter_add(&gathered, &mut back);
        // Every member now holds its cluster mean; per-cluster totals match.
        let orig_totals = t.gather_sum(&data);
        let back_totals = t.gather_sum(&back);
        assert!(orig_totals.max_abs_diff(&back_totals) < 1e-5);
    }

    #[test]
    fn single_cluster_degenerate_case() {
        let t = ClusterTable::new(vec![0, 0, 0]);
        assert_eq!(t.num_clusters(), 1);
        assert!((t.remaining_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_gives_ratio_one() {
        let t = ClusterTable::new(vec![0, 1, 2, 3]);
        assert_eq!(t.remaining_ratio(), 1.0);
        let data = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(t.centroids(&data), data);
    }

    #[test]
    fn empty_table_reports_no_savings() {
        // The degenerate "nothing was clustered" case must read as r_c = 1
        // (all rows remain), not 0 (everything collapsed) — otherwise the
        // Eq. 5 cost model would score the layer as nearly free.
        let t = ClusterTable::new(vec![]);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_clusters(), 0);
        assert_eq!(t.remaining_ratio(), 1.0);
        t.validate().unwrap();
    }

    #[test]
    fn zero_width_centroid_window() {
        let t = table();
        let data = Matrix::from_fn(5, 6, |r, c| (r * 6 + c) as f32);
        for start in [0, 3, 6] {
            let cent = t.centroids_range(&data, start, start);
            assert_eq!(cent.rows(), t.num_clusters());
            assert_eq!(cent.cols(), 0);
        }
        // gather/scatter on zero-column data are likewise well-defined no-ops.
        let empty = Matrix::zeros(5, 0);
        assert_eq!(t.gather_sum(&empty).cols(), 0);
        assert_eq!(t.gather_mean(&empty).cols(), 0);
        let rows = Matrix::zeros(2, 0);
        let mut out = Matrix::zeros(5, 0);
        t.scatter_add(&rows, &mut out);
    }

    #[test]
    fn tail_window_narrower_than_l() {
        // A 6-column matrix split with L = 4 leaves a 2-wide tail window;
        // the windowed centroids must match centroids of the sliced tail.
        let t = table();
        let data = Matrix::from_fn(5, 6, |r, c| (r * 6 + c) as f32 * 0.25);
        let tail = t.centroids_range(&data, 4, 6);
        assert_eq!(tail.cols(), 2);
        let sliced = t.centroids(&data.column_slice(4, 6));
        assert!(tail.max_abs_diff(&sliced) < 1e-6);
        // And the full set of windows tiles the full-width centroids.
        let full = t.centroids(&data);
        let head = t.centroids_range(&data, 0, 4);
        for c in 0..t.num_clusters() {
            let rebuilt: Vec<f32> = head.row(c).iter().chain(tail.row(c)).copied().collect();
            assert_eq!(rebuilt.as_slice(), full.row(c));
        }
    }

    #[test]
    #[should_panic(expected = "window out of bounds")]
    fn inverted_window_panics() {
        let t = table();
        let data = Matrix::zeros(5, 6);
        t.centroids_range(&data, 4, 2);
    }
}
