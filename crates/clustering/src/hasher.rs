//! A fast integer hasher for signature-keyed maps.
//!
//! LSH signatures are already well-mixed 64-bit values produced from random
//! projections, and signature→cluster lookups sit on the hot path of every
//! reuse forward pass. SipHash's HashDoS protection buys nothing here, so we
//! use an Fx-style multiply hash (the same construction `rustc` uses).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (`pi` derived, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher specialised for small integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path: fold 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by LSH signatures.
pub type SignatureMap<V> = std::collections::HashMap<u64, V, FxBuildHasher>;

/// A `HashSet` of LSH signatures.
pub type SignatureSet = std::collections::HashSet<u64, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn nearby_keys_spread() {
        let hashes: Vec<u64> = (0u64..1000)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 1000, "consecutive keys must not collide");
    }

    #[test]
    fn signature_map_works_end_to_end() {
        let mut m: SignatureMap<usize> = SignatureMap::default();
        for sig in [3u64, 99, 3, 42] {
            *m.entry(sig).or_insert(0) += 1;
        }
        assert_eq!(m[&3], 2);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Not required to be equal, just both defined and non-zero.
        assert_ne!(a.finish(), 0);
        assert_ne!(b.finish(), 0);
    }
}
