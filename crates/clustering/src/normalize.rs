//! Angular-cosine similarity helpers.
//!
//! The paper measures neuron-vector similarity as the distance between
//! L2-normalised vectors (`‖x̂_i − x̂_j‖`, §III-B "Similarity Metric").
//! Sign-random-projection LSH is scale-invariant, so hashing does not need
//! normalisation, but k-means (the verification clustering) does.

use adr_tensor::Matrix;

/// L2-normalises each row of `m` in place; zero rows are left untouched.
pub fn normalize_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for v in row {
                *v *= inv;
            }
        }
    }
}

/// Returns a row-normalised copy of `m`.
pub fn normalized(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    normalize_rows(&mut out);
    out
}

/// Angular cosine distance between two vectors: `‖â − b̂‖₂`.
///
/// Ranges from 0 (same direction) to 2 (opposite direction). Zero vectors
/// are treated as normalised-zero, giving the other vector's norm (1 or 0).
///
/// # Panics
/// Panics when the two vectors differ in length.
pub fn angular_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "angular_distance: length mismatch");
    let na = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    let ia = if na > 0.0 { 1.0 / na } else { 0.0 };
    let ib = if nb > 0.0 { 1.0 / nb } else { 0.0 };
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x * ia - y * ib;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity `⟨a, b⟩ / (‖a‖·‖b‖)`; zero when either vector is zero.
///
/// # Panics
/// Panics when the two vectors differ in length.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_rows_gives_unit_norms() {
        let mut m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 5.0]).unwrap();
        normalize_rows(&mut m);
        assert!((m.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((m.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn zero_rows_survive_normalisation() {
        let mut m = Matrix::zeros(1, 3);
        normalize_rows(&mut m);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn angular_distance_of_parallel_vectors_is_zero() {
        assert!(angular_distance(&[1.0, 2.0], &[2.0, 4.0]) < 1e-6);
    }

    #[test]
    fn angular_distance_of_opposite_vectors_is_two() {
        assert!((angular_distance(&[1.0, 0.0], &[-3.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn angular_distance_is_scale_invariant() {
        let d1 = angular_distance(&[1.0, 0.5], &[0.2, 0.9]);
        let d2 = angular_distance(&[10.0, 5.0], &[0.02, 0.09]);
        assert!((d1 - d2).abs() < 1e-5);
    }

    #[test]
    fn cosine_similarity_bounds() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
