//! Random-hyperplane LSH (Eq. 4 of the paper).
//!
//! `H` random hyperplanes turn a length-`L` neuron vector into an `H`-bit
//! signature: bit `h` is 1 iff `v_h · x > 0`. Vectors at small angular
//! distance collide with high probability, so equal signatures form
//! clusters. Because `sign(v·x) = sign(v·x̂)`, hashing raw vectors is
//! equivalent to hashing the normalised vectors the paper's similarity
//! metric prescribes.

use adr_tensor::matrix::{dot, Matrix};
use adr_tensor::par::matmul_range_t_b_par;
use adr_tensor::rng::AdrRng;

use crate::assign::ClusterTable;
use crate::hasher::SignatureMap;

/// A family of `H ≤ 64` random hyperplanes hashing length-`L` vectors.
///
/// The family is sampled once and kept fixed — the across-batch cluster
/// reuse of Algorithm 1 requires the *same* family for all batches (§III-B
/// "Cluster Scope").
#[derive(Clone, Debug)]
pub struct LshTable {
    /// `H × L` hyperplane matrix; row `h` is the normal of hyperplane `h`.
    hyperplanes: Matrix,
}

impl LshTable {
    /// Samples `num_hashes` Gaussian hyperplanes for vectors of `dim`
    /// elements.
    ///
    /// # Panics
    /// Panics if `num_hashes == 0 || num_hashes > 64` or `dim == 0`
    /// (signatures are packed in a `u64`; the paper's Policy 2 bounds
    /// `H < log2 N`, far below 64 in practice).
    pub fn new(dim: usize, num_hashes: usize, rng: &mut AdrRng) -> Self {
        assert!((1..=64).contains(&num_hashes), "num_hashes must be in 1..=64, got {num_hashes}");
        assert!(dim > 0, "dim must be positive");
        let mut hyperplanes = Matrix::zeros(num_hashes, dim);
        rng.fill_gauss(hyperplanes.as_mut_slice());
        Self { hyperplanes }
    }

    /// A degenerate family whose hyperplanes are all zero: every vector
    /// hashes to signature 0, so all rows collapse into one giant cluster.
    /// Exists for the fault-injection harness in `adr-core`; never useful
    /// for real reuse.
    ///
    /// # Panics
    /// Panics under the same bounds as [`LshTable::new`].
    pub fn constant(dim: usize, num_hashes: usize) -> Self {
        let mut table = Self::new(dim, num_hashes, &mut AdrRng::seeded(0));
        table.hyperplanes.as_mut_slice().fill(0.0);
        table
    }

    /// Vector length `L` this table hashes.
    pub fn dim(&self) -> usize {
        self.hyperplanes.cols()
    }

    /// Number of hash functions `H`.
    pub fn num_hashes(&self) -> usize {
        self.hyperplanes.rows()
    }

    /// Hashes one vector to its `H`-bit signature.
    ///
    /// # Panics
    /// Panics if `x.len() != dim()`.
    pub fn signature(&self, x: &[f32]) -> u64 {
        assert_eq!(x.len(), self.dim(), "signature: vector length mismatch");
        let mut sig = 0u64;
        for h in 0..self.num_hashes() {
            // Eq. 4: h_v(x) = 1 if v·x > 0 else 0.
            if dot(self.hyperplanes.row(h), x) > 0.0 {
                sig |= 1 << h;
            }
        }
        sig
    }

    /// Hashes every row of `data`, returning per-row signatures.
    ///
    /// Large batches are projected with one blocked parallel GEMM
    /// (`data · Pᵀ`), then sign-packed; tiny batches fall back to per-row
    /// dot products to avoid GEMM setup costs. The two paths may round
    /// differently for projections that are exactly at the hyperplane, but
    /// Eq. 4 only looks at signs, so agreement holds for any vector not on
    /// a hyperplane (probability 1 for continuous data).
    ///
    /// # Panics
    /// Panics when `data`'s column count differs from the hash dimension.
    pub fn signatures(&self, data: &Matrix) -> Vec<u64> {
        assert_eq!(data.cols(), self.dim(), "signatures: column count mismatch");
        self.signatures_range(data, 0)
    }

    /// Hashes the column window `[start, start + L)` of every row of `data`
    /// without copying the sub-matrix out — the hot path of the sub-vector
    /// forward pass.
    ///
    /// # Panics
    /// Panics when the window exceeds `data`'s width.
    pub fn signatures_range(&self, data: &Matrix, start: usize) -> Vec<u64> {
        let n = data.rows();
        let end = start + self.dim();
        assert!(end <= data.cols(), "signature window out of bounds");
        if n < 64 {
            return (0..n).map(|r| self.signature(&data.row(r)[start..end])).collect();
        }
        let proj = matmul_range_t_b_par(data, (start, end), &self.hyperplanes);
        let h = self.num_hashes();
        let mut sigs = Vec::with_capacity(n);
        for r in 0..n {
            let row = proj.row(r);
            let mut sig = 0u64;
            for (bit, &v) in row.iter().enumerate().take(h) {
                if v > 0.0 {
                    sig |= 1 << bit;
                }
            }
            sigs.push(sig);
        }
        sigs
    }

    /// Borrows the `H × L` hyperplane matrix (row `h` = hyperplane `h`).
    ///
    /// Exposed so callers that hash many sub-matrices can pack several
    /// families into one streaming pass (see `adr-reuse`).
    pub fn hyperplanes(&self) -> &Matrix {
        &self.hyperplanes
    }

    /// Clusters the rows of `data` by signature equality.
    ///
    /// Returns the dense [`ClusterTable`] plus, for each cluster, the
    /// signature that formed it (needed by the across-batch reuse cache).
    ///
    /// # Panics
    /// Panics when `data`'s column count differs from the hash dimension.
    pub fn cluster(&self, data: &Matrix) -> (ClusterTable, Vec<u64>) {
        assert_eq!(data.cols(), self.dim(), "cluster: column count mismatch");
        self.cluster_range(data, 0)
    }

    /// [`LshTable::cluster`] over the column window `[start, start + L)`
    /// of `data`, avoiding the sub-matrix copy.
    pub fn cluster_range(&self, data: &Matrix, start: usize) -> (ClusterTable, Vec<u64>) {
        cluster_from_signatures(self.signatures_range(data, start).iter().copied())
    }

    /// Multiply–adds needed to hash `n` rows: `n · L · H` (the paper's
    /// hashing overhead term `N·K·H` summed over sub-matrices).
    pub fn hashing_flops(&self, n: usize) -> u64 {
        (n * self.dim() * self.num_hashes()) as u64
    }
}

/// Groups a signature stream into a dense [`ClusterTable`]: equal
/// signatures share a cluster, ids assigned in first-appearance order.
/// Returns the table plus the forming signature of each cluster.
// Cluster ids are u32 by design; row counts stay far below 2^32.
#[allow(clippy::cast_possible_truncation)]
pub fn cluster_from_signatures(sigs: impl Iterator<Item = u64>) -> (ClusterTable, Vec<u64>) {
    let mut map: SignatureMap<u32> = SignatureMap::default();
    let mut assignments = Vec::new();
    let mut cluster_sigs = Vec::new();
    for s in sigs {
        let next = map.len() as u32;
        let id = *map.entry(s).or_insert_with(|| {
            cluster_sigs.push(s);
            next
        });
        assignments.push(id);
    }
    (ClusterTable::new(assignments), cluster_sigs)
}

/// [`cluster_from_signatures`] specialised for signatures known to fit in
/// `sig_bits` bits: uses a direct-index table instead of a hash map, which
/// is several times faster on the reuse hot path where `H ≤ 16`.
///
/// Falls back to the hash-map path for wider signatures.
///
/// # Panics
/// Panics (in debug builds) if a signature exceeds `sig_bits`.
// Cluster ids are u32; the LUT path only runs for signatures under 17 bits.
#[allow(clippy::cast_possible_truncation)]
pub fn cluster_from_signatures_with_bits(
    sigs: impl ExactSizeIterator<Item = u64>,
    sig_bits: usize,
) -> (ClusterTable, Vec<u64>) {
    // The LUT pays 2^bits of zeroing up front; only profitable while that
    // stays proportionate to the number of rows being clustered.
    if sig_bits > 16 || (1usize << sig_bits) > 4 * sigs.len().max(1) {
        return cluster_from_signatures(sigs);
    }
    const UNSEEN: u32 = u32::MAX;
    let mut lut = vec![UNSEEN; 1usize << sig_bits];
    let mut assignments = Vec::new();
    let mut cluster_sigs = Vec::new();
    for s in sigs {
        debug_assert!((s as usize) < lut.len(), "signature wider than sig_bits");
        let slot = &mut lut[s as usize];
        if *slot == UNSEEN {
            *slot = cluster_sigs.len() as u32;
            cluster_sigs.push(s);
        }
        assignments.push(*slot);
    }
    (ClusterTable::new(assignments), cluster_sigs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(dim: usize, h: usize, seed: u64) -> LshTable {
        LshTable::new(dim, h, &mut AdrRng::seeded(seed))
    }

    #[test]
    fn identical_vectors_share_signatures() {
        let t = table(8, 16, 1);
        let v: Vec<f32> = (0..8).map(|i| i as f32 - 3.5).collect();
        assert_eq!(t.signature(&v), t.signature(&v));
    }

    #[test]
    fn scaled_vectors_share_signatures() {
        // Sign random projections are scale-invariant.
        let t = table(8, 16, 2);
        let v: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
        let scaled: Vec<f32> = v.iter().map(|x| x * 37.5).collect();
        assert_eq!(t.signature(&v), t.signature(&scaled));
    }

    #[test]
    fn opposite_vectors_get_complementary_bits() {
        let t = table(4, 8, 3);
        let v = [1.0, -2.0, 0.5, 3.0];
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let s1 = t.signature(&v);
        let s2 = t.signature(&neg);
        // With probability 1 no projection is exactly zero, so bits flip.
        let mask = (1u64 << 8) - 1;
        assert_eq!(s1 ^ s2, mask);
    }

    #[test]
    fn nearby_vectors_collide_more_than_distant_ones() {
        let t = table(16, 20, 4);
        let mut rng = AdrRng::seeded(99);
        let base: Vec<f32> = (0..16).map(|_| rng.gauss()).collect();
        let near: Vec<f32> = base.iter().map(|x| x + 0.01 * x.signum()).collect();
        let far: Vec<f32> = (0..16).map(|_| rng.gauss()).collect();
        let sb = t.signature(&base);
        let sn = t.signature(&near);
        let sf = t.signature(&far);
        let near_diff = (sb ^ sn).count_ones();
        let far_diff = (sb ^ sf).count_ones();
        assert!(near_diff < far_diff, "near {near_diff} vs far {far_diff}");
    }

    #[test]
    fn more_hashes_give_finer_clusters() {
        let mut rng = AdrRng::seeded(5);
        let data = Matrix::from_fn(200, 8, |_, _| rng.gauss());
        let coarse = table(8, 2, 6).cluster(&data).0.num_clusters();
        let fine = table(8, 20, 6).cluster(&data).0.num_clusters();
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn cluster_assigns_equal_rows_together() {
        let mut data = Matrix::zeros(4, 6);
        for r in 0..4 {
            for c in 0..6 {
                // rows 0 and 2 identical; rows 1 and 3 identical.
                data[(r, c)] = ((r % 2) * 10 + c) as f32 + 1.0;
            }
        }
        let (tab, sigs) = table(6, 12, 7).cluster(&data);
        assert_eq!(tab.cluster_of(0), tab.cluster_of(2));
        assert_eq!(tab.cluster_of(1), tab.cluster_of(3));
        assert_eq!(sigs.len(), tab.num_clusters());
        tab.validate().unwrap();
    }

    #[test]
    fn signature_count_matches_cluster_count() {
        let mut rng = AdrRng::seeded(8);
        let data = Matrix::from_fn(64, 4, |_, _| rng.gauss());
        let (tab, sigs) = table(4, 10, 9).cluster(&data);
        assert_eq!(sigs.len(), tab.num_clusters());
        // Signatures listed per cluster must be unique.
        let mut uniq = sigs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), sigs.len());
    }

    #[test]
    fn hashing_flops_formula() {
        let t = table(10, 5, 10);
        assert_eq!(t.hashing_flops(100), 100 * 10 * 5);
    }

    #[test]
    #[should_panic(expected = "num_hashes must be in")]
    fn too_many_hashes_panics() {
        table(4, 65, 11);
    }

    #[test]
    fn constant_family_collapses_everything_into_one_cluster() {
        let mut rng = AdrRng::seeded(12);
        let data = Matrix::from_fn(100, 6, |_, _| rng.gauss());
        let t = LshTable::constant(6, 10);
        let (tab, sigs) = t.cluster(&data);
        assert_eq!(tab.num_clusters(), 1);
        assert_eq!(sigs, vec![0]);
        // Both sign paths (per-row dot and blocked GEMM) agree: > 0.0
        // fails for an exactly-zero projection.
        let big = Matrix::from_fn(200, 6, |_, _| 1.0);
        assert!(t.signatures(&big).iter().all(|&s| s == 0));
    }

    #[test]
    fn same_seed_same_family() {
        let a = table(8, 8, 42);
        let b = table(8, 8, 42);
        let v: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).cos()).collect();
        assert_eq!(a.signature(&v), b.signature(&v));
    }
}
