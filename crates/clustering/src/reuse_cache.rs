//! Across-batch cluster reuse (Algorithm 1 of the paper).
//!
//! With the cluster-reuse flag `CR = 1`, signatures seen in *earlier batches*
//! keep their computed output rows. A new batch probes the cache with each
//! neuron vector's signature: hits reuse the stored output, misses compute
//! `x_i · W` and insert it. The average per-batch hit fraction is the
//! paper's reuse rate `R`, which enters the complexity formula (Eq. 6) as
//! the factor `(1 − R) · r_c`.

use crate::hasher::SignatureMap;

/// Signature→output cache with per-batch reuse-rate tracking.
#[derive(Clone, Debug)]
pub struct ReuseCache {
    map: SignatureMap<u32>,
    /// Flattened stored rows, each `out_width` long.
    outputs: Vec<f32>,
    out_width: usize,
    batch_hits: u64,
    batch_lookups: u64,
    history: Vec<f64>,
}

impl ReuseCache {
    /// Creates an empty cache storing rows of `out_width` values.
    ///
    /// # Panics
    /// Panics if `out_width == 0`.
    pub fn new(out_width: usize) -> Self {
        assert!(out_width > 0, "out_width must be positive");
        Self {
            map: SignatureMap::default(),
            outputs: Vec::new(),
            out_width,
            batch_hits: 0,
            batch_lookups: 0,
            history: Vec::new(),
        }
    }

    /// Width of stored rows (`M` for whole-row clustering, `M` per
    /// sub-matrix otherwise).
    pub fn out_width(&self) -> usize {
        self.out_width
    }

    /// Number of distinct signatures stored (the `IDX` set of Algorithm 1).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Marks the start of a new input batch: finalises the previous batch's
    /// reuse rate into [`ReuseCache::history`].
    pub fn begin_batch(&mut self) {
        if self.batch_lookups > 0 {
            self.history.push(self.batch_hits as f64 / self.batch_lookups as f64);
        }
        self.batch_hits = 0;
        self.batch_lookups = 0;
    }

    /// Probes the cache (counting the lookup); returns the stored output row
    /// on a hit.
    pub fn probe(&mut self, signature: u64) -> Option<&[f32]> {
        self.batch_lookups += 1;
        match self.map.get(&signature) {
            Some(&idx) => {
                self.batch_hits += 1;
                let start = idx as usize * self.out_width;
                Some(&self.outputs[start..start + self.out_width])
            }
            None => None,
        }
    }

    /// Inserts a computed output row for a signature. Idempotent: an already
    /// cached signature keeps its first value (matching Algorithm 1, which
    /// only computes on first sight).
    ///
    /// # Panics
    /// Panics if `row.len() != out_width`.
    // Cluster ids are u32 by design; cached row counts stay far below 2^32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn insert(&mut self, signature: u64, row: &[f32]) {
        assert_eq!(row.len(), self.out_width, "insert: row width mismatch");
        let next = (self.outputs.len() / self.out_width) as u32;
        let entry = self.map.entry(signature).or_insert(next);
        if *entry == next {
            self.outputs.extend_from_slice(row);
        }
    }

    /// Reuse rate of the current (unfinished) batch; `None` before any probe.
    pub fn current_batch_rate(&self) -> Option<f64> {
        (self.batch_lookups > 0).then(|| self.batch_hits as f64 / self.batch_lookups as f64)
    }

    /// Per-batch reuse rates of completed batches, in order.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Mean reuse rate over completed batches (the paper's `R`).
    pub fn mean_reuse_rate(&self) -> f64 {
        if self.history.is_empty() {
            0.0
        } else {
            self.history.iter().sum::<f64>() / self.history.len() as f64
        }
    }

    /// Drops all cached outputs and statistics (used when the controller
    /// turns `CR` off or retunes `{L, H}`, which invalidates signatures).
    pub fn clear(&mut self) {
        self.map.clear();
        self.outputs.clear();
        self.batch_hits = 0;
        self.batch_lookups = 0;
        self.history.clear();
    }

    /// Drops cached outputs but keeps reuse-rate statistics.
    ///
    /// During *training*, cached outputs were computed with earlier weights;
    /// as the weights drift the stored values go stale and poison gradients.
    /// The reuse layer calls this periodically (every few batches) so reuse
    /// stays bounded-staleness. Inference never needs it — weights are
    /// frozen, so Algorithm 1's unbounded reuse is exact there.
    pub fn invalidate_outputs(&mut self) {
        self.map.clear();
        self.outputs.clear();
    }

    /// Approximate heap footprint in bytes (for memory reporting).
    pub fn memory_bytes(&self) -> usize {
        self.outputs.len() * std::mem::size_of::<f32>()
            + self.map.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = ReuseCache::new(3);
        assert!(c.probe(42).is_none());
        c.insert(42, &[1.0, 2.0, 3.0]);
        assert_eq!(c.probe(42).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_is_first_write_wins() {
        let mut c = ReuseCache::new(2);
        c.insert(7, &[1.0, 1.0]);
        c.insert(7, &[9.0, 9.0]);
        assert_eq!(c.probe(7).unwrap(), &[1.0, 1.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn batch_rates_are_recorded() {
        let mut c = ReuseCache::new(1);
        // Batch 1: two misses, both inserted.
        c.begin_batch();
        for sig in [1u64, 2] {
            if c.probe(sig).is_none() {
                c.insert(sig, &[0.0]);
            }
        }
        // Batch 2: both hit.
        c.begin_batch();
        for sig in [1u64, 2] {
            assert!(c.probe(sig).is_some());
        }
        c.begin_batch();
        assert_eq!(c.history(), &[0.0, 1.0]);
        assert!((c.mean_reuse_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reuse_rate_grows_over_repeating_stream() {
        // Mirrors the paper's observation that R approaches ~0.98 after a
        // few batches when batches share content (§VI-B1).
        let mut c = ReuseCache::new(1);
        for batch in 0..10 {
            c.begin_batch();
            for item in 0..100u64 {
                let sig = item % 50; // heavy cross-batch repetition
                if c.probe(sig).is_none() {
                    c.insert(sig, &[batch as f32]);
                }
            }
        }
        c.begin_batch();
        let hist = c.history();
        assert!(hist[0] < 0.6, "first batch mostly misses: {}", hist[0]);
        assert_eq!(hist[9], 1.0, "later batches fully reuse");
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = ReuseCache::new(1);
        c.insert(5, &[1.0]);
        c.begin_batch();
        c.probe(5);
        c.clear();
        assert!(c.is_empty());
        assert!(c.history().is_empty());
        assert!(c.probe(5).is_none());
    }

    #[test]
    fn memory_accounting_grows_with_inserts() {
        let mut c = ReuseCache::new(4);
        let before = c.memory_bytes();
        c.insert(1, &[0.0; 4]);
        assert!(c.memory_bytes() > before);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_insert_panics() {
        ReuseCache::new(2).insert(1, &[1.0]);
    }
}
