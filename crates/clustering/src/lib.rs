//! Online clustering substrate for deep reuse.
//!
//! Three pieces, mirroring §III of the paper:
//!
//! * [`lsh`] — random-hyperplane locality-sensitive hashing (Eq. 4). Each
//!   neuron vector is mapped to an `H`-bit signature; equal signatures form
//!   a cluster. This is the *online* method used during training.
//! * [`kmeans`] — k-means++ clustering, used (as in the paper, §VI-A) only
//!   to *verify* that neuron-vector similarity exists: it is slower but
//!   produces higher-quality clusters, exposing the full reuse potential.
//! * [`reuse_cache`] — the across-batch cluster-reuse table of Algorithm 1:
//!   signatures seen in earlier batches keep their computed outputs, and new
//!   batches reuse them, with the per-batch reuse rate `R` tracked.
//!
//! [`assign::ClusterTable`] is the common output format: a row→cluster
//! assignment plus per-cluster sizes, from which centroid matrices and the
//! paper's *remaining ratio* `r_c = |C|/N` are derived.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod assign;
pub mod hasher;
pub mod kmeans;
pub mod lsh;
pub mod normalize;
pub mod reuse_cache;

pub use assign::ClusterTable;
pub use lsh::LshTable;
pub use reuse_cache::ReuseCache;
