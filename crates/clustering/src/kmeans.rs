//! k-means++ clustering.
//!
//! Used exactly the way the paper uses it (§VI-A): as a slow, high-quality
//! clustering that verifies neuron-vector similarity exists and exposes the
//! full reuse potential (the r_c–accuracy curves of Fig. 7). The production
//! path uses [`crate::lsh`] instead.

use adr_tensor::rng::AdrRng;
use adr_tensor::Matrix;

use crate::assign::ClusterTable;

/// Configuration for a k-means run.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters `k` requested. The effective number may be lower
    /// if the data has fewer distinct rows.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Relative centroid-movement threshold below which iteration stops.
    pub tolerance: f32,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 8, max_iters: 25, tolerance: 1e-4 }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Row→cluster table (dense, no empty clusters).
    pub table: ClusterTable,
    /// Final `|C| × L` centroids.
    pub centroids: Matrix,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means++ on the rows of `data`.
///
/// Empty clusters that appear during Lloyd iterations are dropped, so the
/// result always satisfies the [`ClusterTable`] invariants.
///
/// # Panics
/// Panics if `data` has no rows or `config.k == 0`.
#[allow(clippy::needless_range_loop)]
// rows index `data`, `d2` and `assignments` in parallel
// Cluster ids are u32 by design; k and row counts stay far below 2^32.
#[allow(clippy::cast_possible_truncation)]
pub fn kmeans(data: &Matrix, config: &KMeansConfig, rng: &mut AdrRng) -> KMeansResult {
    let n = data.rows();
    assert!(n > 0, "kmeans on empty data");
    assert!(config.k > 0, "kmeans with k == 0");
    let k = config.k.min(n);
    let l = data.cols();

    // k-means++ seeding: first centre uniform, then proportional to D².
    let mut centres: Vec<Vec<f32>> = Vec::with_capacity(k);
    centres.push(data.row(rng.below(n)).to_vec());
    let mut d2: Vec<f32> = (0..n).map(|r| sq_dist(data.row(r), &centres[0])).collect();
    while centres.len() < k {
        let total: f32 = d2.iter().sum();
        let idx = if total <= 0.0 {
            // All points coincide with existing centres; further centres
            // would be duplicates — stop early.
            break;
        } else {
            let mut target = rng.uniform() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let new_centre = data.row(idx).to_vec();
        for r in 0..n {
            let d = sq_dist(data.row(r), &new_centre);
            if d < d2[r] {
                d2[r] = d;
            }
        }
        centres.push(new_centre);
    }

    let mut assignments = vec![0u32; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for r in 0..n {
            let row = data.row(r);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centre) in centres.iter().enumerate() {
                let d = sq_dist(row, centre);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[r] != best as u32 {
                assignments[r] = best as u32;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; l]; centres.len()];
        let mut counts = vec![0usize; centres.len()];
        for r in 0..n {
            let c = assignments[r] as usize;
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(data.row(r)) {
                *s += v;
            }
        }
        let mut movement = 0.0f32;
        for (c, centre) in centres.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue; // empty cluster handled after the loop
            }
            let inv = 1.0 / counts[c] as f32;
            let mut moved = 0.0;
            for (cv, s) in centre.iter_mut().zip(sums[c].iter()) {
                let new = s * inv;
                moved += (new - *cv) * (new - *cv);
                *cv = new;
            }
            movement = movement.max(moved.sqrt());
        }
        if !changed || movement < config.tolerance {
            break;
        }
    }

    // Densify: drop empty clusters (possible after Lloyd updates).
    let table = ClusterTable::from_sparse_ids(&assignments);
    let centroids = table.centroids(data);
    KMeansResult { table, centroids, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs far apart.
    fn two_blobs(rng: &mut AdrRng) -> Matrix {
        Matrix::from_fn(40, 3, |r, _| {
            let centre = if r < 20 { -10.0 } else { 10.0 };
            centre + rng.gauss() * 0.1
        })
    }

    #[test]
    fn separable_blobs_are_found() {
        let mut rng = AdrRng::seeded(1);
        let data = two_blobs(&mut rng);
        let res = kmeans(&data, &KMeansConfig { k: 2, ..Default::default() }, &mut rng);
        assert_eq!(res.table.num_clusters(), 2);
        // All first-half rows share a cluster; all second-half rows the other.
        let c0 = res.table.cluster_of(0);
        for r in 0..20 {
            assert_eq!(res.table.cluster_of(r), c0);
        }
        let c1 = res.table.cluster_of(20);
        assert_ne!(c0, c1);
        for r in 20..40 {
            assert_eq!(res.table.cluster_of(r), c1);
        }
    }

    #[test]
    fn centroids_land_on_blob_centres() {
        let mut rng = AdrRng::seeded(2);
        let data = two_blobs(&mut rng);
        let res = kmeans(&data, &KMeansConfig { k: 2, ..Default::default() }, &mut rng);
        let mut centres: Vec<f32> = (0..2).map(|c| res.centroids.row(c)[0]).collect();
        centres.sort_by(f32::total_cmp);
        assert!((centres[0] + 10.0).abs() < 0.5);
        assert!((centres[1] - 10.0).abs() < 0.5);
    }

    #[test]
    fn k_larger_than_rows_is_clamped() {
        let mut rng = AdrRng::seeded(3);
        let data = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let res = kmeans(&data, &KMeansConfig { k: 10, ..Default::default() }, &mut rng);
        assert!(res.table.num_clusters() <= 3);
        res.table.validate().unwrap();
    }

    #[test]
    fn duplicate_rows_collapse() {
        let mut rng = AdrRng::seeded(4);
        let data = Matrix::filled(20, 4, 1.5);
        let res = kmeans(&data, &KMeansConfig { k: 5, ..Default::default() }, &mut rng);
        assert_eq!(res.table.num_clusters(), 1);
        assert!((res.table.remaining_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn result_is_deterministic_per_seed() {
        let data = {
            let mut rng = AdrRng::seeded(5);
            Matrix::from_fn(30, 4, |_, _| rng.gauss())
        };
        let cfg = KMeansConfig { k: 4, ..Default::default() };
        let a = kmeans(&data, &cfg, &mut AdrRng::seeded(7));
        let b = kmeans(&data, &cfg, &mut AdrRng::seeded(7));
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn more_clusters_reduce_quantisation_error() {
        let mut rng = AdrRng::seeded(6);
        let data = Matrix::from_fn(100, 2, |_, _| rng.gauss());
        let err = |k: usize, rng: &mut AdrRng| {
            let res = kmeans(&data, &KMeansConfig { k, max_iters: 40, ..Default::default() }, rng);
            let mut e = 0.0f32;
            for r in 0..data.rows() {
                let c = res.table.cluster_of(r) as usize;
                e += sq_dist(data.row(r), res.centroids.row(c));
            }
            e
        };
        let e2 = err(2, &mut rng);
        let e16 = err(16, &mut rng);
        assert!(e16 < e2, "e16 {e16} vs e2 {e2}");
    }
}
