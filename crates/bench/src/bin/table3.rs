//! Regenerates Table III: CifarNet inference accuracy with cluster reuse
//! off (CR = 0) vs on (CR = 1) for the per-layer optimal {L, H}.

use adr_bench::experiments::table3;
use adr_bench::harness::{print_table, write_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Table III — accuracy with and without cluster reuse\n");
    let rows = table3(quick);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.layer.to_string(),
                r.l.to_string(),
                r.h.to_string(),
                format!("{:.3}", r.acc_cr0),
                format!("{:.3}", r.acc_cr1),
                format!("{:.3}", r.reuse_rate),
            ]
        })
        .collect();
    print_table(&["layer", "L", "H", "acc CR=0", "acc CR=1", "reuse rate R"], &table);
    let csv_path = "results/table3.csv".to_string();
    match write_csv(&csv_path, &["layer", "L", "H", "acc CR=0", "acc CR=1", "reuse rate R"], &table)
    {
        Ok(()) => println!("\n(rows also written to {csv_path})"),
        Err(e) => eprintln!("warning: could not write {csv_path}: {e}"),
    }
    println!("\nExpected shape (paper): CR=1 trades a small accuracy drop for a high");
    println!("reuse rate that removes most centroid computations in later batches.");
}
