use adr_bench::harness::{synth_for, DatasetSource};
use adr_core::trainer::BatchSource;
use adr_models::{cifarnet, ConvMode};
use adr_nn::{LrSchedule, Sgd};
use adr_reuse::ReuseConfig;
use adr_tensor::rng::AdrRng;
use std::time::Instant;

fn main() {
    let mut rng = AdrRng::seeded(42);
    let dataset = synth_for((16, 16, 3), 96, 10, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 16);
    for (label, mode) in [
        ("dense", ConvMode::Dense),
        ("reuse(5,13)", ConvMode::Reuse(ReuseConfig::new(5, 13, false))),
        ("reuse(10,10)", ConvMode::Reuse(ReuseConfig::new(10, 10, false))),
        ("reuse(20,8)", ConvMode::Reuse(ReuseConfig::new(20, 8, false))),
        ("reuse(40,6)", ConvMode::Reuse(ReuseConfig::new(40, 6, false))),
    ] {
        let mut r = AdrRng::seeded(9);
        let mut net = cifarnet::bench_scale(10, mode, &mut r);
        let mut sgd = Sgd::new(LrSchedule::Constant(0.001), 0.9, 0.0);
        let (x, y) = source.batch(0);
        // warm up
        for _ in 0..3 {
            net.train_batch(&x, &y, &mut sgd);
        }
        net.reset_flops();
        let t = Instant::now();
        let reps = 15;
        for _ in 0..reps {
            net.train_batch(&x, &y, &mut sgd);
        }
        let el = t.elapsed() / reps;
        let f = net.flops();
        let b = net.baseline_flops();
        println!(
            "{label:<14} step {el:?} fwd_flops {:.2}x bwd_flops {:.2}x",
            f.forward as f64 / b.forward.max(1) as f64,
            f.backward as f64 / b.backward.max(1) as f64
        );
    }
    // forward-only timing
    for (label, mode) in [
        ("dense", ConvMode::Dense),
        ("reuse(5,13)", ConvMode::Reuse(ReuseConfig::new(5, 13, false))),
    ] {
        let mut r = AdrRng::seeded(9);
        let mut net = cifarnet::bench_scale(10, mode, &mut r);
        let (x, _) = source.batch(0);
        for _ in 0..3 {
            net.forward(&x, adr_nn::Mode::Eval);
        }
        let t = Instant::now();
        for _ in 0..15 {
            net.forward(&x, adr_nn::Mode::Eval);
        }
        println!("{label:<14} forward-only {:?}", t.elapsed() / 15);
    }
}
