//! Diagnostic: how faithful are deep-reuse gradients to the dense ones?
//!
//! Builds weight-sharing dense/reuse twins of CifarNet, runs one training
//! forward/backward on the same batch, and reports the cosine similarity
//! and norm ratio of the conv weight gradients plus the logit agreement —
//! the quantitative backdrop for the iteration-inflation discussion in
//! EXPERIMENTS.md.

use adr_bench::harness::{swap_in_reuse, synth_for, DatasetSource};
use adr_core::trainer::BatchSource;
use adr_models::{cifarnet, ConvMode};
use adr_nn::conv::Conv2d;
use adr_nn::softmax::softmax_cross_entropy;
use adr_nn::{Layer as _, Mode};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::rng::AdrRng;

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    dot / (na * nb + 1e-12)
}

fn norm(a: &[f32]) -> f32 {
    a.iter().map(|v| v * v).sum::<f32>().sqrt()
}

fn main() {
    let mut rng = AdrRng::seeded(42);
    let dataset = synth_for((16, 16, 3), 96, 10, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 16);
    println!("gradient fidelity of deep reuse vs dense (CifarNet, one batch)\n");
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "config", "layer", "grad cos", "|reuse|/|dense|", "", "logit cos"
    );
    for (l, h) in [(1600usize, 15usize), (40, 6), (10, 10), (5, 13), (5, 15)] {
        // Weight-sharing twins: build dense, then swap reuse wrappers in.
        let mut dense_net = {
            let mut r = AdrRng::seeded(9);
            cifarnet::bench_scale(10, ConvMode::Dense, &mut r)
        };
        let mut reuse_net = {
            let mut r = AdrRng::seeded(9);
            cifarnet::bench_scale(10, ConvMode::Dense, &mut r)
        };
        swap_in_reuse(&mut reuse_net, 0, ReuseConfig::new(l, h, false), &mut rng);
        swap_in_reuse(&mut reuse_net, 3, ReuseConfig::new(l, h, false), &mut rng);

        let (x, labels) = source.batch(0);
        let logits_d = dense_net.forward(&x, Mode::Train);
        let out_d = softmax_cross_entropy(&logits_d, &labels);
        dense_net.backward(&out_d.grad);
        let logits_r = reuse_net.forward(&x, Mode::Train);
        let out_r = softmax_cross_entropy(&logits_r, &labels);
        reuse_net.backward(&out_r.grad);
        let logit_cos = cosine(logits_d.as_slice(), logits_r.as_slice());

        for (idx, name) in [(0usize, "conv1"), (3, "conv2")] {
            let gd = {
                let any =
                    dense_net.layers_mut()[idx].as_any_mut().expect("conv layer is downcastable");
                any.downcast_mut::<Conv2d>().expect("layer is a Conv2d").params_mut()[0]
                    .grad
                    .to_vec()
            };
            let gr = {
                let any =
                    reuse_net.layers_mut()[idx].as_any_mut().expect("conv layer is downcastable");
                any.downcast_mut::<ReuseConv2d>().expect("layer is a ReuseConv2d").params_mut()[0]
                    .grad
                    .to_vec()
            };
            println!(
                "L={l:<5} H={h:<2} {name:>6} {:>10.4} {:>10.3} {:>10} {:>10.4}",
                cosine(&gd, &gr),
                norm(&gr) / norm(&gd),
                "",
                logit_cos
            );
        }
    }
    println!("\nInterpretation: cosines near 1 mean reuse gradients point the same way");
    println!("as dense gradients; attenuation (<1 norm ratio) and misalignment explain");
    println!("why reuse training needs extra iterations (paper §VI-B2).");
}
