//! Regenerates the §VI-B1 observation: with cluster reuse on, the per-batch
//! reuse rate R climbs towards ~1 within a couple dozen batches.

use adr_bench::experiments::reuse_rate_growth;
use adr_bench::harness::{print_table, write_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Reuse-rate growth over batches (CifarNet conv1, CR = 1)\n");
    let rows = reuse_rate_growth(quick);
    let table: Vec<Vec<String>> =
        rows.iter().map(|r| vec![r.batch.to_string(), format!("{:.3}", r.reuse_rate)]).collect();
    print_table(&["batch", "reuse rate R"], &table);
    let csv_path = "results/reuse_rate.csv".to_string();
    match write_csv(&csv_path, &["batch", "reuse rate R"], &table) {
        Ok(()) => println!("\n(rows also written to {csv_path})"),
        Err(e) => eprintln!("warning: could not write {csv_path}: {e}"),
    }
    println!("\nExpected shape (paper): R rises from 0 towards ~0.98 after ~20 batches.");
}
