//! Regenerates Table IV (+ §VI-B2 iteration counts): end-to-end training
//! comparison of the dense baseline and strategies 1–3 on all three
//! networks. Reports wall time, FLOP savings and iterations-to-target.

use adr_bench::experiments::table4;
use adr_bench::harness::{print_table, write_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Table IV — training-time savings of the three strategies\n");
    let rows = table4(quick);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.to_string(),
                r.strategy.clone(),
                r.iterations.to_string(),
                r.iterations_to_target.map_or_else(|| "-".into(), |i| i.to_string()),
                format!("{:.3}", r.final_accuracy),
                format!("{:.1}%", r.flop_savings * 100.0),
                format!("{:.2}", r.wall_time_s),
                format!("{:.1}%", r.time_savings * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "network",
            "strategy",
            "iters",
            "iters-to-target",
            "final acc",
            "flop savings",
            "wall time (s)",
            "time savings",
        ],
        &table,
    );
    let csv_path = "results/table4.csv".to_string();
    match write_csv(
        &csv_path,
        &[
            "network",
            "strategy",
            "iters",
            "iters-to-target",
            "final acc",
            "flop savings",
            "wall time (s)",
            "time savings",
        ],
        &table,
    ) {
        Ok(()) => println!("\n(rows also written to {csv_path})"),
        Err(e) => eprintln!("warning: could not write {csv_path}: {e}"),
    }
    println!("\nExpected shape (paper): strategy 2 (adaptive) saves the most, strategy 3");
    println!("sits between strategies 1 and 2; reuse runs may need somewhat more");
    println!("iterations to reach the same accuracy (28K vs 24K for CifarNet).");
}
