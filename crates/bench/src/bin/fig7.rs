//! Regenerates Fig. 7: r_c–accuracy of k-means clustering on CifarNet conv1
//! and AlexNet conv3, at single-input and single-batch scope.

use adr_bench::experiments::fig7;
use adr_bench::harness::{print_table, write_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Fig. 7 — k-means r_c vs accuracy (verification of neuron-vector similarity)\n");
    let rows = fig7(quick);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.to_string(),
                r.layer.to_string(),
                r.scope.to_string(),
                r.k.to_string(),
                format!("{:.4}", r.rc),
                format!("{:.3}", r.accuracy),
                format!("{:.3}", r.baseline_accuracy),
            ]
        })
        .collect();
    print_table(&["network", "layer", "scope", "k", "rc", "accuracy", "orig_accuracy"], &table);
    let csv_path = "results/fig7.csv".to_string();
    match write_csv(
        &csv_path,
        &["network", "layer", "scope", "k", "rc", "accuracy", "orig_accuracy"],
        &table,
    ) {
        Ok(()) => println!("\n(rows also written to {csv_path})"),
        Err(e) => eprintln!("warning: could not write {csv_path}: {e}"),
    }
    println!("\nExpected shape (paper): accuracy recovers the original with r_c well below 1;");
    println!("single-batch scope recovers it at smaller r_c than single-input scope.");
}
