//! Regenerates Fig. 8: r_c–accuracy of LSH clustering on conv2 of CifarNet,
//! AlexNet and VGG-19. Curves = sub-vector length L, dots = hash count H.

use adr_bench::experiments::fig8;
use adr_bench::harness::{print_table, write_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Fig. 8 — LSH r_c vs accuracy per sub-vector length (L) and hash count (H)\n");
    let rows = fig8(quick);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.to_string(),
                r.layer.to_string(),
                r.l.to_string(),
                r.h.to_string(),
                format!("{:.4}", r.rc),
                format!("{:.3}", r.accuracy),
                format!("{:.3}", r.baseline_accuracy),
            ]
        })
        .collect();
    print_table(&["network", "layer", "L", "H", "rc", "accuracy", "orig_accuracy"], &table);
    let csv_path = "results/fig8.csv".to_string();
    match write_csv(
        &csv_path,
        &["network", "layer", "L", "H", "rc", "accuracy", "orig_accuracy"],
        &table,
    ) {
        Ok(()) => println!("\n(rows also written to {csv_path})"),
        Err(e) => eprintln!("warning: could not write {csv_path}: {e}"),
    }
    println!("\nExpected shape (paper): at equal r_c, smaller L gives higher accuracy;");
    println!("for fixed L, more hashes H raise both accuracy and r_c.");
}
