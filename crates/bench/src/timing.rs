//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `benches/` targets use this
//! tiny criterion-style shim instead of an external harness: each benchmark
//! runs a warm-up pass, then `samples` timed iterations, and prints the
//! minimum / median / maximum per-iteration time. Results go to stdout as an
//! aligned table; no statistics beyond order stats are attempted — these
//! benches exist to rank configurations (e.g. the U-shaped granularity
//! curve), not to detect 1% regressions.

use std::hint::black_box;
use std::time::Instant;

/// A named group of related measurements, printed as one table.
pub struct BenchGroup {
    name: String,
    samples: usize,
    rows: Vec<(String, f64, f64, f64)>,
}

impl BenchGroup {
    /// Creates a group that times each benchmark `samples` times.
    ///
    /// # Panics
    /// Panics if `samples == 0`.
    pub fn new(name: &str, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        Self { name: name.to_string(), samples, rows: Vec::new() }
    }

    /// Times `f`, recording per-iteration wall time under `id`.
    ///
    /// The closure's result is passed through [`black_box`] so the optimiser
    /// cannot delete the measured work.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        black_box(f()); // warm-up: page in buffers, warm caches
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let min = times[0];
        let med = times[times.len() / 2];
        let max = times[times.len() - 1];
        println!("{}/{id}: min {min:.3} ms, median {med:.3} ms, max {max:.3} ms", self.name);
        self.rows.push((id.to_string(), min, med, max));
    }

    /// Prints the group summary table.
    pub fn finish(self) {
        println!("\n== {} ({} samples/bench) ==", self.name, self.samples);
        let width = self.rows.iter().map(|r| r.0.len()).max().unwrap_or(4).max(4);
        println!("{:<width$}  {:>10}  {:>10}  {:>10}", "id", "min ms", "median ms", "max ms");
        for (id, min, med, max) in &self.rows {
            println!("{id:<width$}  {min:>10.3}  {med:>10.3}  {max:>10.3}");
        }
    }
}
