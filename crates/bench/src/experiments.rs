//! The experiments of §VI, each returning structured rows.
//!
//! Every function takes a `quick` flag: `true` shrinks datasets/iteration
//! counts for use in tests, `false` runs the full bench-scale experiment
//! (what the `src/bin/*` binaries use).

use adr_core::report::TrainReport;
use adr_core::trainer::{Trainer, TrainerConfig};
use adr_core::Strategy;
use adr_models::ConvMode;
use adr_nn::{LrSchedule, Network, Sgd};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::rng::AdrRng;

use crate::harness::{
    evaluate_with_kmeans_conv, reuse_stats, set_reuse_config, swap_in_reuse, train_dense,
    DatasetSource, Scope,
};
pub use crate::harness::{synth_custom, synth_for};

// ---------------------------------------------------------------------------
// Fig. 7 — k-means verification of neuron-vector similarity
// ---------------------------------------------------------------------------

/// One point of the Fig. 7 r_c–accuracy curves.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Network name.
    pub network: &'static str,
    /// Convolutional layer the clustering is applied to.
    pub layer: &'static str,
    /// Clustering scope label.
    pub scope: &'static str,
    /// Requested cluster count `k`.
    pub k: usize,
    /// Achieved remaining ratio.
    pub rc: f64,
    /// Inference accuracy with clustered reuse on that layer.
    pub accuracy: f32,
    /// Accuracy of the unmodified network (the "original accuracy" line).
    pub baseline_accuracy: f32,
}

/// Regenerates Fig. 7: k-means clustering applied to the inference of a
/// trained CifarNet (conv1) and AlexNet (conv3), at single-input and
/// single-batch scope, sweeping the cluster count.
pub fn fig7(quick: bool) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    let ks: &[usize] = if quick { &[2, 16] } else { &[1, 2, 4, 8, 16, 32, 64, 128] };

    // CifarNet conv1 (layer index 0).
    {
        let mut rng = AdrRng::seeded(701);
        let classes = if quick { 4 } else { 10 };
        let dataset =
            synth_custom((16, 16, 3), if quick { 80 } else { 480 }, classes, 2, 0.5, &mut rng);
        let mut source = DatasetSource::new(dataset, 16, if quick { 32 } else { 48 });
        let mut net = adr_models::cifarnet::bench_scale(classes, ConvMode::Dense, &mut rng);
        train_dense(&mut net, &mut source, if quick { 40 } else { 400 }, 0.02);
        let (images, labels) = adr_core::trainer::BatchSource::probe(&mut source);
        let baseline = net.evaluate(&images, &labels).accuracy;
        for &scope in &[Scope::SingleInput, Scope::SingleBatch] {
            for &k in ks {
                let (acc, rc) =
                    evaluate_with_kmeans_conv(&mut net, 0, &images, &labels, k, scope, &mut rng);
                rows.push(Fig7Row {
                    network: "cifarnet",
                    layer: "conv1",
                    scope: scope.label(),
                    k,
                    rc,
                    accuracy: acc,
                    baseline_accuracy: baseline,
                });
            }
        }
    }

    // AlexNet conv3 (layer index 6).
    if !quick {
        let mut rng = AdrRng::seeded(702);
        let dataset = synth_custom((64, 64, 3), 240, 4, 2, 0.5, &mut rng);
        let mut source = DatasetSource::new(dataset, 8, 32);
        let mut net = adr_models::alexnet::bench_scale(4, ConvMode::Dense, &mut rng);
        train_dense(&mut net, &mut source, 400, 0.02);
        let (images, labels) = adr_core::trainer::BatchSource::probe(&mut source);
        let baseline = net.evaluate(&images, &labels).accuracy;
        for &scope in &[Scope::SingleInput, Scope::SingleBatch] {
            for &k in ks {
                let (acc, rc) =
                    evaluate_with_kmeans_conv(&mut net, 6, &images, &labels, k, scope, &mut rng);
                rows.push(Fig7Row {
                    network: "alexnet",
                    layer: "conv3",
                    scope: scope.label(),
                    k,
                    rc,
                    accuracy: acc,
                    baseline_accuracy: baseline,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 8 — LSH r_c–accuracy per {L, H}
// ---------------------------------------------------------------------------

/// One point of the Fig. 8 curves.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Network name.
    pub network: &'static str,
    /// Layer under reuse.
    pub layer: &'static str,
    /// Sub-vector length.
    pub l: usize,
    /// Hash count.
    pub h: usize,
    /// Measured remaining ratio.
    pub rc: f64,
    /// Inference accuracy.
    pub accuracy: f32,
    /// Unmodified network accuracy.
    pub baseline_accuracy: f32,
}

/// Descending sub-vector lengths for a layer: `K`, then `kw·{32,16,8,4,2,1}`.
fn l_sweep(k: usize, kw: usize, quick: bool) -> Vec<usize> {
    let mut ls = vec![k];
    let multipliers: &[usize] = if quick { &[4, 1] } else { &[32, 16, 8, 4, 2, 1] };
    for &m in multipliers {
        let l = kw * m;
        if l < k && !ls.contains(&l) {
            ls.push(l);
        }
    }
    ls
}

/// Regenerates Fig. 8: for conv2 of CifarNet, AlexNet and VGG-19, sweep the
/// sub-vector length (curves) and the number of hash functions (dots along
/// each curve), recording r_c and inference accuracy.
///
/// # Panics
/// Panics when a model builder produces geometry the forward pass rejects
/// (never for the shipped cases).
pub fn fig8(quick: bool) -> Vec<Fig8Row> {
    let hs: &[usize] = if quick { &[4, 10] } else { &[2, 4, 6, 8, 12, 16, 24, 32] };
    let mut rows = Vec::new();

    // (name, layer label, layer index, kw, build + train)
    struct Case {
        network: &'static str,
        layer: &'static str,
        layer_idx: usize,
        kernel_w: usize,
        net: Network,
        source: DatasetSource,
    }

    let mut cases = Vec::new();
    {
        let mut rng = AdrRng::seeded(801);
        let classes = if quick { 4 } else { 10 };
        let dataset =
            synth_custom((16, 16, 3), if quick { 80 } else { 480 }, classes, 2, 0.5, &mut rng);
        let mut source = DatasetSource::new(dataset, 16, if quick { 32 } else { 48 });
        let mut net = adr_models::cifarnet::bench_scale(classes, ConvMode::Dense, &mut rng);
        train_dense(&mut net, &mut source, if quick { 40 } else { 400 }, 0.02);
        cases.push(Case {
            network: "cifarnet",
            layer: "conv2",
            layer_idx: 3,
            kernel_w: 5,
            net,
            source,
        });
    }
    if !quick {
        let mut rng = AdrRng::seeded(802);
        let dataset = synth_custom((64, 64, 3), 240, 4, 2, 0.5, &mut rng);
        let mut source = DatasetSource::new(dataset, 8, 32);
        let mut net = adr_models::alexnet::bench_scale(4, ConvMode::Dense, &mut rng);
        train_dense(&mut net, &mut source, 400, 0.02);
        cases.push(Case {
            network: "alexnet",
            layer: "conv2",
            layer_idx: 3,
            kernel_w: 5,
            net,
            source,
        });
        let mut rng = AdrRng::seeded(803);
        let dataset = synth_custom((32, 32, 3), 240, 4, 2, 0.5, &mut rng);
        let mut source = DatasetSource::new(dataset, 8, 32);
        let mut net = adr_models::vgg19::bench_scale(4, ConvMode::Dense, &mut rng);
        train_dense(&mut net, &mut source, 500, 0.025);
        cases.push(Case {
            network: "vgg19",
            layer: "conv2_1",
            layer_idx: 5,
            kernel_w: 3,
            net,
            source,
        });
    }

    for case in &mut cases {
        let (images, labels) = adr_core::trainer::BatchSource::probe(&mut case.source);
        let baseline = case.net.evaluate(&images, &labels).accuracy;
        // Determine K by peeking at the dense layer.
        let k = case.net.layers()[case.layer_idx]
            .as_any()
            .and_then(|a| a.downcast_ref::<adr_nn::conv::Conv2d>())
            .expect("case points at a dense conv")
            .geom()
            .k();
        let mut rng = AdrRng::seeded(810);
        let mut first = true;
        for l in l_sweep(k, case.kernel_w, quick) {
            for &h in hs {
                let cfg = ReuseConfig::new(l, h, false);
                if first {
                    swap_in_reuse(&mut case.net, case.layer_idx, cfg, &mut rng);
                    first = false;
                } else {
                    set_reuse_config(&mut case.net, case.layer_idx, cfg);
                }
                let acc = case.net.evaluate(&images, &labels).accuracy;
                let stats = reuse_stats(&case.net, case.layer_idx);
                rows.push(Fig8Row {
                    network: case.network,
                    layer: case.layer,
                    l,
                    h,
                    rc: stats.avg_remaining_ratio,
                    accuracy: acc,
                    baseline_accuracy: baseline,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Table III — cluster reuse on/off
// ---------------------------------------------------------------------------

/// One row of Table III.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Layer under reuse.
    pub layer: &'static str,
    /// Sub-vector length.
    pub l: usize,
    /// Hash count.
    pub h: usize,
    /// Mean accuracy with `CR = 0`.
    pub acc_cr0: f32,
    /// Mean accuracy with `CR = 1`.
    pub acc_cr1: f32,
    /// Mean reuse rate over the CR = 1 stream.
    pub reuse_rate: f64,
}

/// Regenerates Table III: inference accuracy of CifarNet with cluster reuse
/// off vs on, for the paper's per-layer `{L, H}` choices (conv1: {5, 15},
/// conv2: {10, 10}).
pub fn table3(quick: bool) -> Vec<Table3Row> {
    let mut rng = AdrRng::seeded(301);
    let classes = if quick { 4 } else { 10 };
    let dataset =
        synth_custom((16, 16, 3), if quick { 96 } else { 480 }, classes, 2, 0.5, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut net = adr_models::cifarnet::bench_scale(classes, ConvMode::Dense, &mut rng);
    train_dense(&mut net, &mut source, if quick { 40 } else { 400 }, 0.02);

    let num_eval_batches = if quick { 4 } else { 12 };
    let cases: [(&'static str, usize, usize, usize); 2] =
        [("conv1", 0, 5, 15), ("conv2", 3, 10, 10)];
    let mut rows = Vec::new();
    for (layer, idx, l, h) in cases {
        let mut swapped = false;
        let acc_for = |net: &mut Network,
                       source: &mut DatasetSource,
                       cr: bool,
                       swapped: &mut bool,
                       rng: &mut AdrRng|
         -> (f32, f64) {
            let cfg = ReuseConfig::new(l, h, cr);
            if *swapped {
                set_reuse_config(net, idx, cfg);
            } else {
                swap_in_reuse(net, idx, cfg, rng);
                *swapped = true;
            }
            let mut total = 0.0;
            for b in 0..num_eval_batches {
                let (images, labels) = adr_core::trainer::BatchSource::batch(source, b);
                total += net.evaluate(&images, &labels).accuracy;
            }
            let rate = crate::harness::reuse_rate(net, idx);
            (total / num_eval_batches as f32, rate)
        };
        let (acc_cr0, _) = acc_for(&mut net, &mut source, false, &mut swapped, &mut rng);
        let (acc_cr1, rate) = acc_for(&mut net, &mut source, true, &mut swapped, &mut rng);
        rows.push(Table3Row { layer, l, h, acc_cr0, acc_cr1, reuse_rate: rate });
        // Restore a dense conv for the next case by rebuilding is
        // unnecessary: the next case touches a different layer, and this
        // layer keeps its (weight-preserving) reuse wrapper with CR = 1.
        // Reset it to CR = 0 so the second row isn't affected.
        set_reuse_config(&mut net, idx, ReuseConfig::new(l, h, false));
    }
    rows
}

// ---------------------------------------------------------------------------
// §VI-B1 — reuse-rate growth over batches
// ---------------------------------------------------------------------------

/// Reuse rate of one completed batch.
#[derive(Clone, Debug)]
pub struct ReuseRateRow {
    /// Batch index (0-based).
    pub batch: usize,
    /// Mean reuse rate `R` for that batch.
    pub reuse_rate: f64,
}

/// Regenerates the §VI-B1 observation that with cluster reuse the per-batch
/// reuse rate climbs towards ~1 after a couple of dozen batches.
///
/// # Panics
/// Panics when the probed layer is not a [`ReuseConv2d`] (never for the
/// network built here).
pub fn reuse_rate_growth(quick: bool) -> Vec<ReuseRateRow> {
    let mut rng = AdrRng::seeded(311);
    let classes = if quick { 4 } else { 10 };
    let dataset =
        synth_custom((16, 16, 3), if quick { 96 } else { 480 }, classes, 2, 0.5, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut net = adr_models::cifarnet::bench_scale(classes, ConvMode::Dense, &mut rng);
    train_dense(&mut net, &mut source, if quick { 30 } else { 300 }, 0.02);
    swap_in_reuse(&mut net, 0, ReuseConfig::new(5, 12, true), &mut rng);

    let num_batches = if quick { 6 } else { 24 };
    for b in 0..num_batches {
        let (images, labels) = adr_core::trainer::BatchSource::batch(&mut source, b % 8);
        net.evaluate(&images, &labels);
    }
    // One more forward finalises the last batch's rate into the history.
    let (images, labels) = adr_core::trainer::BatchSource::batch(&mut source, 0);
    net.evaluate(&images, &labels);

    let layer = net.layers()[0]
        .as_any()
        .and_then(|a| a.downcast_ref::<ReuseConv2d>())
        .expect("layer 0 is the reuse conv");
    layer
        .reuse_rate_history()
        .iter()
        .take(num_batches)
        .enumerate()
        .map(|(batch, &reuse_rate)| ReuseRateRow { batch, reuse_rate })
        .collect()
}

// ---------------------------------------------------------------------------
// Table IV — end-to-end training-time savings of the three strategies
// ---------------------------------------------------------------------------

/// One row of Table IV (plus the §VI-B2 iteration counts).
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Network name.
    pub network: &'static str,
    /// Strategy name.
    pub strategy: String,
    /// Iterations executed.
    pub iterations: usize,
    /// First iteration at which probe accuracy reached the (moderate)
    /// reference target — computed post-hoc from the accuracy history, so
    /// every run trains the full budget (the long-training regime the paper
    /// operates in).
    pub iterations_to_target: Option<usize>,
    /// Final probe accuracy.
    pub final_accuracy: f32,
    /// Fraction of dense multiply–adds avoided.
    pub flop_savings: f64,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
    /// `1 − t/t_baseline` for the same network (0 for the baseline row).
    pub time_savings: f64,
}

/// Per-network Table IV experiment configuration.
struct Table4Case {
    network: &'static str,
    input: (usize, usize, usize),
    build: fn(usize, ConvMode, &mut AdrRng) -> Network,
    batch_size: usize,
    max_iterations: usize,
    fixed_l: usize,
    fixed_h: usize,
    lr: f32,
    /// Task difficulty: classes, template smoothing, per-image variability.
    classes: usize,
    smoothing: usize,
    variability: f32,
}

/// Regenerates Table IV: trains each network with the dense baseline and
/// strategies 1–3, reporting wall time, FLOP savings and iteration counts.
pub fn table4(quick: bool) -> Vec<Table4Row> {
    let cases = [
        Table4Case {
            network: "cifarnet",
            input: (16, 16, 3),
            build: adr_models::cifarnet::bench_scale,
            batch_size: 16,
            max_iterations: if quick { 40 } else { 800 },
            fixed_l: 10,
            fixed_h: 10,
            lr: 0.015,
            classes: if quick { 4 } else { 10 },
            smoothing: 1,
            variability: 0.6,
        },
        Table4Case {
            network: "alexnet",
            input: (64, 64, 3),
            build: adr_models::alexnet::bench_scale,
            batch_size: 16,
            max_iterations: if quick { 15 } else { 500 },
            fixed_l: 9,
            fixed_h: 12,
            lr: 0.015,
            classes: 4,
            smoothing: 3,
            variability: 0.4,
        },
        Table4Case {
            network: "vgg19",
            input: (32, 32, 3),
            build: adr_models::vgg19::bench_scale,
            batch_size: 16,
            max_iterations: if quick { 15 } else { 500 },
            fixed_l: 9,
            fixed_h: 12,
            lr: 0.02,
            classes: 4,
            smoothing: 3,
            variability: 0.4,
        },
    ];
    let cases: &[Table4Case] = if quick { &cases[..1] } else { &cases[..] };

    let mut rows = Vec::new();
    for case in cases {
        let strategies = [
            (ConvMode::Dense, Strategy::baseline()),
            (
                ConvMode::Reuse(ReuseConfig::new(case.fixed_l, case.fixed_h, false)),
                Strategy::fixed(case.fixed_l, case.fixed_h),
            ),
            (ConvMode::reuse_default(), Strategy::adaptive()),
            (
                ConvMode::Reuse(ReuseConfig::new(case.fixed_l, case.fixed_h, true)),
                Strategy::cluster_reuse(case.fixed_l, case.fixed_h),
            ),
        ];
        let mut baseline_time = None;
        // The reference target is set from the baseline run's achieved
        // accuracy so "iterations to target" is meaningful for every
        // strategy (the paper trains everything to the same accuracy).
        let mut reference_target = 0.5f32;
        for (mode, strategy) in strategies {
            let report = run_one(case, mode, strategy, quick);
            let time_savings =
                baseline_time.map(|t| 1.0 - report.wall_time.as_secs_f64() / t).unwrap_or(0.0);
            if baseline_time.is_none() {
                baseline_time = Some(report.wall_time.as_secs_f64());
                reference_target = (report.final_accuracy * 0.8).max(0.3);
            }
            let iterations_to_target = report
                .accuracy_history
                .iter()
                .find(|(_, acc)| *acc >= reference_target)
                .map(|(iter, _)| *iter + 1);
            rows.push(Table4Row {
                network: case.network,
                strategy: report.strategy.clone(),
                iterations: report.iterations_run,
                iterations_to_target,
                final_accuracy: report.final_accuracy,
                flop_savings: report.flop_savings(),
                wall_time_s: report.wall_time.as_secs_f64(),
                time_savings,
            });
        }
    }
    rows
}

fn run_one(case: &Table4Case, mode: ConvMode, strategy: Strategy, quick: bool) -> TrainReport {
    // Same seed per network: identical data and (per-topology) identical
    // weight initialisation across strategies.
    let mut rng = AdrRng::seeded(4000 + case.network.len() as u64);
    let classes = if quick { 4 } else { case.classes };
    // Task difficulty is tuned per network so the dense baseline needs
    // hundreds of iterations — the paper's long-training regime, where
    // per-step savings dominate (CifarNet trains for 24K+ iterations there).
    let dataset = synth_custom(
        case.input,
        if quick { 80 } else { 480 },
        classes,
        case.smoothing,
        case.variability,
        &mut rng,
    );
    let mut source = DatasetSource::new(dataset, case.batch_size, 32);
    let mut net = (case.build)(classes, mode, &mut rng);
    let trainer = Trainer::new(TrainerConfig {
        max_iterations: case.max_iterations,
        target_accuracy: None, // full budget; targets computed post-hoc
        eval_every: 10,
        plateau_patience: 10,
        plateau_min_delta: 0.01,
        plateau_warmup: 25,
        max_h_values: 5,
        history_samples: 128,
    });
    let mut sgd = Sgd::new(LrSchedule::InverseTime { base: case.lr, rate: 0.005 }, 0.9, 0.0)
        .with_clip_norm(5.0);
    trainer
        .train(&mut net, strategy, &mut source, &mut sgd)
        .expect("bench networks always match their strategy")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_quick_produces_both_scopes() {
        let rows = fig7(true);
        assert!(rows.iter().any(|r| r.scope == "single-input"));
        assert!(rows.iter().any(|r| r.scope == "single-batch"));
        for r in &rows {
            assert!(r.rc > 0.0 && r.rc <= 1.0, "rc {}", r.rc);
            assert!((0.0..=1.0).contains(&r.accuracy));
        }
    }

    #[test]
    fn fig7_quick_accuracy_improves_with_more_clusters() {
        let rows = fig7(true);
        // Within the single-batch scope, accuracy at the largest k should be
        // at least that at the smallest k (weak monotonicity in expectation).
        let batch_rows: Vec<_> = rows.iter().filter(|r| r.scope == "single-batch").collect();
        let lo = batch_rows.iter().find(|r| r.k == 2).unwrap();
        let hi = batch_rows.iter().find(|r| r.k == 16).unwrap();
        assert!(hi.accuracy >= lo.accuracy - 0.15, "hi {} lo {}", hi.accuracy, lo.accuracy);
        assert!(hi.rc >= lo.rc);
    }

    #[test]
    fn fig8_quick_rc_grows_with_h() {
        let rows = fig8(true);
        assert!(!rows.is_empty());
        // Group by L; within a curve, larger H must give larger (or equal) rc.
        let l_of_first = rows[0].l;
        let curve: Vec<_> = rows.iter().filter(|r| r.l == l_of_first).collect();
        assert!(curve.len() >= 2);
        assert!(curve.last().unwrap().rc >= curve.first().unwrap().rc, "rc must grow with H");
    }

    #[test]
    fn table3_quick_has_two_rows_with_sane_values() {
        let rows = table3(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.acc_cr0));
            assert!((0.0..=1.0).contains(&r.acc_cr1));
            assert!(r.reuse_rate >= 0.0 && r.reuse_rate <= 1.0);
        }
        assert_eq!(rows[0].layer, "conv1");
        assert_eq!(rows[1].layer, "conv2");
    }

    #[test]
    fn reuse_rate_quick_grows() {
        let rows = reuse_rate_growth(true);
        assert!(rows.len() >= 4);
        let first = rows.first().unwrap().reuse_rate;
        let last = rows.last().unwrap().reuse_rate;
        assert!(last > first, "reuse rate should grow: {first} -> {last}");
        assert!(last > 0.5, "late batches should mostly reuse, got {last}");
    }

    #[test]
    fn table4_quick_runs_all_strategies_on_cifarnet() {
        let rows = table4(true);
        assert_eq!(rows.len(), 4);
        let names: Vec<_> = rows.iter().map(|r| r.strategy.as_str()).collect();
        assert!(names.contains(&"baseline"));
        assert!(names.contains(&"strategy2-adaptive"));
        // Reuse strategies must save FLOPs against the dense baseline.
        for r in rows.iter().filter(|r| r.strategy != "baseline") {
            assert!(r.flop_savings > 0.0, "{} saved {}", r.strategy, r.flop_savings);
        }
    }
}
