//! Shared experiment plumbing.

use adr_clustering::kmeans::{kmeans, KMeansConfig};
use adr_core::trainer::BatchSource;
use adr_nn::conv::Conv2d;
use adr_nn::softmax::softmax_cross_entropy;
use adr_nn::{Mode, Network, Sgd};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::im2col;
use adr_tensor::matrix::Matrix;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

use adr_data::synth::SynthDataset;

/// Builds a synthetic dataset matching a network's input shape, with
/// explicit smoothness/variability (the two knobs that set the task
/// difficulty and the neuron-vector redundancy level).
pub fn synth_custom(
    (h, w, c): (usize, usize, usize),
    num_images: usize,
    num_classes: usize,
    smoothing_passes: usize,
    image_variability: f32,
    rng: &mut AdrRng,
) -> SynthDataset {
    let cfg = adr_data::synth::SynthConfig {
        num_images,
        num_classes,
        height: h,
        width: w,
        channels: c,
        smoothing_passes,
        noise_std: 0.08,
        max_shift: (h / 10).max(1),
        image_variability,
    };
    SynthDataset::generate(&cfg, rng)
}

/// [`synth_custom`] with the default inference-experiment difficulty.
pub fn synth_for(
    shape: (usize, usize, usize),
    num_images: usize,
    num_classes: usize,
    rng: &mut AdrRng,
) -> SynthDataset {
    synth_custom(shape, num_images, num_classes, 2, 0.45, rng)
}

/// A [`BatchSource`] over a synthetic dataset: the head of the dataset is
/// the cyclic training stream, the tail is the held-out probe batch.
pub struct DatasetSource {
    dataset: SynthDataset,
    batch_size: usize,
    train_len: usize,
    probe: (Tensor4, Vec<usize>),
}

impl DatasetSource {
    /// Splits off the last `probe_size` images as the probe batch.
    ///
    /// # Panics
    /// Panics unless `probe_size >= 1` and at least one full training batch
    /// remains.
    pub fn new(dataset: SynthDataset, batch_size: usize, probe_size: usize) -> Self {
        assert!(probe_size >= 1, "probe must be non-empty");
        let train_len = dataset.len().checked_sub(probe_size).expect("dataset too small");
        assert!(train_len >= batch_size, "not enough images for one training batch");
        let probe_indices: Vec<usize> = (train_len..dataset.len()).collect();
        let probe = dataset.gather(&probe_indices);
        Self { dataset, batch_size, train_len, probe }
    }

    /// The training batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Borrow the underlying dataset.
    pub fn dataset(&self) -> &SynthDataset {
        &self.dataset
    }
}

impl BatchSource for DatasetSource {
    fn num_batches(&self) -> usize {
        (self.train_len / self.batch_size).max(1)
    }

    fn batch(&mut self, index: usize) -> (Tensor4, Vec<usize>) {
        let start = (index * self.batch_size) % self.train_len;
        let indices: Vec<usize> =
            (0..self.batch_size).map(|i| (start + i) % self.train_len).collect();
        self.dataset.gather(&indices)
    }

    fn probe(&mut self) -> (Tensor4, Vec<usize>) {
        self.probe.clone()
    }
}

/// Trains a dense network for `iterations` SGD steps over the source's
/// training stream — the "trained model" every inference experiment starts
/// from (§VI-A trains normally, then applies reuse to inference only).
pub fn train_dense(net: &mut Network, source: &mut DatasetSource, iterations: usize, lr: f32) {
    let mut sgd = Sgd::new(adr_nn::LrSchedule::InverseTime { base: lr, rate: 0.005 }, 0.9, 0.0)
        .with_clip_norm(5.0);
    for iter in 0..iterations {
        let (images, labels) = source.batch(iter % source.num_batches());
        net.train_batch(&images, &labels, &mut sgd);
    }
}

/// Mean probe-style accuracy over `num_batches` batches of the training
/// stream (used when one probe batch is too noisy).
pub fn mean_accuracy(net: &mut Network, source: &mut DatasetSource, num_batches: usize) -> f32 {
    let mut total = 0.0;
    for i in 0..num_batches {
        let (images, labels) = source.batch(i);
        total += net.evaluate(&images, &labels).accuracy;
    }
    total / num_batches as f32
}

/// Clustering scope for the k-means verification (§III-B "Cluster Scope").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Cluster each image's rows separately.
    SingleInput,
    /// Cluster all rows of the batch together.
    SingleBatch,
}

impl Scope {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Scope::SingleInput => "single-input",
            Scope::SingleBatch => "single-batch",
        }
    }
}

/// Runs one convolution with *k-means* clustered reuse (the Fig. 7
/// verification path): unfold, cluster rows into `k` clusters at the given
/// scope, compute centroid outputs, scatter to members. Returns the output
/// tensor and the achieved remaining ratio `r_c`.
///
/// # Panics
/// Panics when `input` is incompatible with the convolution's geometry.
pub fn kmeans_conv_forward(
    conv: &Conv2d,
    input: &Tensor4,
    k: usize,
    scope: Scope,
    rng: &mut AdrRng,
) -> (Tensor4, f64) {
    let geom = conv.geom();
    let unfolded = im2col(input, geom);
    let n = unfolded.rows();
    let m = conv.out_channels();
    let mut output = Matrix::zeros(n, m);
    let cfg = KMeansConfig { k, max_iters: 15, tolerance: 1e-3 };
    let mut total_clusters = 0usize;
    match scope {
        Scope::SingleBatch => {
            let result = kmeans(&unfolded, &cfg, rng);
            let y_c = result.centroids.matmul(conv.weight());
            result.table.scatter_add(&y_c, &mut output);
            total_clusters = result.table.num_clusters();
        }
        Scope::SingleInput => {
            let per = geom.rows_per_image();
            for b in 0..input.batch() {
                let block = sub_rows(&unfolded, b * per, (b + 1) * per);
                let result = kmeans(&block, &cfg, rng);
                let y_c = result.centroids.matmul(conv.weight());
                let mut block_out = Matrix::zeros(per, m);
                result.table.scatter_add(&y_c, &mut block_out);
                output.set_row_slice(b * per, &block_out);
                total_clusters += result.table.num_clusters();
            }
        }
    }
    output.add_row_bias(conv.bias());
    let rc = total_clusters as f64 / n as f64;
    let out = Tensor4::from_vec(input.batch(), geom.out_h(), geom.out_w(), m, output.into_vec())
        .expect("shape arithmetic is consistent");
    (out, rc)
}

fn sub_rows(m: &Matrix, start: usize, end: usize) -> Matrix {
    m.row_slice(start, end)
}

/// Evaluates the network on `(images, labels)` with layer `layer_idx`
/// replaced by a k-means clustered forward. Returns `(accuracy, r_c)`.
///
/// # Panics
/// Panics if `layer_idx` is not a dense [`Conv2d`].
pub fn evaluate_with_kmeans_conv(
    net: &mut Network,
    layer_idx: usize,
    images: &Tensor4,
    labels: &[usize],
    k: usize,
    scope: Scope,
    rng: &mut AdrRng,
) -> (f32, f64) {
    let mut x = images.clone();
    let mut rc = 1.0f64;
    for i in 0..net.len() {
        if i == layer_idx {
            let layer = &net.layers()[i];
            let conv = layer
                .as_any()
                .and_then(|a| a.downcast_ref::<Conv2d>())
                .expect("layer_idx must point at a dense Conv2d");
            let (y, got_rc) = kmeans_conv_forward(conv, &x, k, scope, rng);
            rc = got_rc;
            x = y;
        } else {
            x = net.layers_mut()[i].forward(&x, Mode::Eval);
        }
    }
    let out = softmax_cross_entropy(&x, labels);
    let hits = out.predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    (hits as f32 / labels.len() as f32, rc)
}

/// Replaces the dense convolution at `layer_idx` with a [`ReuseConv2d`]
/// carrying the same weights and the given config.
///
/// # Panics
/// Panics if the layer is not a dense [`Conv2d`].
pub fn swap_in_reuse(net: &mut Network, layer_idx: usize, config: ReuseConfig, rng: &mut AdrRng) {
    let conv = net.layers()[layer_idx]
        .as_any()
        .and_then(|a| a.downcast_ref::<Conv2d>())
        .expect("layer_idx must point at a dense Conv2d");
    let reuse = ReuseConv2d::from_dense(conv, config, rng);
    net.layers_mut()[layer_idx] = Box::new(reuse);
}

/// Retunes the [`ReuseConv2d`] at `layer_idx`.
///
/// # Panics
/// Panics if the layer is not a [`ReuseConv2d`].
pub fn set_reuse_config(net: &mut Network, layer_idx: usize, config: ReuseConfig) {
    let layer = &mut net.layers_mut()[layer_idx];
    let reuse = layer
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<ReuseConv2d>())
        .expect("layer_idx must point at a ReuseConv2d");
    reuse.set_config(config);
}

/// Reads the reuse stats of the [`ReuseConv2d`] at `layer_idx`.
///
/// # Panics
/// Panics if the layer is not a [`ReuseConv2d`].
pub fn reuse_stats(net: &Network, layer_idx: usize) -> adr_reuse::ReuseStats {
    net.layers()[layer_idx]
        .as_any()
        .and_then(|a| a.downcast_ref::<ReuseConv2d>())
        .expect("layer_idx must point at a ReuseConv2d")
        .stats()
}

/// Mean across-batch reuse rate of the [`ReuseConv2d`] at `layer_idx`.
///
/// # Panics
/// Panics when `layer_idx` does not point at a [`ReuseConv2d`].
pub fn reuse_rate(net: &Network, layer_idx: usize) -> f64 {
    net.layers()[layer_idx]
        .as_any()
        .and_then(|a| a.downcast_ref::<ReuseConv2d>())
        .expect("layer_idx must point at a ReuseConv2d")
        .mean_reuse_rate()
}

/// Writes rows as a CSV file (creating parent directories), so experiment
/// outputs can be plotted directly.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "{}", headers.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Exercise: verifies the dense column of an experiment is reproducible by
/// re-running with the same seed. Mostly used from tests.
pub fn checkpointed_cifarnet(seed: u64, train_iters: usize) -> (Network, DatasetSource) {
    let mut rng = AdrRng::seeded(seed);
    let dataset = synth_for((16, 16, 3), 160, 4, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut net = adr_models::cifarnet::bench_scale(4, adr_models::ConvMode::Dense, &mut rng);
    train_dense(&mut net, &mut source, train_iters, 0.03);
    (net, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::Layer as _;

    #[test]
    fn dataset_source_separates_probe_from_training() {
        let mut rng = AdrRng::seeded(1);
        let dataset = SynthDataset::cifar_like(48, 4, &mut rng);
        let mut source = DatasetSource::new(dataset, 8, 16);
        assert_eq!(source.num_batches(), 4);
        let (probe_imgs, probe_labels) = source.probe();
        assert_eq!(probe_imgs.batch(), 16);
        assert_eq!(probe_labels.len(), 16);
        let (train_imgs, _) = source.batch(0);
        assert_eq!(train_imgs.batch(), 8);
    }

    #[test]
    fn kmeans_forward_with_k_equal_n_is_nearly_exact() {
        let mut rng = AdrRng::seeded(2);
        let geom = adr_tensor::im2col::ConvGeom::new(8, 8, 2, 3, 3, 1, 0).unwrap();
        let mut conv = Conv2d::new("c", geom, 4, &mut rng);
        let x = Tensor4::from_fn(1, 8, 8, 2, |_, _, _, _| rng.gauss());
        let dense = conv.forward(&x, Mode::Eval);
        let (approx, rc) = kmeans_conv_forward(&conv, &x, 36, Scope::SingleBatch, &mut rng);
        assert!(rc > 0.9, "rc {rc}");
        let diff = approx
            .as_slice()
            .iter()
            .zip(dense.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-2, "diff {diff}");
    }

    #[test]
    fn kmeans_single_input_scope_clusters_per_image() {
        let mut rng = AdrRng::seeded(3);
        let geom = adr_tensor::im2col::ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        let conv = Conv2d::new("c", geom, 2, &mut rng);
        let x = Tensor4::from_fn(3, 6, 6, 1, |_, _, _, _| rng.gauss());
        let (_, rc) = kmeans_conv_forward(&conv, &x, 4, Scope::SingleInput, &mut rng);
        // 3 images × ≤4 clusters over 48 rows.
        assert!(rc <= 12.0 / 48.0 + 1e-9, "rc {rc}");
    }

    #[test]
    fn swap_in_reuse_then_retune_round_trips() {
        let (mut net, mut source) = checkpointed_cifarnet(4, 10);
        swap_in_reuse(&mut net, 0, ReuseConfig::new(5, 8, false), &mut AdrRng::seeded(5));
        let (images, labels) = source.probe();
        net.evaluate(&images, &labels);
        let stats = reuse_stats(&net, 0);
        assert!(stats.rows > 0);
        set_reuse_config(&mut net, 0, ReuseConfig::new(10, 12, true));
        net.evaluate(&images, &labels);
        assert!(reuse_rate(&net, 0) >= 0.0);
    }

    #[test]
    fn write_csv_round_trips_rows() {
        let dir = std::env::temp_dir().join("adr_csv_test");
        let path = dir.join("out.csv");
        let rows = vec![
            vec!["a".to_string(), "1.5".to_string()],
            vec!["b".to_string(), "2.5".to_string()],
        ];
        write_csv(&path, &["name", "value"], &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "name,value\na,1.5\nb,2.5\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn train_dense_improves_over_initial() {
        let (mut net, mut source) = checkpointed_cifarnet(6, 120);
        let acc = mean_accuracy(&mut net, &mut source, 4);
        assert!(acc > 0.5, "trained accuracy {acc}");
    }
}
