//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! structured rows; the `src/bin/*.rs` binaries are thin wrappers that print
//! the rows as aligned tables/CSV. [`harness`] holds the shared plumbing:
//! dataset-backed [`adr_core::BatchSource`] adapters, model training to a
//! checkpoint, layer surgery (swapping a dense conv for a reuse conv), and
//! the k-means reference forward used by the Fig. 7 verification.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig7` | Fig. 7 — k-means r_c–accuracy, single-input vs single-batch |
//! | `fig8` | Fig. 8 — LSH r_c–accuracy per sub-vector length and H |
//! | `table3` | Table III — accuracy with/without cluster reuse |
//! | `table4` | Table IV + §VI-B2 — training-time savings of strategies 1–3 |
//! | `reuse_rate` | §VI-B1 — reuse rate R growth over batches |

// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod experiments;
pub mod harness;
pub mod timing;
