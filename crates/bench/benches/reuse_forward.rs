//! Dense convolution forward vs deep-reuse forward across reuse strengths —
//! the wall-time counterpart of Eq. 5.

use adr_bench::timing::BenchGroup;
use adr_nn::conv::Conv2d;
use adr_nn::{Layer, Mode};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

fn smooth_input(seed: u64) -> Tensor4 {
    let mut rng = AdrRng::seeded(seed);
    Tensor4::from_fn(16, 15, 15, 64, |_, y, x, c| {
        ((y / 3 + x / 3 + c / 8) % 5) as f32 * 0.3 - 0.6 + 0.05 * rng.gauss()
    })
}

fn main() {
    let mut group = BenchGroup::new("reuse_forward", 10);
    let geom = ConvGeom::new(15, 15, 64, 5, 5, 1, 2).expect("kernel fits input");
    let mut rng = AdrRng::seeded(1);
    let mut dense = Conv2d::new("dense", geom, 64, &mut rng);
    let x = smooth_input(2);
    group.bench("dense", || dense.forward(&x, Mode::Eval));
    for (l, h) in [(1600usize, 8usize), (80, 8), (20, 8), (5, 8), (5, 15)] {
        let mut reuse = ReuseConv2d::from_dense(&dense, ReuseConfig::new(l, h, false), &mut rng);
        group.bench(&format!("reuse/L{l}_H{h}"), || reuse.forward(&x, Mode::Eval));
    }
    // Cluster reuse on a repeating stream (the Algorithm 1 best case).
    let mut cached = ReuseConv2d::from_dense(&dense, ReuseConfig::new(80, 8, true), &mut rng);
    cached.forward(&x, Mode::Eval); // warm the cache
    group.bench("reuse_CR_warm", || cached.forward(&x, Mode::Eval));
    group.finish();
}
