//! Dense convolution forward vs deep-reuse forward across reuse strengths —
//! the wall-time counterpart of Eq. 5.

use adr_nn::conv::Conv2d;
use adr_nn::{Layer, Mode};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn smooth_input(seed: u64) -> Tensor4 {
    let mut rng = AdrRng::seeded(seed);
    Tensor4::from_fn(16, 15, 15, 64, |_, y, x, c| {
        ((y / 3 + x / 3 + c / 8) % 5) as f32 * 0.3 - 0.6 + 0.05 * rng.gauss()
    })
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse_forward");
    group.sample_size(10);
    let geom = ConvGeom::new(15, 15, 64, 5, 5, 1, 2).unwrap();
    let mut rng = AdrRng::seeded(1);
    let mut dense = Conv2d::new("dense", geom, 64, &mut rng);
    let x = smooth_input(2);
    group.bench_function("dense", |b| b.iter(|| dense.forward(&x, Mode::Eval)));
    for (l, h) in [(1600usize, 8usize), (80, 8), (20, 8), (5, 8), (5, 15)] {
        let mut reuse = ReuseConv2d::from_dense(&dense, ReuseConfig::new(l, h, false), &mut rng);
        group.bench_with_input(
            BenchmarkId::new("reuse", format!("L{l}_H{h}")),
            &x,
            |b, x| b.iter(|| reuse.forward(x, Mode::Eval)),
        );
    }
    // Cluster reuse on a repeating stream (the Algorithm 1 best case).
    let mut cached = ReuseConv2d::from_dense(&dense, ReuseConfig::new(80, 8, true), &mut rng);
    cached.forward(&x, Mode::Eval); // warm the cache
    group.bench_function("reuse_CR_warm", |b| b.iter(|| cached.forward(&x, Mode::Eval)));
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
