//! GEMM kernel scaling: blocked serial vs row-parallel, and the
//! transposed-product variants the backward pass uses.

use adr_tensor::matrix::Matrix;
use adr_tensor::par::matmul_par;
use adr_tensor::rng::AdrRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn random_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = AdrRng::seeded(seed);
    Matrix::from_fn(r, c, |_, _| rng.gauss())
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    // Shapes mirror the unfolded convolutions of the bench models:
    // (N, K, M) triples.
    for &(n, k, m) in &[(1024usize, 75usize, 64usize), (784, 800, 64), (3600, 1600, 64)] {
        let a = random_matrix(n, k, 1);
        let b = random_matrix(k, m, 2);
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{n}x{k}x{m}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| a.matmul(b)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{n}x{k}x{m}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| matmul_par(a, b)),
        );
    }
    // Backward-shape products.
    let a = random_matrix(784, 800, 3);
    let dy = random_matrix(784, 64, 4);
    let w = random_matrix(800, 64, 5);
    group.bench_function("weight_grad_xT_dy", |b| b.iter(|| a.matmul_t_a(&dy)));
    group.bench_function("input_delta_dy_wT", |b| b.iter(|| dy.matmul_t_b(&w)));
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
