//! GEMM kernel scaling: blocked serial vs row-parallel, and the
//! transposed-product variants the backward pass uses.

use adr_bench::timing::BenchGroup;
use adr_tensor::matrix::Matrix;
use adr_tensor::par::matmul_par;
use adr_tensor::rng::AdrRng;

fn random_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = AdrRng::seeded(seed);
    Matrix::from_fn(r, c, |_, _| rng.gauss())
}

fn main() {
    let mut group = BenchGroup::new("gemm", 10);
    // Shapes mirror the unfolded convolutions of the bench models:
    // (N, K, M) triples.
    for &(n, k, m) in &[(1024usize, 75usize, 64usize), (784, 800, 64), (3600, 1600, 64)] {
        let a = random_matrix(n, k, 1);
        let b = random_matrix(k, m, 2);
        group.bench(&format!("serial/{n}x{k}x{m}"), || a.matmul(&b));
        group.bench(&format!("parallel/{n}x{k}x{m}"), || matmul_par(&a, &b));
    }
    // Backward-shape products.
    let a = random_matrix(784, 800, 3);
    let dy = random_matrix(784, 64, 4);
    let w = random_matrix(800, 64, 5);
    group.bench("weight_grad_xT_dy", || a.matmul_t_a(&dy));
    group.bench("input_delta_dy_wT", || dy.matmul_t_b(&w));
    group.finish();
}
