//! LSH hashing cost: per-family vs packed multi-sub-matrix hashing, across
//! H and L — the paper's `N·K·H` overhead term made concrete.

use adr_bench::timing::BenchGroup;
use adr_clustering::lsh::LshTable;
use adr_reuse::hashpack::PackedHasher;
use adr_reuse::subvec::SubVecSplit;
use adr_tensor::matrix::Matrix;
use adr_tensor::rng::AdrRng;

fn main() {
    let mut group = BenchGroup::new("lsh_hashing", 10);
    let mut rng = AdrRng::seeded(1);
    let x = Matrix::from_fn(3600, 1600, |_, _| rng.gauss());
    for &h in &[4usize, 8, 15] {
        for &l in &[1600usize, 80, 5] {
            let split = SubVecSplit::new(1600, l);
            let families: Vec<LshTable> =
                split.ranges().iter().map(|&(a, b)| LshTable::new(b - a, h, &mut rng)).collect();
            let packed = PackedHasher::new(&split, &families);
            group.bench(&format!("packed/L{l}_H{h}"), || packed.hash_all(&x));
            group.bench(&format!("per_family/L{l}_H{h}"), || {
                let mut total = 0u64;
                for (i, &(a, _)) in split.ranges().iter().enumerate() {
                    total += families[i].signatures_range(&x, a).len() as u64;
                }
                total
            });
        }
    }
    group.finish();
}
