//! The cluster-granularity trade-off (§III-B "Cluster Granularity"): a
//! smaller L exposes more reuse but pays O(N·K/L·M) adds — this bench makes
//! the U-shaped cost curve measurable.

use adr_bench::timing::BenchGroup;
use adr_nn::conv::Conv2d;
use adr_nn::{Layer, Mode};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

fn main() {
    let mut group = BenchGroup::new("granularity", 10);
    let geom = ConvGeom::new(15, 15, 64, 5, 5, 1, 2).expect("kernel fits input");
    let mut rng = AdrRng::seeded(1);
    let dense = Conv2d::new("dense", geom, 64, &mut rng);
    let mut xrng = AdrRng::seeded(2);
    let x = Tensor4::from_fn(16, 15, 15, 64, |_, y, xx, cc| {
        ((y / 2 + xx / 2 + cc / 4) % 6) as f32 * 0.25 - 0.6 + 0.03 * xrng.gauss()
    });
    for l in [1600usize, 400, 160, 80, 40, 20, 10, 5] {
        let mut reuse = ReuseConv2d::from_dense(&dense, ReuseConfig::new(l, 8, false), &mut rng);
        group.bench(&format!("forward/L{l}"), || reuse.forward(&x, Mode::Eval));
    }
    group.finish();
}
