//! Clustering-method cost comparison: the reason the paper picks LSH for
//! the online path and k-means only for offline verification (§III-B).

use adr_bench::timing::BenchGroup;
use adr_clustering::kmeans::{kmeans, KMeansConfig};
use adr_clustering::lsh::LshTable;
use adr_tensor::matrix::Matrix;
use adr_tensor::rng::AdrRng;

fn main() {
    let mut group = BenchGroup::new("kmeans_vs_lsh", 10);
    let mut rng = AdrRng::seeded(1);
    for &n in &[512usize, 2048] {
        let data = Matrix::from_fn(n, 75, |_, _| rng.gauss());
        let lsh = LshTable::new(75, 12, &mut rng);
        group.bench(&format!("lsh_h12/{n}"), || lsh.cluster(&data));
        let cfg = KMeansConfig { k: 64, max_iters: 10, tolerance: 1e-3 };
        let mut krng = AdrRng::seeded(2);
        group.bench(&format!("kmeans_k64/{n}"), || kmeans(&data, &cfg, &mut krng));
    }
    group.finish();
}
