//! Clustering-method cost comparison: the reason the paper picks LSH for
//! the online path and k-means only for offline verification (§III-B).

use adr_clustering::kmeans::{kmeans, KMeansConfig};
use adr_clustering::lsh::LshTable;
use adr_tensor::matrix::Matrix;
use adr_tensor::rng::AdrRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_vs_lsh");
    group.sample_size(10);
    let mut rng = AdrRng::seeded(1);
    for &n in &[512usize, 2048] {
        let data = Matrix::from_fn(n, 75, |_, _| rng.gauss());
        let lsh = LshTable::new(75, 12, &mut rng);
        group.bench_with_input(BenchmarkId::new("lsh_h12", n), &data, |b, d| {
            b.iter(|| lsh.cluster(d))
        });
        group.bench_with_input(BenchmarkId::new("kmeans_k64", n), &data, |b, d| {
            let cfg = KMeansConfig { k: 64, max_iters: 10, tolerance: 1e-3 };
            let mut krng = AdrRng::seeded(2);
            b.iter(|| kmeans(d, &cfg, &mut krng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
