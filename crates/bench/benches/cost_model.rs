//! Validates the paper's analytic cost model (Eqs. 5/12/20) against wall
//! time: measured forward time across {L, H} settings should rank the same
//! way the model ranks them.

use adr_bench::timing::BenchGroup;
use adr_nn::conv::Conv2d;
use adr_nn::{Layer, Mode};
use adr_reuse::cost::{forward_cost, CostParams};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

fn main() {
    let mut group = BenchGroup::new("cost_model", 10);
    let geom = ConvGeom::new(15, 15, 64, 5, 5, 1, 2).expect("kernel fits input");
    let mut rng = AdrRng::seeded(1);
    let dense = Conv2d::new("dense", geom, 64, &mut rng);
    let mut xrng = AdrRng::seeded(2);
    let x = Tensor4::from_fn(16, 15, 15, 64, |_, y, xx, cc| {
        ((y / 3 + xx / 3 + cc / 8) % 5) as f32 * 0.3 - 0.6 + 0.05 * xrng.gauss()
    });
    for (l, h) in [(160usize, 6usize), (80, 8), (40, 10), (20, 12)] {
        let mut reuse = ReuseConv2d::from_dense(&dense, ReuseConfig::new(l, h, false), &mut rng);
        // Report the model's predicted relative cost in the bench id so the
        // harness output can be compared against measured time directly.
        reuse.forward(&x, Mode::Eval);
        let rc = reuse.stats().avg_remaining_ratio;
        let model = forward_cost(&CostParams { m: 64, l, h, rc, reuse_rate: 0.0 });
        group.bench(&format!("measured/L{l}_H{h}_model{model:.3}"), || {
            reuse.forward(&x, Mode::Eval)
        });
    }
    group.finish();
}
