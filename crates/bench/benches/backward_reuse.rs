//! Dense backward vs reuse backward (Eqs. 9/10 and 17/18): the paper's
//! claim that forward clustering makes the backward pass cheap.

use adr_bench::timing::BenchGroup;
use adr_nn::conv::Conv2d;
use adr_nn::{Layer, Mode};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::im2col::ConvGeom;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

fn main() {
    let mut group = BenchGroup::new("backward_reuse", 10);
    let geom = ConvGeom::new(15, 15, 64, 5, 5, 1, 2).expect("kernel fits input");
    let mut rng = AdrRng::seeded(1);
    let mut dense = Conv2d::new("dense", geom, 64, &mut rng);
    let mut xrng = AdrRng::seeded(2);
    let x = Tensor4::from_fn(16, 15, 15, 64, |_, y, xx, cc| {
        ((y + xx + cc) % 7) as f32 * 0.2 - 0.6 + 0.05 * xrng.gauss()
    });
    let grad = Tensor4::from_fn(16, 15, 15, 64, |_, _, _, cc| (cc % 3) as f32 - 1.0);

    group.bench("dense", || {
        dense.forward(&x, Mode::Train);
        dense.backward(&grad)
    });
    for (l, h) in [(80usize, 8usize), (20, 8), (5, 12)] {
        let mut reuse = ReuseConv2d::from_dense(&dense, ReuseConfig::new(l, h, false), &mut rng);
        group.bench(&format!("reuse/L{l}_H{h}"), || {
            reuse.forward(&x, Mode::Train);
            reuse.backward(&grad)
        });
    }
    group.finish();
}
