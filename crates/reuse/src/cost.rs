//! The paper's complexity model.
//!
//! All quantities are *relative* costs: multiply–adds divided by the dense
//! cost `N·K·M`, so a value of `1.0` means "as expensive as the baseline".
//! These are Eqs. 5, 6, 12, 20 of the paper, plus the candidate-ordering
//! deltas of Eqs. 22/23 used by Policy 3.

/// Inputs to the cost model for one convolutional layer.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Number of weight filters `M`.
    pub m: usize,
    /// Sub-vector length `L`.
    pub l: usize,
    /// Number of hash functions `H`.
    pub h: usize,
    /// Average remaining ratio `r_c = |C|/N` across sub-matrices.
    pub rc: f64,
    /// Average across-batch reuse rate `R` (only meaningful with CR = 1).
    pub reuse_rate: f64,
}

/// Eq. 5 — relative forward cost without cluster reuse:
/// `H/M + r_c + 1/L`.
pub fn forward_cost(p: &CostParams) -> f64 {
    p.h as f64 / p.m as f64 + p.rc + 1.0 / p.l as f64
}

/// Eq. 6 — relative forward cost with cluster reuse:
/// `H/M + (1 − R)·r_c + 1/L`.
pub fn forward_cost_with_reuse(p: &CostParams) -> f64 {
    p.h as f64 / p.m as f64 + (1.0 - p.reuse_rate) * p.rc + 1.0 / p.l as f64
}

/// Eq. 12 — relative cost of the weight gradient using forward clustering:
/// `(1 − r_c)/L + r_c`.
///
/// The `(1 − r_c)/L` term is the `δy_{c,s}` row summation (`(N−|C|)·M` adds
/// per sub-matrix, `K/L` sub-matrices, normalised by `N·K·M`); the `r_c`
/// term is the centroid GEMM.
pub fn backward_weight_cost(p: &CostParams) -> f64 {
    (1.0 - p.rc) / p.l as f64 + p.rc
}

/// Eq. 20 — relative cost of the input delta using forward clustering: `r_c`.
pub fn backward_input_cost(p: &CostParams) -> f64 {
    p.rc
}

/// Total relative training-step cost (forward + both backward computations)
/// against the dense cost `3·N·K·M`.
pub fn training_step_cost(p: &CostParams, cluster_reuse: bool) -> f64 {
    let fwd = if cluster_reuse { forward_cost_with_reuse(p) } else { forward_cost(p) };
    (fwd + backward_weight_cost(p) + backward_input_cost(p)) / 3.0
}

/// Eq. 21 — the expected-time proxy used when ordering candidates:
/// `E_f(t) ∼ H/M + r_c + 1/L` (identical to Eq. 5; the controller only
/// needs *differences*, where the unknown `r_c` cancels).
pub fn expected_time(p: &CostParams) -> f64 {
    forward_cost(p)
}

/// Eq. 22 — change in expected time when only `L` changes: `1/L₂ − 1/L₁`.
pub fn delta_e_l(l1: usize, l2: usize) -> f64 {
    1.0 / l2 as f64 - 1.0 / l1 as f64
}

/// Eq. 23 — change in expected time when only `H` changes: `(H₂ − H₁)/M`.
pub fn delta_e_h(h1: usize, h2: usize, m: usize) -> f64 {
    (h2 as f64 - h1 as f64) / m as f64
}

/// The paper's profitability condition for LSH (§III-B): hashing pays off
/// only when `H << M·(1 − r_c)`. Returns the slack `M·(1−r_c) − H`
/// (positive = profitable).
pub fn profitability_slack(p: &CostParams) -> f64 {
    p.m as f64 * (1.0 - p.rc) - p.h as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(l: usize, h: usize, rc: f64) -> CostParams {
        CostParams { m: 64, l, h, rc, reuse_rate: 0.0 }
    }

    #[test]
    fn dense_limit_recovers_baseline() {
        // r_c → 1, L = K (one sub-vector), H small: cost ≈ 1 + overheads.
        let p = params(1600, 1, 1.0);
        let c = forward_cost(&p);
        assert!(c > 1.0 && c < 1.1, "cost {c}");
    }

    #[test]
    fn strong_clustering_beats_baseline() {
        let p = params(80, 8, 0.05);
        assert!(forward_cost(&p) < 0.3);
    }

    #[test]
    fn cluster_reuse_strictly_helps_forward_cost() {
        let mut p = params(80, 8, 0.2);
        p.reuse_rate = 0.9;
        assert!(forward_cost_with_reuse(&p) < forward_cost(&p));
        // With R = 0 both formulas agree.
        p.reuse_rate = 0.0;
        assert!((forward_cost_with_reuse(&p) - forward_cost(&p)).abs() < 1e-15);
    }

    #[test]
    fn backward_costs_shrink_with_rc() {
        let lo = params(40, 10, 0.05);
        let hi = params(40, 10, 0.5);
        assert!(backward_weight_cost(&lo) < backward_weight_cost(&hi));
        assert!(backward_input_cost(&lo) < backward_input_cost(&hi));
    }

    #[test]
    fn training_step_cost_is_average_of_three_phases() {
        let p = params(100, 10, 0.1);
        let expect = (forward_cost(&p) + backward_weight_cost(&p) + backward_input_cost(&p)) / 3.0;
        assert!((training_step_cost(&p, false) - expect).abs() < 1e-15);
    }

    #[test]
    fn delta_formulas_match_direct_differences() {
        let m = 64;
        let p1 = params(40, 10, 0.1);
        let p2 = CostParams { l: 20, ..p1 };
        assert!((delta_e_l(40, 20) - (expected_time(&p2) - expected_time(&p1))).abs() < 1e-12);
        let p3 = CostParams { h: 25, ..p1 };
        assert!((delta_e_h(10, 25, m) - (expected_time(&p3) - expected_time(&p1))).abs() < 1e-12);
    }

    #[test]
    fn shrinking_l_increases_expected_time() {
        assert!(delta_e_l(80, 40) > 0.0);
        assert!(delta_e_l(40, 80) < 0.0);
    }

    #[test]
    fn training_step_cost_uses_reuse_rate_only_with_cr() {
        let mut p = params(50, 10, 0.2);
        p.reuse_rate = 0.95;
        let with_cr = training_step_cost(&p, true);
        let without = training_step_cost(&p, false);
        assert!(with_cr < without, "CR must reduce the modelled step cost");
        // The backward terms are unaffected by CR.
        let diff = without - with_cr;
        let fwd_diff = (forward_cost(&p) - forward_cost_with_reuse(&p)) / 3.0;
        assert!((diff - fwd_diff).abs() < 1e-12);
    }

    #[test]
    fn profitability_slack_sign() {
        assert!(profitability_slack(&params(40, 5, 0.1)) > 0.0);
        assert!(profitability_slack(&params(40, 63, 0.9)) < 0.0);
    }

    #[test]
    fn empty_cluster_table_never_reads_as_free() {
        // Regression: an empty ClusterTable used to report r_c = 0, which
        // Eq. 5 scored as a maximally-clustered, nearly-free layer. With the
        // degenerate case fixed to r_c = 1, the forward cost on empty input
        // keeps its floor of H/M + 1/L *plus* the full remaining-ratio term.
        let empty = adr_clustering::assign::ClusterTable::new(vec![]);
        assert_eq!(empty.remaining_ratio().to_bits(), 1.0f64.to_bits());
        for (l, h) in [(4, 1), (8, 8), (64, 32)] {
            let p = CostParams { m: 64, l, h, rc: empty.remaining_ratio(), reuse_rate: 0.0 };
            let floor = h as f64 / 64.0 + 1.0 / l as f64;
            assert!(
                forward_cost(&p) >= floor,
                "forward_cost {} dropped below the H/M + 1/L floor {floor}",
                forward_cost(&p)
            );
            // And strictly above it: the r_c = 1 term must be present.
            assert!(forward_cost(&p) >= floor + 1.0 - 1e-15);
        }
    }
}
