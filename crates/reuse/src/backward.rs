//! Backward propagation that reuses the forward clustering (§IV).
//!
//! The paper's central efficiency claim: no re-clustering happens in the
//! backward pass. For each sub-matrix `I` with forward clustering `C_I` and
//! centroid matrix `x_{c,I}`:
//!
//! * **Weight gradient** (Eqs. 7–10): member rows of `δy` are first summed
//!   per cluster into `δy_{c,I,s}` (cheap adds), then one small GEMM gives
//!   `∇W_I = x_{c,I}ᵀ · δy_{c,I,s}`.
//! * **Input delta** (Eqs. 13–18): per-cluster *means* `δy_{c,I,sa}` are
//!   multiplied by `W_Iᵀ` to get centroid input-gradients, which every
//!   member of the cluster then shares.

use adr_clustering::assign::ClusterTable;
use adr_tensor::matrix::Matrix;

use crate::subvec::SubVecSplit;

/// Gradients produced by the reuse backward pass.
#[derive(Debug)]
pub struct BackwardOutcome {
    /// `K × M` weight gradient.
    pub weight_grad: Matrix,
    /// Length-`M` bias gradient.
    pub bias_grad: Vec<f32>,
    /// `N × K` gradient w.r.t. the unfolded input (fold with `col2im`).
    pub delta_x_unf: Matrix,
    /// Multiply–adds actually performed.
    pub flops: u64,
}

/// Runs the reuse backward pass from the forward clustering.
///
/// * `tables`/`centroids` — per-sub-matrix clustering recorded by
///   [`crate::forward::reuse_forward`].
/// * `split` — the same sub-vector partition used forward.
/// * `weight` — the `K × M` weight matrix.
/// * `delta_y` — the `N × M` output gradient.
///
/// # Panics
/// Panics on dimension disagreements.
pub fn reuse_backward(
    tables: &[ClusterTable],
    centroids: &[Matrix],
    split: &SubVecSplit,
    weight: &Matrix,
    delta_y: &Matrix,
) -> BackwardOutcome {
    let (n, m) = delta_y.shape();
    let k = split.k();
    assert_eq!(weight.shape(), (k, m), "weight shape disagrees with split/delta_y");
    assert_eq!(tables.len(), split.num_sub_vectors(), "one table per sub-matrix required");
    assert_eq!(centroids.len(), tables.len(), "one centroid matrix per sub-matrix required");

    adr_tensor::checked_finite!(delta_y.as_slice(), "reuse backward: delta_y");
    let mut weight_grad = Matrix::zeros(k, m);
    let mut delta_x_unf = Matrix::zeros(n, k);
    let mut flops = 0u64;

    for (i, &(start, end)) in split.ranges().iter().enumerate() {
        let width = end - start;
        let table = &tables[i];
        assert_eq!(table.num_rows(), n, "table {i} row count disagrees with delta_y");
        let cent = &centroids[i];
        assert_eq!(cent.shape(), (table.num_clusters(), width), "centroid {i} shape mismatch");
        let num_clusters = table.num_clusters();

        // δy_{c,s}: per-cluster sums of δy rows (Eq. 8).
        let dy_sum = table.gather_sum(delta_y);
        adr_tensor::checked_shape!(
            dy_sum.shape(),
            (num_clusters, m),
            "reuse backward: sub-matrix {i} gathered delta shape"
        );
        flops += ((n - num_clusters) * m) as u64;

        // ∇W_I = x_{c,I}ᵀ · δy_{c,I,s} (Eq. 10).
        let w_grad_block = cent.matmul_t_a(&dy_sum);
        adr_tensor::checked_finite_rows!(
            w_grad_block.as_slice(),
            m,
            "reuse backward: sub-matrix {i} weight-gradient block"
        );
        flops += (num_clusters * width * m) as u64;
        weight_grad.set_row_slice(start, &w_grad_block);

        // δy_{c,sa}: per-cluster means (divide the sums by cluster size).
        let mut dy_mean = dy_sum;
        for c in 0..num_clusters {
            // Cluster ids are u32 by design; num_clusters fits.
            #[allow(clippy::cast_possible_truncation)]
            let inv = 1.0 / table.count(c as u32) as f32;
            for v in dy_mean.row_mut(c) {
                *v *= inv;
            }
        }

        // δx_{c,I} = δy_{c,I,sa} · W_Iᵀ (Eq. 18).
        let w_i = weight.row_slice(start, end);
        let dx_c = dy_mean.matmul_t_b(&w_i);
        adr_tensor::checked_finite_rows!(
            dx_c.as_slice(),
            width,
            "reuse backward: sub-matrix {i} centroid input-gradients (row = cluster id)"
        );
        flops += (num_clusters * width * m) as u64;

        // Every member inherits its cluster centroid's input gradient.
        for row in 0..n {
            let c = table.cluster_of(row) as usize;
            delta_x_unf.row_mut(row)[start..end].copy_from_slice(dx_c.row(c));
        }
    }

    let bias_grad = delta_y.column_sums();
    adr_tensor::checked_finite!(weight_grad.as_slice(), "reuse backward: weight gradient");
    adr_tensor::checked_finite!(delta_x_unf.as_slice(), "reuse backward: input delta");
    BackwardOutcome { weight_grad, bias_grad, delta_x_unf, flops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_clustering::lsh::LshTable;
    use adr_tensor::rng::AdrRng;

    use crate::forward::reuse_forward;

    fn setup(
        n: usize,
        k: usize,
        m: usize,
        l: usize,
        h: usize,
        seed: u64,
    ) -> (Matrix, Matrix, Vec<f32>, SubVecSplit, Vec<LshTable>) {
        let mut rng = AdrRng::seeded(seed);
        let x = Matrix::from_fn(n, k, |_, _| rng.gauss());
        let w = Matrix::from_fn(k, m, |_, _| rng.gauss() * 0.2);
        let b = vec![0.0; m];
        let split = SubVecSplit::new(k, l);
        let lsh =
            split.ranges().iter().map(|&(a, bb)| LshTable::new(bb - a, h, &mut rng)).collect();
        (x, w, b, split, lsh)
    }

    /// With all-singleton clusters the reuse backward pass must agree with
    /// the dense formulas ∇W = xᵀδy and δx = δy·Wᵀ.
    #[test]
    fn exact_when_clusters_are_singletons() {
        let (x, w, b, split, lsh) = setup(12, 8, 4, 8, 40, 1);
        let fwd = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        assert_eq!(fwd.tables[0].num_clusters(), 12, "need singleton clusters");
        let mut rng = AdrRng::seeded(2);
        let dy = Matrix::from_fn(12, 4, |_, _| rng.gauss());
        let out = reuse_backward(&fwd.tables, &fwd.centroids, &split, &w, &dy);
        let dense_wgrad = x.matmul_t_a(&dy);
        let dense_dx = dy.matmul_t_b(&w);
        assert!(out.weight_grad.max_abs_diff(&dense_wgrad) < 1e-3);
        assert!(out.delta_x_unf.max_abs_diff(&dense_dx) < 1e-3);
        assert_eq!(out.bias_grad, dy.column_sums());
    }

    /// For duplicated rows, clustering is lossless: the weight gradient must
    /// match the dense gradient exactly because Σ_k x_k δy_k groups exactly.
    #[test]
    fn weight_gradient_exact_for_duplicate_rows() {
        let mut rng = AdrRng::seeded(3);
        let proto = Matrix::from_fn(3, 6, |_, _| rng.gauss());
        let x = Matrix::from_fn(30, 6, |r, c| proto[(r % 3, c)]);
        let w = Matrix::from_fn(6, 5, |_, _| rng.gauss());
        let b = vec![0.0; 5];
        let split = SubVecSplit::new(6, 6);
        let lsh = vec![LshTable::new(6, 12, &mut rng)];
        let fwd = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        assert_eq!(fwd.tables[0].num_clusters(), 3);
        let dy = Matrix::from_fn(30, 5, |_, _| rng.gauss());
        let out = reuse_backward(&fwd.tables, &fwd.centroids, &split, &w, &dy);
        let dense_wgrad = x.matmul_t_a(&dy);
        assert!(out.weight_grad.max_abs_diff(&dense_wgrad) < 1e-3);
    }

    /// The input delta assigns every cluster member the same gradient — the
    /// cluster-mean of the dense gradients (Eq. 13).
    #[test]
    fn input_delta_is_cluster_mean_of_dense_delta() {
        let mut rng = AdrRng::seeded(4);
        let proto = Matrix::from_fn(4, 8, |_, _| rng.gauss());
        let x = Matrix::from_fn(20, 8, |r, c| proto[(r % 4, c)]);
        let w = Matrix::from_fn(8, 3, |_, _| rng.gauss());
        let split = SubVecSplit::new(8, 8);
        let lsh = vec![LshTable::new(8, 14, &mut rng)];
        let fwd = reuse_forward(&x, &w, &[0.0; 3], &split, &lsh, None, None);
        let dy = Matrix::from_fn(20, 3, |_, _| rng.gauss());
        let out = reuse_backward(&fwd.tables, &fwd.centroids, &split, &w, &dy);
        let dense_dx = dy.matmul_t_b(&w);
        // Members of a cluster share identical rows equal to the mean.
        let table = &fwd.tables[0];
        for c in 0..table.num_clusters() {
            let members: Vec<usize> =
                (0..20).filter(|&r| table.cluster_of(r) == u32::try_from(c).unwrap()).collect();
            let mut mean = [0.0f32; 8];
            for &r in &members {
                for (s, v) in mean.iter_mut().zip(dense_dx.row(r)) {
                    *s += v;
                }
            }
            for s in mean.iter_mut() {
                *s /= members.len() as f32;
            }
            for &r in &members {
                for (a, b) in out.delta_x_unf.row(r).iter().zip(mean.iter()) {
                    assert!((a - b).abs() < 1e-4, "row {r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn sub_vector_blocks_fill_whole_weight_gradient() {
        let (x, w, b, split, lsh) = setup(16, 12, 4, 5, 30, 5);
        let fwd = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        let mut rng = AdrRng::seeded(6);
        let dy = Matrix::from_fn(16, 4, |_, _| rng.gauss());
        let out = reuse_backward(&fwd.tables, &fwd.centroids, &split, &w, &dy);
        // Every weight row received a (generically) non-zero gradient.
        for r in 0..12 {
            let norm: f32 = out.weight_grad.row(r).iter().map(|v| v * v).sum();
            assert!(norm > 0.0, "weight row {r} got no gradient");
        }
    }

    #[test]
    fn flops_scale_with_cluster_count() {
        let (x, w, b, split, lsh) = setup(64, 8, 4, 8, 2, 7);
        let fwd_coarse = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        let dy = Matrix::filled(64, 4, 1.0);
        let coarse = reuse_backward(&fwd_coarse.tables, &fwd_coarse.centroids, &split, &w, &dy);
        let (x2, w2, b2, split2, lsh2) = setup(64, 8, 4, 8, 40, 7);
        let fwd_fine = reuse_forward(&x2, &w2, &b2, &split2, &lsh2, None, None);
        let fine = reuse_backward(&fwd_fine.tables, &fwd_fine.centroids, &split2, &w2, &dy);
        assert!(
            fwd_coarse.tables[0].num_clusters() < fwd_fine.tables[0].num_clusters(),
            "precondition: H controls cluster count"
        );
        assert!(coarse.flops < fine.flops);
    }

    #[test]
    #[should_panic(expected = "one table per sub-matrix")]
    fn wrong_table_count_panics() {
        let (x, w, b, split, lsh) = setup(8, 8, 2, 4, 8, 9);
        let fwd = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        let dy = Matrix::zeros(8, 2);
        reuse_backward(&fwd.tables[..1], &fwd.centroids[..1], &split, &w, &dy);
    }
}
