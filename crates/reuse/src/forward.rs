//! The deep-reuse forward pass (Figs. 2 and 3, Algorithm 1).
//!
//! For each sub-matrix `x^(I)` of the unfolded input:
//!
//! 1. hash every row with the sub-matrix's LSH family → clusters,
//! 2. compute the centroid matrix `x_c^(I)` (mean of raw member rows),
//! 3. compute `y_c^(I) = x_c^(I) · W_I` — only `|C_I|` rows instead of `N`
//!    (with `CR = 1`, rows whose signature was seen in an earlier batch are
//!    fetched from the [`ReuseCache`] instead of computed),
//! 4. reconstruct `y = Σ_I y^(I)` by scattering each `y_c^(I)` row to all
//!    its member rows.
//!
//! Hashing and centroid extraction read column windows of the unfolded
//! matrix in place (no sub-matrix copies), and the reconstruction runs one
//! row-parallel pass over all sub-matrices at once — both matter because
//! clustering overhead is exactly what the paper's profitability condition
//! `H << M(1 − r_c)` trades against.

use adr_clustering::assign::ClusterTable;
use adr_clustering::lsh::{cluster_from_signatures_with_bits, LshTable};
use adr_clustering::reuse_cache::ReuseCache;
use adr_tensor::matrix::Matrix;
use adr_tensor::par::matmul_rows_range_into;

use crate::hashpack::PackedHasher;
use crate::stats::ReuseStats;
use crate::subvec::SubVecSplit;

/// Recycled scratch buffers for the reuse forward pass.
///
/// Every buffer here is sized on first use and *reused* — heap capacity kept,
/// contents reset — on every later call, so a steady-state training step's
/// hash/centroid/scatter machinery allocates nothing. The arena owns only
/// scratch: everything [`ForwardOutcome`] returns (output, tables, centroids)
/// is still freshly allocated because the caller keeps it for the backward
/// pass.
#[derive(Debug)]
pub struct ReuseArena {
    /// Row-major packed signatures, `N × num_subs`.
    sig_all: Vec<u64>,
    /// Cluster ids whose signature missed the CR cache, one sub at a time.
    miss_rows: Vec<usize>,
    /// Gathered centroid rows of the cache misses (`|miss| × L_I`).
    miss_cent: Matrix,
    /// GEMM output for the cache misses (`|miss| × M`).
    miss_out: Matrix,
    /// Per-sub-matrix cluster outputs `y_c^(I)` (`|C_I| × M`).
    cluster_outputs: Vec<Matrix>,
}

impl Default for ReuseArena {
    fn default() -> Self {
        Self {
            sig_all: Vec::new(),
            miss_rows: Vec::new(),
            miss_cent: Matrix::zeros(0, 0),
            miss_out: Matrix::zeros(0, 0),
            cluster_outputs: Vec::new(),
        }
    }
}

/// Everything a reuse forward pass produces: the output plus the clustering
/// state the backward pass will consume.
#[derive(Debug)]
pub struct ForwardOutcome {
    /// `N × M` layer output (bias already added).
    pub output: Matrix,
    /// Per-sub-matrix clustering of the input rows.
    pub tables: Vec<ClusterTable>,
    /// Per-sub-matrix centroid matrices `x_c^(I)` (`|C_I| × L_I`).
    pub centroids: Vec<Matrix>,
    /// Observability snapshot.
    pub stats: ReuseStats,
}

/// Runs the clustered forward pass.
///
/// * `x_unf` — the `N × K` unfolded input.
/// * `weight` — the `K × M` weight matrix.
/// * `bias` — length-`M` bias.
/// * `split` — the sub-vector partition of `0..K`.
/// * `lsh` — one LSH family per sub-matrix, with `lsh[i].dim() ==
///   split.width(i)`.
/// * `caches` — `Some` enables across-batch cluster reuse (Algorithm 1);
///   must hold one cache per sub-matrix. The caller is responsible for
///   calling [`ReuseCache::begin_batch`] once per batch.
/// * `rows_per_image` — `Some(p)` restricts clusters to single-input scope:
///   rows `i` and `j` may only share a cluster when `i/p == j/p` (§III-B).
///   `None` is the single-batch scope.
///
/// # Panics
/// Panics on any dimension disagreement between the inputs, or when
/// single-input scope is combined with caches (contradictory scopes).
pub fn reuse_forward(
    x_unf: &Matrix,
    weight: &Matrix,
    bias: &[f32],
    split: &SubVecSplit,
    lsh: &[LshTable],
    caches: Option<&mut [ReuseCache]>,
    rows_per_image: Option<usize>,
) -> ForwardOutcome {
    let hasher = PackedHasher::new(split, lsh);
    let mut arena = ReuseArena::default();
    reuse_forward_with(x_unf, weight, bias, split, lsh, &hasher, caches, rows_per_image, &mut arena)
}

/// [`reuse_forward`] with a caller-owned [`PackedHasher`] and [`ReuseArena`]
/// — the steady-state entry point. [`reuse_forward`] rebuilds the hasher and
/// scratch buffers on every call; a training loop that owns both (the reuse
/// layer does) pays those allocations once per reconfiguration instead of
/// once per batch.
///
/// `hasher` must be the packed form of exactly this `split`/`lsh` pair.
///
/// # Panics
/// Panics on any dimension disagreement between the inputs, when `hasher`
/// disagrees with the split, or when single-input scope is combined with
/// caches (contradictory scopes).
#[allow(clippy::too_many_arguments)]
pub fn reuse_forward_with(
    x_unf: &Matrix,
    weight: &Matrix,
    bias: &[f32],
    split: &SubVecSplit,
    lsh: &[LshTable],
    hasher: &PackedHasher,
    mut caches: Option<&mut [ReuseCache]>,
    rows_per_image: Option<usize>,
    arena: &mut ReuseArena,
) -> ForwardOutcome {
    let (n, k) = x_unf.shape();
    let m = weight.cols();
    assert_eq!(k, split.k(), "split width disagrees with input");
    assert_eq!(weight.rows(), k, "weight rows disagree with K");
    assert_eq!(bias.len(), m, "bias length disagrees with M");
    assert_eq!(lsh.len(), split.num_sub_vectors(), "one LSH family per sub-matrix required");
    assert_eq!(hasher.num_subs(), split.num_sub_vectors(), "hasher disagrees with split");
    if let Some(ref c) = caches {
        assert_eq!(c.len(), split.num_sub_vectors(), "one cache per sub-matrix required");
        assert!(
            rows_per_image.is_none(),
            "single-input scope conflicts with across-batch cluster reuse"
        );
    }
    if let Some(p) = rows_per_image {
        assert!(p > 0 && n % p == 0, "rows_per_image must evenly divide N");
    }
    adr_tensor::checked_finite!(x_unf.as_slice(), "reuse forward: unfolded input");
    adr_tensor::checked_finite!(weight.as_slice(), "reuse forward: weight");

    let num_subs = split.num_sub_vectors();
    let mut tables = Vec::with_capacity(num_subs);
    let mut centroids = Vec::with_capacity(num_subs);
    if arena.cluster_outputs.len() < num_subs {
        arena.cluster_outputs.resize_with(num_subs, || Matrix::zeros(0, 0));
    }
    let mut stats = ReuseStats { rows: n, num_sub_vectors: num_subs, ..Default::default() };
    let mut cluster_total = 0usize;
    let mut reuse_rate_sum = 0.0f64;

    // One streaming pass produces every sub-vector signature (row-major:
    // sig_all[r * num_subs + i]).
    {
        let _span = adr_obs::span_phase(adr_obs::Phase::Hash);
        hasher.hash_all_into(x_unf, &mut arena.sig_all);
    }
    let sig_all = &arena.sig_all;

    for (i, &(start, end)) in split.ranges().iter().enumerate() {
        let width = end - start;
        // Single-input scope folds the image index into the cluster key so
        // clusters never span images; the signature itself stays the pure
        // LSH output (what the CR cache would key on).
        let h_bits = hasher.num_hashes();
        let cluster_span = adr_obs::span_phase(adr_obs::Phase::Cluster);
        let (table, sigs) = match rows_per_image {
            None => {
                cluster_from_signatures_with_bits((0..n).map(|r| sig_all[r * num_subs + i]), h_bits)
            }
            Some(p) => {
                let img_bits = usize::BITS as usize - (n / p - 1).leading_zeros() as usize;
                cluster_from_signatures_with_bits(
                    (0..n).map(|r| sig_all[r * num_subs + i] | (((r / p) as u64) << h_bits)),
                    (h_bits + img_bits).min(64),
                )
            }
        };
        drop(cluster_span);
        stats.hash_flops += lsh[i].hashing_flops(n);
        let gemm_span = adr_obs::span_phase(adr_obs::Phase::CentroidGemm);
        let cent = table.centroids_range(x_unf, start, end);
        adr_tensor::checked_finite_rows!(
            cent.as_slice(),
            width,
            "reuse forward: sub-matrix {i} centroids (row = cluster id)"
        );
        let num_clusters = table.num_clusters();
        cluster_total += num_clusters;

        // Both branches multiply centroid rows against the weight's
        // `[start, end)` row band in place — no `row_slice` copy of the
        // weight, no fresh output matrix: `y_c` is arena scratch.
        let y_c = &mut arena.cluster_outputs[i];
        match caches.as_deref_mut() {
            Some(cache_slice) => {
                let cache = &mut cache_slice[i];
                y_c.reset(num_clusters, m);
                arena.miss_rows.clear();
                for (c, &sig) in sigs.iter().enumerate() {
                    match cache.probe(sig) {
                        Some(row) => y_c.row_mut(c).copy_from_slice(row),
                        None => arena.miss_rows.push(c),
                    }
                }
                if !arena.miss_rows.is_empty() {
                    // Batch the misses into one GEMM.
                    arena.miss_cent.reset(arena.miss_rows.len(), width);
                    for (mi, &c) in arena.miss_rows.iter().enumerate() {
                        arena.miss_cent.row_mut(mi).copy_from_slice(cent.row(c));
                    }
                    matmul_rows_range_into(
                        &arena.miss_cent,
                        weight,
                        (start, end),
                        &mut arena.miss_out,
                    );
                    stats.gemm_flops += (arena.miss_rows.len() * width * m) as u64;
                    for (mi, &c) in arena.miss_rows.iter().enumerate() {
                        y_c.row_mut(c).copy_from_slice(arena.miss_out.row(mi));
                        cache.insert(sigs[c], arena.miss_out.row(mi));
                    }
                }
                reuse_rate_sum += cache.mean_reuse_rate();
            }
            None => {
                stats.gemm_flops += (num_clusters * width * m) as u64;
                matmul_rows_range_into(&cent, weight, (start, end), y_c);
            }
        }
        drop(gemm_span);

        adr_tensor::checked_shape!(
            y_c.shape(),
            (num_clusters, m),
            "reuse forward: sub-matrix {i} cluster-output shape"
        );
        adr_tensor::checked_finite_rows!(
            y_c.as_slice(),
            m,
            "reuse forward: sub-matrix {i} cluster outputs (row = cluster id)"
        );
        stats.add_flops += (n * m) as u64;
        tables.push(table);
        centroids.push(cent);
    }

    // Row-parallel reconstruction: out[r] = bias + Σ_I y_c^(I)[cluster_I(r)].
    let scatter_span = adr_obs::span_phase(adr_obs::Phase::Scatter);
    let output = reconstruct(n, m, bias, &tables, &arena.cluster_outputs[..num_subs]);
    drop(scatter_span);
    adr_tensor::checked_finite!(output.as_slice(), "reuse forward: reconstructed output");

    stats.avg_clusters = cluster_total as f64 / num_subs as f64;
    stats.avg_remaining_ratio = stats.avg_clusters / n as f64;
    if caches.is_some() {
        stats.reuse_rate = reuse_rate_sum / num_subs as f64;
    }
    ForwardOutcome { output, tables, centroids, stats }
}

/// Sums the per-sub-matrix cluster outputs into the `N × M` layer output,
/// parallelised over disjoint row chunks.
fn reconstruct(
    n: usize,
    m: usize,
    bias: &[f32],
    tables: &[ClusterTable],
    cluster_outputs: &[Matrix],
) -> Matrix {
    let mut output = Matrix::zeros(n, m);
    // Gather-and-add over cluster rows — memory-bound, like col2im.
    let threads = adr_tensor::par::memory_threads(n * m * tables.len());
    adr_tensor::par::run_row_blocks(
        output.as_mut_slice(),
        m,
        n,
        threads,
        |row0, rows_here, chunk| {
            for r in 0..rows_here {
                let dst = &mut chunk[r * m..(r + 1) * m];
                dst.copy_from_slice(bias);
                for (table, y_c) in tables.iter().zip(cluster_outputs) {
                    let src = y_c.row(table.cluster_of(row0 + r) as usize);
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
        },
    );
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_tensor::rng::AdrRng;

    fn lsh_families(split: &SubVecSplit, h: usize, seed: u64) -> Vec<LshTable> {
        let mut rng = AdrRng::seeded(seed);
        split.ranges().iter().map(|&(a, b)| LshTable::new(b - a, h, &mut rng)).collect()
    }

    fn random_problem(n: usize, k: usize, m: usize, seed: u64) -> (Matrix, Matrix, Vec<f32>) {
        let mut rng = AdrRng::seeded(seed);
        let x = Matrix::from_fn(n, k, |_, _| rng.gauss());
        let w = Matrix::from_fn(k, m, |_, _| rng.gauss() * 0.1);
        let b: Vec<f32> = (0..m).map(|_| rng.gauss() * 0.01).collect();
        (x, w, b)
    }

    /// With enough hash functions, every distinct row is its own cluster and
    /// the reuse output equals the dense output exactly (up to fp order).
    #[test]
    fn degenerates_to_exact_with_many_hashes() {
        let (x, w, b) = random_problem(24, 12, 5, 1);
        let split = SubVecSplit::new(12, 12);
        let lsh = lsh_families(&split, 40, 2);
        let out = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        let mut dense = x.matmul(&w);
        dense.add_row_bias(&b);
        // Random Gaussian rows almost surely land in distinct clusters.
        assert_eq!(out.tables[0].num_clusters(), 24);
        assert!(out.output.max_abs_diff(&dense) < 1e-3);
    }

    /// Duplicate rows must produce identical outputs and a small cluster set.
    #[test]
    fn duplicate_rows_share_all_computation() {
        let mut rng = AdrRng::seeded(3);
        let proto = Matrix::from_fn(4, 8, |_, _| rng.gauss());
        // 32 rows, each a copy of one of the 4 prototypes.
        let x = Matrix::from_fn(32, 8, |r, c| proto[(r % 4, c)]);
        let w = Matrix::from_fn(8, 6, |_, _| rng.gauss());
        let split = SubVecSplit::new(8, 8);
        let lsh = lsh_families(&split, 16, 4);
        let out = reuse_forward(&x, &w, &[0.0; 6], &split, &lsh, None, None);
        assert_eq!(out.tables[0].num_clusters(), 4);
        assert!((out.stats.avg_remaining_ratio - 4.0 / 32.0).abs() < 1e-12);
        // Exactness: centroids of identical rows are the rows themselves.
        let dense = x.matmul(&w);
        assert!(out.output.max_abs_diff(&dense) < 1e-3);
    }

    #[test]
    fn sub_vector_partials_sum_to_dense_when_exact() {
        // L < K with all-distinct clusters still reconstructs the dense GEMM.
        let (x, w, b) = random_problem(16, 10, 4, 5);
        let split = SubVecSplit::new(10, 4); // ranges 0..4, 4..8, 8..10
        let lsh = lsh_families(&split, 40, 6);
        let out = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        let mut dense = x.matmul(&w);
        dense.add_row_bias(&b);
        if out.tables.iter().all(|t| t.num_clusters() == 16) {
            assert!(out.output.max_abs_diff(&dense) < 1e-3);
        }
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.centroids[2].cols(), 2);
    }

    #[test]
    fn large_batch_uses_parallel_paths_consistently() {
        // Cross the n >= 64 GEMM-hashing threshold and the multi-thread
        // reconstruction threshold; outputs must still match a dense GEMM
        // when clusters are singletons.
        let (x, w, b) = random_problem(512, 24, 16, 13);
        let split = SubVecSplit::new(24, 8);
        let lsh = lsh_families(&split, 48, 14);
        let out = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        let mut dense = x.matmul(&w);
        dense.add_row_bias(&b);
        if out.tables.iter().all(|t| t.num_clusters() == 512) {
            assert!(out.output.max_abs_diff(&dense) < 1e-2);
        } else {
            // Even with some collisions the output must stay finite & close.
            assert!(out.output.max_abs_diff(&dense) < 1.0);
        }
    }

    #[test]
    fn approximation_error_shrinks_with_more_hashes() {
        // Correlated rows: clusters form; more hashes → finer clusters →
        // smaller output error.
        let mut rng = AdrRng::seeded(7);
        let proto = Matrix::from_fn(6, 16, |_, _| rng.gauss());
        let x = Matrix::from_fn(120, 16, |r, c| proto[(r % 6, c)] + 0.05 * rng.gauss());
        let w = Matrix::from_fn(16, 8, |_, _| rng.gauss());
        let b = vec![0.0; 8];
        let dense = x.matmul(&w);
        let split = SubVecSplit::new(16, 16);
        let err = |h: usize| {
            let lsh = lsh_families(&split, h, 11);
            let out = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
            out.output.max_abs_diff(&dense)
        };
        let coarse = err(2);
        let fine = err(30);
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn flop_accounting_matches_formula_without_cr() {
        let (x, w, b) = random_problem(20, 12, 6, 8);
        let split = SubVecSplit::new(12, 4);
        let lsh = lsh_families(&split, 8, 9);
        let out = reuse_forward(&x, &w, &b, &split, &lsh, None, None);
        // hash: N * K * H  (all sub-matrices together hash every element).
        assert_eq!(out.stats.hash_flops, (20 * 12 * 8) as u64);
        // adds: N * M per sub-matrix.
        assert_eq!(out.stats.add_flops, (3 * 20 * 6) as u64);
        // gemm: sum over sub-matrices of |C_I| * L_I * M.
        let expect: u64 = out.tables.iter().map(|t| (t.num_clusters() * 4 * 6) as u64).sum();
        assert_eq!(out.stats.gemm_flops, expect);
    }

    #[test]
    fn cluster_reuse_skips_computation_on_second_batch() {
        let (x, w, b) = random_problem(30, 8, 5, 10);
        let split = SubVecSplit::new(8, 8);
        let lsh = lsh_families(&split, 10, 11);
        let mut caches = vec![ReuseCache::new(5)];
        caches[0].begin_batch();
        let first = reuse_forward(&x, &w, &b, &split, &lsh, Some(&mut caches), None);
        let first_gemm = first.stats.gemm_flops;
        assert!(first_gemm > 0);
        // Same batch again: every signature is cached.
        caches[0].begin_batch();
        let second = reuse_forward(&x, &w, &b, &split, &lsh, Some(&mut caches), None);
        assert_eq!(second.stats.gemm_flops, 0, "all clusters reused");
        assert!(second.output.max_abs_diff(&first.output) < 1e-5);
        caches[0].begin_batch();
        assert!(caches[0].history().last().copied().unwrap() == 1.0);
    }

    #[test]
    #[should_panic(expected = "one LSH family per sub-matrix")]
    fn wrong_family_count_panics() {
        let (x, w, b) = random_problem(4, 8, 2, 12);
        let split = SubVecSplit::new(8, 4);
        let lsh = lsh_families(&SubVecSplit::new(8, 8), 4, 13);
        reuse_forward(&x, &w, &b, &split, &lsh, None, None);
    }
}
